//! The collective engine: notified-RMA collectives with chunked
//! compute/communication overlap, executed on [`RtCtx`].
//!
//! Every collective here is built *purely* from the runtime's existing
//! primitive — a window put that enqueues a notification at the target —
//! no new transport machinery. What makes the traffic a collective rather
//! than user communication is the tag space: collective puts carry
//! [`COLL_TAG_BIT`] (bit 31) and per-peer monotonic sequence numbers, are
//! buffered in a separate internal notification queue, and are invisible to
//! the user-facing counters (`puts` / `notifications` / `matched`), user
//! wildcard queries and the invariant-verification ledger. Deterministic
//! collective work is reported separately through [`CollStats`].
//!
//! Overlap model (the NeMo TP-overlap trick): within one schedule step all
//! outgoing chunk puts are posted *before* the first incoming chunk is
//! awaited, so while chunk *k* is being reduced locally, chunks *k+1..* are
//! in flight. A chunk wait whose notification has already arrived at first
//! poll counts as *hidden* (the transfer was fully overlapped by compute);
//! one that has to spin counts as *blocked*. The chunked/unchunked hidden
//! fraction is what the `coll` figure and `ablation_coll` gate on.
//!
//! Incoming data never lands in live buffers: each schedule step/round has
//! its own disjoint slot in a hidden per-rank scratch window (appended
//! after the user windows, sized by `RtConfig::coll_scratch`), so a fast
//! peer running several steps ahead can never clobber bytes that are still
//! being reduced. [`dcuda_coll::allreduce_scratch_bytes`] is the sizing
//! contract; undersized scratch surfaces as
//! [`CollError::ScratchTooSmall`](dcuda_coll::CollError::ScratchTooSmall).

use crate::ctx::RtCtx;
use crate::types::{Rank, RtError, WindowId};
use dcuda_coll::{
    bcast_children, bcast_parent, ceil_log2, chunk_spans, max_segment_bytes, pow2_floor,
    reduce_into, ring_left, ring_right, segment_range, CollAlgo, CollError, CollPlan,
};
use dcuda_trace::Track;

/// Tag bit reserved for collective-engine traffic. User `put_notify` tags
/// must leave it clear ([`RtError::ReservedTag`] otherwise); queries are
/// unaffected (`Tag::ANY` still matches only user notifications, because
/// collective notifications are buffered separately).
pub const COLL_TAG_BIT: u32 = 1 << 31;

/// Deterministic collective-engine statistics, reported alongside the
/// user-facing counters in `RtReport`.
///
/// `puts`, `bytes` and `chunks` are schedule-determined (identical across
/// transport backends — the conformance suite gates on them); the
/// hidden/blocked wait split is timing-dependent and only meaningful for
/// overlap measurements.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollStats {
    /// Internal puts issued by the collective engine (incl. barrier rounds).
    pub puts: u64,
    /// Payload bytes moved by the collective engine.
    pub bytes: u64,
    /// Data chunks received and processed by collective schedules.
    pub chunks: u64,
    /// Chunk waits whose notification had already arrived at first poll
    /// (the transfer was hidden behind local compute). Timing-dependent.
    pub hidden_waits: u64,
    /// Chunk waits that had to spin for the notification. Timing-dependent.
    pub blocked_waits: u64,
}

impl CollStats {
    /// Merge another rank's statistics into this aggregate.
    pub(crate) fn absorb(&mut self, o: CollStats) {
        self.puts += o.puts;
        self.bytes += o.bytes;
        self.chunks += o.chunks;
        self.hidden_waits += o.hidden_waits;
        self.blocked_waits += o.blocked_waits;
    }

    /// Fraction of metered chunk waits that were hidden (`None` if no
    /// collective ran).
    pub fn hidden_fraction(&self) -> Option<f64> {
        let total = self.hidden_waits + self.blocked_waits;
        (total > 0).then(|| self.hidden_waits as f64 / total as f64)
    }
}

/// Collective operations over the rank's registered windows.
///
/// All methods are collective: every rank of the world must call them in
/// the same order with compatible arguments (same region shape, same plan),
/// exactly like MPI collectives. Each exists as a panicking convenience and
/// a `try_` variant returning [`RtError`].
///
/// The reduction/gather/broadcast collectives open each call with an
/// internal epoch barrier before any data moves. Notified-RMA payloads land
/// in window memory at *delivery* time, so without the barrier a rank that
/// finished collective `k` could receive a faster peer's collective-`k+1`
/// payload while it is still refilling its buffers between the two calls —
/// a data race the schedule counters would never show. The barrier bounds
/// peer lookahead at the call boundary; inside a collective the schedule's
/// disjoint slot/segment assignment keeps every region single-writer.
/// `ring_shift`/`ring_release` instead gate lookahead pairwise (release
/// acknowledges consumption), which is what makes them cheap enough for
/// per-iteration halo traffic.
pub trait CollCtx {
    /// Allreduce the element-aligned region `[off, off+len)` of `win` in
    /// place: afterwards every rank holds the elementwise reduction over
    /// all ranks' regions.
    fn try_allreduce(
        &mut self,
        win: WindowId,
        off: usize,
        len: usize,
        plan: &CollPlan,
    ) -> Result<(), RtError>;

    /// Panicking [`try_allreduce`](Self::try_allreduce).
    fn allreduce(&mut self, win: WindowId, off: usize, len: usize, plan: &CollPlan);

    /// Ring reduce-scatter over `[off, off+len)`: afterwards this rank's
    /// own segment (`segment_range(len, elem, world, rank)`) holds the full
    /// reduction; the other segments hold deterministic partials.
    fn try_reduce_scatter(
        &mut self,
        win: WindowId,
        off: usize,
        len: usize,
        plan: &CollPlan,
    ) -> Result<(), RtError>;

    /// Panicking [`try_reduce_scatter`](Self::try_reduce_scatter).
    fn reduce_scatter(&mut self, win: WindowId, off: usize, len: usize, plan: &CollPlan);

    /// Ring all-gather over `[off, off+len)`: each rank contributes its own
    /// segment; afterwards every rank holds all segments.
    fn try_all_gather(
        &mut self,
        win: WindowId,
        off: usize,
        len: usize,
        plan: &CollPlan,
    ) -> Result<(), RtError>;

    /// Panicking [`try_all_gather`](Self::try_all_gather).
    fn all_gather(&mut self, win: WindowId, off: usize, len: usize, plan: &CollPlan);

    /// Binomial broadcast of `root`'s `[off, off+len)` region to every rank.
    fn try_broadcast(
        &mut self,
        win: WindowId,
        off: usize,
        len: usize,
        root: Rank,
        plan: &CollPlan,
    ) -> Result<(), RtError>;

    /// Panicking [`try_broadcast`](Self::try_broadcast).
    fn broadcast(&mut self, win: WindowId, off: usize, len: usize, root: Rank, plan: &CollPlan);

    /// One step of a ring halo shift: put `[src_off, src_off+len)` of `win`
    /// to the right neighbour at `dst_off`, then wait for the left
    /// neighbour's matching shift to land in this rank's `[dst_off,
    /// dst_off+len)`. Collective over the whole world ring.
    fn try_ring_shift(
        &mut self,
        win: WindowId,
        dst_off: usize,
        src_off: usize,
        len: usize,
    ) -> Result<(), RtError>;

    /// Panicking [`try_ring_shift`](Self::try_ring_shift).
    fn ring_shift(&mut self, win: WindowId, dst_off: usize, src_off: usize, len: usize);

    /// Release the previous [`ring_shift`](Self::ring_shift)'s inbox: tell
    /// the left neighbour its data has been consumed and wait for the right
    /// neighbour's release, gating it from racing a shift ahead.
    fn try_ring_release(&mut self) -> Result<(), RtError>;

    /// Panicking [`try_ring_release`](Self::try_ring_release).
    fn ring_release(&mut self);
}

impl CollCtx for RtCtx {
    fn try_allreduce(
        &mut self,
        win: WindowId,
        off: usize,
        len: usize,
        plan: &CollPlan,
    ) -> Result<(), RtError> {
        check_region(self, win, off, len, plan.dtype().size())?;
        barrier_impl(self)?;
        match plan.algo() {
            CollAlgo::Ring => allreduce_ring(self, win, off, len, plan),
            CollAlgo::Tree => allreduce_tree(self, win, off, len, plan),
            CollAlgo::RecursiveDoubling => allreduce_rdbl(self, win, off, len, plan),
        }
    }

    fn allreduce(&mut self, win: WindowId, off: usize, len: usize, plan: &CollPlan) {
        let rank = self.rank().0;
        self.try_allreduce(win, off, len, plan)
            .unwrap_or_else(|e| panic!("rank {rank}: allreduce: {e}"));
    }

    fn try_reduce_scatter(
        &mut self,
        win: WindowId,
        off: usize,
        len: usize,
        plan: &CollPlan,
    ) -> Result<(), RtError> {
        check_region(self, win, off, len, plan.dtype().size())?;
        barrier_impl(self)?;
        reduce_scatter_ring(self, win, off, len, plan, 0)
    }

    fn reduce_scatter(&mut self, win: WindowId, off: usize, len: usize, plan: &CollPlan) {
        let rank = self.rank().0;
        self.try_reduce_scatter(win, off, len, plan)
            .unwrap_or_else(|e| panic!("rank {rank}: reduce_scatter: {e}"));
    }

    fn try_all_gather(
        &mut self,
        win: WindowId,
        off: usize,
        len: usize,
        plan: &CollPlan,
    ) -> Result<(), RtError> {
        check_region(self, win, off, len, plan.dtype().size())?;
        barrier_impl(self)?;
        all_gather_ring(self, win, off, len, plan, 0)
    }

    fn all_gather(&mut self, win: WindowId, off: usize, len: usize, plan: &CollPlan) {
        let rank = self.rank().0;
        self.try_all_gather(win, off, len, plan)
            .unwrap_or_else(|e| panic!("rank {rank}: all_gather: {e}"));
    }

    fn try_broadcast(
        &mut self,
        win: WindowId,
        off: usize,
        len: usize,
        root: Rank,
        plan: &CollPlan,
    ) -> Result<(), RtError> {
        check_region(self, win, off, len, plan.dtype().size())?;
        if root.0 >= self.world_size() {
            return Err(RtError::Coll(CollError::RootOutOfRange {
                root: root.0,
                world: self.world_size(),
            }));
        }
        barrier_impl(self)?;
        broadcast_binomial(self, win, off, len, root.0, plan)
    }

    fn broadcast(&mut self, win: WindowId, off: usize, len: usize, root: Rank, plan: &CollPlan) {
        let rank = self.rank().0;
        self.try_broadcast(win, off, len, root, plan)
            .unwrap_or_else(|e| panic!("rank {rank}: broadcast: {e}"));
    }

    fn try_ring_shift(
        &mut self,
        win: WindowId,
        dst_off: usize,
        src_off: usize,
        len: usize,
    ) -> Result<(), RtError> {
        // Window layouts are identical on every rank, so validating both the
        // local source range and the (remote) destination range against the
        // local window covers the symmetric call on the neighbour. Pure
        // validation — no borrow, so no race-detector event.
        for start in [src_off, dst_off] {
            self.user_win_range(win, start, len)?;
        }
        let world = self.world_size();
        let rank = self.rank().0;
        let right = ring_right(rank, world);
        let left = ring_left(rank, world);
        let tag = self.next_coll_tag(right);
        self.put_internal(win.index(), src_off, len, right, win.index(), dst_off, tag)?;
        let expect = self.expect_coll_tag(left);
        wait_chunk(self, left, expect, "shift")?;
        self.coll.chunks += 1;
        Ok(())
    }

    fn ring_shift(&mut self, win: WindowId, dst_off: usize, src_off: usize, len: usize) {
        let rank = self.rank().0;
        self.try_ring_shift(win, dst_off, src_off, len)
            .unwrap_or_else(|e| panic!("rank {rank}: ring_shift: {e}"));
    }

    fn try_ring_release(&mut self) -> Result<(), RtError> {
        let world = self.world_size();
        let rank = self.rank().0;
        let right = ring_right(rank, world);
        let left = ring_left(rank, world);
        let scratch = self.scratch_index();
        let tag = self.next_coll_tag(left);
        self.put_internal(scratch, 0, 0, left, scratch, 0, tag)?;
        let expect = self.expect_coll_tag(right);
        self.wait_internal(right, expect, false)?;
        Ok(())
    }

    fn ring_release(&mut self) {
        let rank = self.rank().0;
        self.try_ring_release()
            .unwrap_or_else(|e| panic!("rank {rank}: ring_release: {e}"));
    }
}

/// The world barrier, reimplemented on the collective engine: a
/// dissemination barrier of `ceil(log2(world))` rounds of zero-length
/// notified puts — round `k` signals rank `r + 2^k` and waits on rank
/// `r - 2^k`, after which every rank has transitively heard from every
/// other. Runs entirely in the reserved tag space; no host-side state.
pub(crate) fn barrier_impl(ctx: &mut RtCtx) -> Result<(), RtError> {
    let world = ctx.world_size();
    let rank = ctx.rank().0;
    let scratch = ctx.scratch_index();
    let mut k = 1u32;
    while k < world {
        let to = (rank + k) % world;
        let from = (rank + world - k) % world;
        let tag = ctx.next_coll_tag(to);
        ctx.put_internal(scratch, 0, 0, to, scratch, 0, tag)?;
        let expect = ctx.expect_coll_tag(from);
        ctx.wait_internal(from, expect, false)?;
        k <<= 1;
    }
    Ok(())
}

/// Validate a collective's region arguments against the rank's (user)
/// window layout and the plan's element size.
fn check_region(
    ctx: &RtCtx,
    win: WindowId,
    off: usize,
    len: usize,
    elem: usize,
) -> Result<(), RtError> {
    // Argument validation only — deliberately not a window borrow, so the
    // race detector sees no access here (a whole-window read would report
    // the collective's own in-flight chunks as races).
    ctx.user_win_range(win, off, len)?;
    if !len.is_multiple_of(elem) {
        return Err(RtError::Coll(CollError::BufferMisaligned { len, elem }));
    }
    Ok(())
}

fn check_scratch(ctx: &RtCtx, need: usize) -> Result<(), RtError> {
    let have = ctx.scratch_len();
    if need > have {
        return Err(RtError::Coll(CollError::ScratchTooSmall { need, have }));
    }
    Ok(())
}

/// Wait for one data chunk's notification, metering the hidden/blocked
/// split and recording a per-chunk `coll_wait` span when tracing.
fn wait_chunk(ctx: &mut RtCtx, from: u32, tag: u32, phase: &'static str) -> Result<bool, RtError> {
    let start = ctx.trace_tick();
    let hidden = ctx.wait_internal(from, tag, true)?;
    if ctx.tracer.is_enabled() {
        let end = ctx.trace_tick();
        let rank = ctx.rank().0;
        ctx.tracer.span(
            Track::Rank(rank),
            "coll_wait",
            start,
            end,
            vec![
                ("hidden", u64::from(hidden).into()),
                ("phase", phase.into()),
            ],
        );
    }
    Ok(hidden)
}

/// Reduce `len` bytes of scratch (at `scratch_off`) into the user window
/// region at `dst`, recording a per-chunk `coll_reduce` span when tracing.
fn reduce_chunk(
    ctx: &mut RtCtx,
    win: WindowId,
    dst: usize,
    scratch_off: usize,
    len: usize,
    plan: &CollPlan,
) -> Result<(), RtError> {
    let start = ctx.trace_tick();
    ctx.reduce_scratch_into(win, dst, scratch_off, len, |acc, src| {
        reduce_into(acc, src, plan.op(), plan.dtype()).map_err(RtError::Coll)
    })?;
    ctx.coll.chunks += 1;
    if ctx.tracer.is_enabled() {
        let end = ctx.trace_tick();
        let rank = ctx.rank().0;
        ctx.tracer.span(
            Track::Rank(rank),
            "coll_reduce",
            start,
            end,
            vec![("bytes", (len as u64).into())],
        );
    }
    Ok(())
}

/// Ring reduce-scatter: `world - 1` steps; at step `s` rank `r` sends
/// segment `(r + own - 1 - s) mod world` to its right neighbour and reduces
/// the segment arriving from the left (one lower) into its own buffer, so
/// the segment received at step `s` is exactly the one forwarded at step
/// `s + 1` — the classic ring pipeline. Each step's incoming segment lands
/// in its own scratch slot. After the final step rank `r` fully owns
/// segment `(r + own) mod world`: `own = 0` is the standalone contract
/// (each rank ends with its own segment reduced), `own = 1` the
/// allreduce-internal convention that feeds the `shift = 1` all-gather.
fn reduce_scatter_ring(
    ctx: &mut RtCtx,
    win: WindowId,
    off: usize,
    len: usize,
    plan: &CollPlan,
    own: u32,
) -> Result<(), RtError> {
    let world = ctx.world_size();
    if world == 1 || len == 0 {
        return Ok(());
    }
    let elem = plan.dtype().size();
    let seg_max = max_segment_bytes(len, elem, world);
    check_scratch(ctx, (world as usize - 1) * seg_max)?;
    let rank = ctx.rank().0;
    let right = ring_right(rank, world);
    let left = ring_left(rank, world);
    let scratch = ctx.scratch_index();
    for step in 0..world - 1 {
        let send_seg = (rank + own + 2 * world - 1 - step) % world;
        let recv_seg = (send_seg + world - 1) % world;
        let send = segment_range(len, elem, world, send_seg);
        let recv = segment_range(len, elem, world, recv_seg);
        let slot = step as usize * seg_max;
        // Post every outgoing chunk of this step before awaiting anything:
        // chunk k+1 is in flight while chunk k is being reduced below.
        for (coff, clen) in chunk_spans(send.len(), plan.chunk_bytes()) {
            let tag = ctx.next_coll_tag(right);
            ctx.put_internal(
                win.index(),
                off + send.start + coff,
                clen,
                right,
                scratch,
                slot + coff,
                tag,
            )?;
        }
        for (coff, clen) in chunk_spans(recv.len(), plan.chunk_bytes()) {
            let tag = ctx.expect_coll_tag(left);
            wait_chunk(ctx, left, tag, "rs")?;
            reduce_chunk(ctx, win, off + recv.start + coff, slot + coff, clen, plan)?;
        }
    }
    Ok(())
}

/// Ring all-gather: `world - 1` steps; at step `s` rank `r` forwards
/// segment `(r + shift - s) mod world` to its right neighbour; incoming
/// segments land directly at their final offsets (each is written exactly
/// once, so no scratch staging is needed). `shift = 0` is the standalone
/// contract (each rank contributes its own segment); `shift = 1` is the
/// allreduce phase-2 convention (each rank starts owning segment `r + 1`).
fn all_gather_ring(
    ctx: &mut RtCtx,
    win: WindowId,
    off: usize,
    len: usize,
    plan: &CollPlan,
    shift: u32,
) -> Result<(), RtError> {
    let world = ctx.world_size();
    if world == 1 || len == 0 {
        return Ok(());
    }
    let elem = plan.dtype().size();
    let rank = ctx.rank().0;
    let right = ring_right(rank, world);
    let left = ring_left(rank, world);
    for step in 0..world - 1 {
        let send_seg = (rank + shift + world - step) % world;
        let recv_seg = (send_seg + world - 1) % world;
        let send = segment_range(len, elem, world, send_seg);
        let recv = segment_range(len, elem, world, recv_seg);
        for (coff, clen) in chunk_spans(send.len(), plan.chunk_bytes()) {
            let tag = ctx.next_coll_tag(right);
            ctx.put_internal(
                win.index(),
                off + send.start + coff,
                clen,
                right,
                win.index(),
                off + send.start + coff,
                tag,
            )?;
        }
        for _ in chunk_spans(recv.len(), plan.chunk_bytes()) {
            let tag = ctx.expect_coll_tag(left);
            wait_chunk(ctx, left, tag, "ag")?;
            ctx.coll.chunks += 1;
        }
    }
    Ok(())
}

/// Ring allreduce: reduce-scatter phase then all-gather phase, both
/// chunked. 2(world-1) steps moving ~2·len/world bytes each — the
/// bandwidth-optimal schedule.
fn allreduce_ring(
    ctx: &mut RtCtx,
    win: WindowId,
    off: usize,
    len: usize,
    plan: &CollPlan,
) -> Result<(), RtError> {
    reduce_scatter_ring(ctx, win, off, len, plan, 1)?;
    all_gather_ring(ctx, win, off, len, plan, 1)
}

/// Binomial-tree allreduce: reduce to rank 0 up the tree (each round's
/// incoming buffer lands in its own scratch slot), then broadcast the
/// result back down. Works for any world size.
fn allreduce_tree(
    ctx: &mut RtCtx,
    win: WindowId,
    off: usize,
    len: usize,
    plan: &CollPlan,
) -> Result<(), RtError> {
    let world = ctx.world_size();
    if world == 1 || len == 0 {
        return Ok(());
    }
    check_scratch(ctx, ceil_log2(world) as usize * len)?;
    let rank = ctx.rank().0;
    let scratch = ctx.scratch_index();
    for k in 0..ceil_log2(world) {
        match dcuda_coll::tree_reduce_step(rank, world, k) {
            dcuda_coll::TreeStep::SendTo(parent) => {
                for (coff, clen) in chunk_spans(len, plan.chunk_bytes()) {
                    let tag = ctx.next_coll_tag(parent);
                    ctx.put_internal(
                        win.index(),
                        off + coff,
                        clen,
                        parent,
                        scratch,
                        k as usize * len + coff,
                        tag,
                    )?;
                }
                break;
            }
            dcuda_coll::TreeStep::RecvFrom(child) => {
                let slot = k as usize * len;
                for (coff, clen) in chunk_spans(len, plan.chunk_bytes()) {
                    let tag = ctx.expect_coll_tag(child);
                    wait_chunk(ctx, child, tag, "tree")?;
                    reduce_chunk(ctx, win, off + coff, slot + coff, clen, plan)?;
                }
            }
            dcuda_coll::TreeStep::Idle => {}
        }
    }
    broadcast_binomial(ctx, win, off, len, 0, plan)
}

/// Recursive-doubling allreduce: the ranks beyond the largest power of two
/// fold into their partners first, the power-of-two sub-world exchanges
/// full buffers pairwise over `log2` rounds (each round's incoming buffer
/// in its own scratch slot), and the folded-out ranks receive the finished
/// result.
fn allreduce_rdbl(
    ctx: &mut RtCtx,
    win: WindowId,
    off: usize,
    len: usize,
    plan: &CollPlan,
) -> Result<(), RtError> {
    let world = ctx.world_size();
    if world == 1 || len == 0 {
        return Ok(());
    }
    let p = pow2_floor(world);
    let rounds = ceil_log2(p);
    check_scratch(ctx, (rounds as usize + 1) * len)?;
    let rank = ctx.rank().0;
    let scratch = ctx.scratch_index();
    if rank >= p {
        // Fold out: contribute to the partner, then wait for the result.
        let partner = rank - p;
        for (coff, clen) in chunk_spans(len, plan.chunk_bytes()) {
            let tag = ctx.next_coll_tag(partner);
            ctx.put_internal(win.index(), off + coff, clen, partner, scratch, coff, tag)?;
        }
        for _ in chunk_spans(len, plan.chunk_bytes()) {
            let tag = ctx.expect_coll_tag(partner);
            wait_chunk(ctx, partner, tag, "rdbl")?;
            ctx.coll.chunks += 1;
        }
        return Ok(());
    }
    if rank + p < world {
        // Absorb the folded-out partner's contribution (scratch slot 0).
        let extra = rank + p;
        for (coff, clen) in chunk_spans(len, plan.chunk_bytes()) {
            let tag = ctx.expect_coll_tag(extra);
            wait_chunk(ctx, extra, tag, "rdbl")?;
            reduce_chunk(ctx, win, off + coff, coff, clen, plan)?;
        }
    }
    for k in 0..rounds {
        let partner = rank ^ (1 << k);
        let slot = (k as usize + 1) * len;
        for (coff, clen) in chunk_spans(len, plan.chunk_bytes()) {
            let tag = ctx.next_coll_tag(partner);
            ctx.put_internal(
                win.index(),
                off + coff,
                clen,
                partner,
                scratch,
                slot + coff,
                tag,
            )?;
        }
        for (coff, clen) in chunk_spans(len, plan.chunk_bytes()) {
            let tag = ctx.expect_coll_tag(partner);
            wait_chunk(ctx, partner, tag, "rdbl")?;
            reduce_chunk(ctx, win, off + coff, slot + coff, clen, plan)?;
        }
    }
    if rank + p < world {
        // Return the finished result to the folded-out partner, landing
        // directly in its user region (single writer, no staging needed).
        let extra = rank + p;
        for (coff, clen) in chunk_spans(len, plan.chunk_bytes()) {
            let tag = ctx.next_coll_tag(extra);
            ctx.put_internal(
                win.index(),
                off + coff,
                clen,
                extra,
                win.index(),
                off + coff,
                tag,
            )?;
        }
    }
    Ok(())
}

/// Binomial broadcast from `root`: each rank receives its chunk stream from
/// its tree parent and forwards every chunk to its children as soon as it
/// lands, so the fan-out of chunk `k` overlaps the arrival of chunk `k+1`.
/// Data lands directly at its final offsets (one writer per rank).
fn broadcast_binomial(
    ctx: &mut RtCtx,
    win: WindowId,
    off: usize,
    len: usize,
    root: u32,
    plan: &CollPlan,
) -> Result<(), RtError> {
    let world = ctx.world_size();
    if world == 1 || len == 0 {
        return Ok(());
    }
    let rank = ctx.rank().0;
    let vr = (rank + world - root) % world;
    let to_real = |v: u32| (v + root) % world;
    let children: Vec<u32> = bcast_children(vr, world).into_iter().map(to_real).collect();
    let parent = (vr != 0).then(|| to_real(bcast_parent(vr).1));
    for (coff, clen) in chunk_spans(len, plan.chunk_bytes()) {
        if let Some(parent) = parent {
            let tag = ctx.expect_coll_tag(parent);
            wait_chunk(ctx, parent, tag, "bcast")?;
            ctx.coll.chunks += 1;
        }
        for &child in &children {
            let tag = ctx.next_coll_tag(child);
            ctx.put_internal(
                win.index(),
                off + coff,
                clen,
                child,
                win.index(),
                off + coff,
                tag,
            )?;
        }
    }
    Ok(())
}
