//! Validate a Chrome-trace JSON file emitted by `figures --trace`.
//!
//! ```text
//! trace_check PATH
//! ```
//!
//! Checks the Trace Event Format invariants the CI trace job relies on:
//! top-level shape (`displayTimeUnit`, `traceEvents`), per-event required
//! keys by phase (`X` complete events carry `dur`, `i` instants carry
//! `"s":"t"`, `M` metadata names its process/thread), timestamps
//! non-decreasing per `(pid, tid)` track, and the rank/process taxonomy
//! (at least one rank track under the `ranks` process group). Exits 0 on a
//! valid trace, 1 with a diagnostic otherwise.

use dcuda_bench::json::Json;
use std::collections::HashMap;

fn fail(msg: String) -> ! {
    eprintln!("trace_check: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let path = match (args.next(), args.next()) {
        (Some(p), None) => p,
        _ => fail("usage: trace_check PATH".into()),
    };
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
    let doc = Json::parse(&text).unwrap_or_else(|e| fail(format!("{path}: invalid JSON: {e}")));

    if doc.get("displayTimeUnit").and_then(Json::as_str) != Some("ms") {
        fail("displayTimeUnit missing or not \"ms\"".into());
    }
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| fail("traceEvents missing or not an array".into()));
    if events.is_empty() {
        fail("traceEvents is empty".into());
    }

    let mut last_ts: HashMap<(u64, u64), f64> = HashMap::new();
    let mut rank_events = 0usize;
    let mut saw_ranks_process = false;
    let mut counts: HashMap<&str, usize> = HashMap::new();

    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail(format!("event {i}: missing ph")));
        *counts
            .entry(match ph {
                "X" => "X",
                "i" => "i",
                "M" => "M",
                other => fail(format!("event {i}: unknown phase {other:?}")),
            })
            .or_insert(0) += 1;
        let pid = ev
            .get("pid")
            .and_then(Json::as_u64)
            .unwrap_or_else(|| fail(format!("event {i}: missing pid")));
        let tid = ev
            .get("tid")
            .and_then(Json::as_u64)
            .unwrap_or_else(|| fail(format!("event {i}: missing tid")));
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail(format!("event {i}: missing name")));
        match ph {
            "M" => {
                if !matches!(name, "process_name" | "thread_name") {
                    fail(format!("event {i}: metadata named {name:?}"));
                }
                let label = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .unwrap_or_else(|| fail(format!("event {i}: metadata without args.name")));
                if name == "process_name" && label == "ranks" {
                    saw_ranks_process = true;
                }
            }
            ph => {
                let ts = ev
                    .get("ts")
                    .and_then(Json::as_f64)
                    .unwrap_or_else(|| fail(format!("event {i}: missing ts")));
                if !(ts.is_finite() && ts >= 0.0) {
                    fail(format!("event {i}: bad ts {ts}"));
                }
                let prev = last_ts.entry((pid, tid)).or_insert(0.0);
                if ts < *prev {
                    fail(format!(
                        "event {i}: ts {ts} goes backwards on track ({pid},{tid}) after {prev}"
                    ));
                }
                *prev = ts;
                if ph == "X" {
                    let dur = ev
                        .get("dur")
                        .and_then(Json::as_f64)
                        .unwrap_or_else(|| fail(format!("event {i}: X event without dur")));
                    if !(dur.is_finite() && dur >= 0.0) {
                        fail(format!("event {i}: bad dur {dur}"));
                    }
                } else if ev.get("s").and_then(Json::as_str) != Some("t") {
                    fail(format!("event {i}: instant without \"s\":\"t\""));
                }
                if pid == 0 {
                    rank_events += 1;
                }
            }
        }
    }

    if !saw_ranks_process {
        fail("no \"ranks\" process metadata".into());
    }
    if rank_events == 0 {
        fail("no events on any rank track (pid 0)".into());
    }
    let tracks = last_ts.len();
    println!(
        "trace_check: {path} OK — {} events ({} spans, {} instants, {} metadata) on {tracks} tracks, {rank_events} rank events",
        events.len(),
        counts.get("X").copied().unwrap_or(0),
        counts.get("i").copied().unwrap_or(0),
        counts.get("M").copied().unwrap_or(0),
    );
}
