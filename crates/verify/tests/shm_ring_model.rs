//! Model checking for the shared-mapping SPSC *byte* ring — the record
//! protocol `dcuda-net`'s shm plane runs over an `mmap`ed file. The
//! checker drives the production `byte_ring_on` code on [`VPlatform`], so
//! every length-word/body cell access and both monotonic frontier atomics
//! go through the virtual scheduler: the pad/wrap placement math and the
//! Release-publish / Acquire-observe pairing are explored exactly as the
//! mapped plane ships them.

use dcuda_queues::byte_ring_on;
use dcuda_queues::bytering::{plan_record, record_bytes};
use dcuda_verify::sched::ModelThread;
use dcuda_verify::{mutation_model, FailureKind, Model, Outcome, VPlatform};

/// Producer/consumer handoff of `msgs` 4-byte-body records over a
/// `cap`-byte mapped region. With `cap = 20` and 8-byte records the third
/// push lands at offset 16 with only 4 bytes to the edge, forcing the
/// PAD_MARKER skip — the subtlest branch of the placement planner — under
/// model-checked interleaving.
fn mk_byte_ring_handoff(cap: usize, msgs: u8) -> impl Fn() -> Vec<ModelThread> {
    move || {
        let (mut tx, mut rx) = byte_ring_on::<VPlatform>(cap);
        let producer: ModelThread = Box::new(move || {
            for i in 0..msgs {
                let body = [i + 1; 4];
                while !tx.try_push(&body) {
                    dcuda_verify::vyield();
                }
            }
        });
        let consumer: ModelThread = Box::new(move || {
            for i in 0..msgs {
                loop {
                    if let Some(body) = rx.try_pop() {
                        assert_eq!(body, [i + 1; 4], "record {i} torn or out of order");
                        break;
                    }
                    dcuda_verify::vyield();
                }
            }
        });
        vec![producer, consumer]
    }
}

/// Sanity on the geometry the tests below rely on: 8-byte records in a
/// 20-byte region place the third record across the edge.
#[test]
fn handoff_geometry_forces_the_pad_path() {
    let rec = record_bytes(4);
    assert_eq!(rec, 8);
    // After two records head = 16 in a 20-byte region; only 4 bytes remain
    // to the edge, so the third placement pads and wraps to offset 0.
    let g = plan_record(2 * rec as u64, 2 * rec as u64, 20, rec).expect("record must fit");
    assert_eq!(g.pad, 4);
    assert_eq!(g.offset, 0);
}

/// The shared-mapping handoff, pad path included, passes under bounded
/// preemption: no torn record, no double-read of a cell, no read before
/// publication, in any explored interleaving.
#[test]
fn byte_ring_handoff_passes_with_pad_path() {
    let m = Model {
        preemption_bound: 2,
        max_executions: 120_000,
        ..Model::default()
    };
    match m.check(mk_byte_ring_handoff(20, 3)) {
        Outcome::Pass { executions, .. } => {
            assert!(executions > 50, "suspiciously small branch space");
        }
        Outcome::Fail(f) => panic!("byte ring handoff failed: {f}"),
    }
}

/// A single record on the smallest legal region explores its full bounded
/// branch space without hitting the execution cap.
#[test]
fn byte_ring_single_record_completes_search() {
    let m = Model {
        preemption_bound: 2,
        max_executions: 500_000,
        ..Model::default()
    };
    match m.check(mk_byte_ring_handoff(16, 1)) {
        Outcome::Pass {
            truncated,
            executions,
        } => {
            assert!(!truncated, "bounded search hit the execution cap");
            assert!(executions > 20, "suspiciously small branch space");
        }
        Outcome::Fail(f) => panic!("single-record handoff failed: {f}"),
    }
}

/// Seeded ordering mutation: demoting the producer's Release publication
/// of `head` (exactly what a sloppy port of the shm plane to relaxed
/// stores would do) must surface as a data race on the record cells, and
/// the reported schedule must replay to the same failure.
#[test]
fn demoted_release_publication_is_caught() {
    let m = mutation_model();
    let failure = m
        .check(mk_byte_ring_handoff(16, 1))
        .failure()
        .expect("demoted Release publish must be caught")
        .clone();
    assert_eq!(failure.kind, FailureKind::DataRace);

    let replayed = m.replay(mk_byte_ring_handoff(16, 1), &failure.schedule);
    let rf = replayed
        .failure()
        .expect("replay must reproduce the failure");
    assert_eq!(rf.kind, FailureKind::DataRace);
}
