//! The pending-event set: a time-ordered queue with FIFO tie-breaking.
//!
//! # Performance engineering
//!
//! Two structural choices decouple the queue's host-side cost from the event
//! payload type and the dominant scheduling pattern of the cluster model:
//!
//! * **Arena-allocated entries.** The binary heap orders fixed-size
//!   `(time, seq, slot)` keys; payloads live in a free-listed arena and are
//!   moved exactly twice (in on schedule, out on pop) no matter how often
//!   the heap sifts. Large event enums no longer ripple through every
//!   percolation step, and slot reuse keeps the arena allocation-free at
//!   steady state.
//! * **Current-time FIFO fast path.** Simulation handlers overwhelmingly
//!   schedule follow-up events at the *current* instant (`schedule_at(now)`
//!   chains in the notified-put pipeline). Those events bypass the heap
//!   entirely and land in a FIFO holding only entries at `now`; `pop`
//!   merges the FIFO and the heap by `(time, seq)`, which preserves the
//!   global FIFO-among-equal-times order exactly. The common
//!   schedule-then-immediately-pop cycle is O(1) instead of two O(log n)
//!   heap operations.
//!
//! The FIFO can only hold entries stamped with the current time: `now` never
//! decreases, so once the clock moves past an instant no new entry can join
//! that instant's tie group, and all FIFO entries are popped (they compare
//! `<=` every heap key) before the clock can advance.

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A deterministic pending-event set.
///
/// Events scheduled for the same instant are delivered in scheduling order
/// (FIFO), which makes simulations reproducible run-to-run regardless of heap
/// internals. Popping an event advances the queue's clock; scheduling into
/// the past is a model bug and panics.
pub struct EventQueue<E> {
    /// Min-heap over (time, seq, arena slot).
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    /// Payload arena for heap-resident events; `None` slots are free.
    arena: Vec<Option<E>>,
    /// Free arena slots.
    free: Vec<u32>,
    /// Events scheduled at exactly `now`, in scheduling order.
    now_fifo: VecDeque<(u64, E)>,
    now: SimTime,
    seq: u64,
    scheduled_total: u64,
    fast_path_hits: u64,
    peak_pending: usize,
}

impl<E> EventQueue<E> {
    /// Create an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            arena: Vec::new(),
            free: Vec::new(),
            now_fifo: VecDeque::new(),
            now: SimTime::ZERO,
            seq: 0,
            scheduled_total: 0,
            fast_path_hits: 0,
            peak_pending: 0,
        }
    }

    /// Current virtual time (time of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events scheduled over the queue's lifetime.
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Events that took the current-time FIFO fast path.
    #[inline]
    pub fn fast_path_hits(&self) -> u64 {
        self.fast_path_hits
    }

    /// Largest number of simultaneously pending events observed.
    #[inline]
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// Number of events currently pending.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len() + self.now_fifo.len()
    }

    /// True when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.now_fifo.is_empty()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current time.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "EventQueue::schedule_at: scheduling into the past ({at:?} < {:?})",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.scheduled_total += 1;
        if at == self.now {
            self.fast_path_hits += 1;
            self.now_fifo.push_back((seq, event));
        } else {
            let slot = match self.free.pop() {
                Some(s) => {
                    debug_assert!(self.arena[s as usize].is_none());
                    self.arena[s as usize] = Some(event);
                    s
                }
                None => {
                    let s = u32::try_from(self.arena.len())
                        .expect("event queue exceeds u32 arena slots");
                    self.arena.push(Some(event));
                    s
                }
            };
            self.heap.push(Reverse((at, seq, slot)));
        }
        self.peak_pending = self.peak_pending.max(self.len());
    }

    /// Schedule `event` after a relative delay.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.now_fifo.is_empty() {
            self.heap.peek().map(|&Reverse((t, _, _))| t)
        } else {
            // FIFO entries are stamped `now`, which no heap entry precedes.
            Some(self.now)
        }
    }

    /// Remove and return the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let fifo_seq = self.now_fifo.front().map(|&(seq, _)| seq);
        let heap_key = self.heap.peek().map(|&Reverse(key)| key);
        let take_fifo = match (fifo_seq, heap_key) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            // A heap entry can tie the FIFO's timestamp (scheduled for this
            // instant before the clock reached it); the global sequence
            // number arbitrates FIFO order across both stores.
            (Some(fs), Some((ht, hs, _))) => (self.now, fs) < (ht, hs),
        };
        if take_fifo {
            let (_, event) = self.now_fifo.pop_front().expect("checked non-empty");
            Some((self.now, event))
        } else {
            let Reverse((t, _, slot)) = self.heap.pop().expect("checked non-empty");
            debug_assert!(t >= self.now);
            self.now = t;
            let event = self.arena[slot as usize]
                .take()
                .expect("heap key points at live arena slot");
            self.free.push(slot);
            Some((t, event))
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ps(30), "c");
        q.schedule_at(SimTime::from_ps(10), "a");
        q.schedule_at(SimTime::from_ps(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(SimTime::from_ps(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_in(SimDuration::from_micros(3), ());
        assert_eq!(q.now(), SimTime::ZERO);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_ps(3_000_000));
        assert_eq!(q.now(), t);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ps(10), 1);
        q.pop();
        q.schedule_at(SimTime::from_ps(5), 2);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ps(10), 1u32);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t.as_ps(), e), (10, 1));
        // Scheduling relative to the advanced clock.
        q.schedule_in(SimDuration::from_ps(5), 2u32);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t.as_ps(), e), (15, 2));
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn fast_path_preserves_fifo_against_heap_ties() {
        // Heap entry scheduled for t=10 from t=0; clock reaches 10; then a
        // same-time event takes the fast path. The earlier-scheduled heap
        // entry must still pop first at the tie.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ps(10), "early-heap");
        q.schedule_at(SimTime::from_ps(10), "late-heap");
        let (_, first) = q.pop().unwrap(); // advances now to 10
        assert_eq!(first, "early-heap");
        q.schedule_at(SimTime::from_ps(10), "fifo"); // fast path at now
        assert_eq!(q.fast_path_hits(), 1);
        let (_, second) = q.pop().unwrap();
        assert_eq!(second, "late-heap", "heap tie scheduled earlier wins");
        let (_, third) = q.pop().unwrap();
        assert_eq!(third, "fifo");
    }

    #[test]
    fn fast_path_interleaves_with_future_events() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ps(5), 'a');
        q.pop();
        q.schedule_at(SimTime::from_ps(5), 'b'); // fast path
        q.schedule_at(SimTime::from_ps(7), 'c');
        q.schedule_at(SimTime::from_ps(5), 'd'); // fast path
        assert_eq!(q.peek_time(), Some(SimTime::from_ps(5)));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!['b', 'd', 'c']);
    }

    #[test]
    fn arena_slots_are_reused() {
        let mut q = EventQueue::new();
        for round in 0..10 {
            for i in 0..8 {
                q.schedule_at(SimTime::from_ps(round * 100 + i + 1), i);
            }
            while q.pop().is_some() {}
        }
        // Steady-state arena: no more slots than the peak concurrent load.
        assert!(q.arena.len() <= 8, "arena grew to {}", q.arena.len());
        assert_eq!(q.peak_pending(), 8);
    }

    #[test]
    fn len_counts_both_stores() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::ZERO, 1); // fast path (now == ZERO)
        q.schedule_at(SimTime::from_ps(4), 2);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.pop();
        q.pop();
        assert!(q.is_empty());
    }
}
