//! MPI-CUDA variant of the particle simulation.
//!
//! The host owns the main loop: halo exchange of boundary-cell positions,
//! force/integrate/sort kernel, migrant exchange, arrival-integration
//! kernel. Within a node the kernel reads neighbouring cells directly; only
//! node-boundary cells cross the network. The paper notes this variant
//! "continuously fetches the book keeping counters to the host" to size its
//! messages — modeled as an extra host synchronization per iteration.

use super::model::{init_cell, migrate, step_cell, ParticleConfig, Particles, StepWork};
use super::ParticleResult;
use dcuda_core::baseline::{BaselineCosts, ExchangeMsg, MpiCudaSim};
use dcuda_core::SystemSpec;
use dcuda_device::BlockCharge;

/// Run the MPI-CUDA particle simulation. Returns the final cells and the
/// timing (with the halo-exchange share tracked separately).
pub fn run_mpicuda(spec: &SystemSpec, cfg: &ParticleConfig) -> (Vec<Particles>, ParticleResult) {
    let topo = cfg.topology();
    let total = cfg.total_cells();
    let per_node = cfg.cells_per_node as usize;
    let nodes = cfg.nodes;
    let mut cells: Vec<Particles> = (0..total).map(|c| init_cell(cfg, c)).collect();
    let mut sim = MpiCudaSim::new(spec.clone(), BaselineCosts::default(), topo);

    for _ in 0..cfg.iters {
        // 1) Halo exchange: node-boundary cell positions (counts fetched to
        //    the host first — the extra sync the paper mentions).
        sim.kernel_phase(&vec![vec![]; nodes as usize]); // D2H counter fetch + pack
        let mut msgs = Vec::new();
        for n in 0..nodes {
            let first = n as usize * per_node;
            let last = first + per_node - 1;
            if n > 0 {
                msgs.push(ExchangeMsg {
                    src: n,
                    dst: n - 1,
                    bytes: 8 * (1 + 2 * cells[first].len()) as u64,
                });
            }
            if n + 1 < nodes {
                msgs.push(ExchangeMsg {
                    src: n,
                    dst: n + 1,
                    bytes: 8 * (1 + 2 * cells[last].len()) as u64,
                });
            }
        }
        sim.exchange_phase(&msgs);

        // 2) Force + integrate + sort kernel. Numerically this is the serial
        //    reference's step (the snapshot gives identical halo semantics
        //    whether the neighbour is on-node or across the network).
        let snapshot = cells.clone();
        let mut charges: Vec<Vec<BlockCharge>> = vec![Vec::new(); nodes as usize];
        let mut works: Vec<StepWork> = Vec::with_capacity(total);
        for c in 0..total {
            let left = (c > 0).then(|| &snapshot[c - 1]);
            let right = (c + 1 < total).then(|| &snapshot[c + 1]);
            let work = step_cell(&mut cells[c], left, right, cfg);
            works.push(work);
        }
        // Migration bookkeeping happens in the same kernel (sort phase).
        let mut inbox_from_left: Vec<Particles> = vec![Particles::default(); total];
        let mut inbox_from_right: Vec<Particles> = vec![Particles::default(); total];
        for c in 0..total {
            let (to_left, to_right) = migrate(&mut cells[c], c, cfg);
            let moved = to_left.len() + to_right.len();
            let node = c / per_node;
            let mut charge = works[c].force_charge(cfg.charge_scale);
            charge.mem_bytes += 8.0 * (2.0 + 4.0 * moved as f64); // pack migrants
            charges[node].push(charge);
            if c > 0 {
                inbox_from_right[c - 1] = to_left;
            }
            if c + 1 < total {
                inbox_from_left[c + 1] = to_right;
            }
        }
        sim.kernel_phase(&charges);

        // 3) Migrant exchange across node boundaries (sized by the counters
        //    fetched after the kernel — another host synchronization, the
        //    "continuously fetches the book keeping counters" cost).
        sim.kernel_phase(&vec![vec![]; nodes as usize]);
        let mut msgs = Vec::new();
        for n in 0..nodes {
            let first = n as usize * per_node;
            let last = first + per_node - 1;
            if n > 0 {
                // Our first cell's to_left landed in inbox_from_right of the
                // last cell of node n-1.
                let m = &inbox_from_right[first - 1];
                msgs.push(ExchangeMsg {
                    src: n,
                    dst: n - 1,
                    bytes: 8 * (1 + 4 * m.len()) as u64,
                });
            }
            if n + 1 < nodes {
                let m = &inbox_from_left[last + 1];
                msgs.push(ExchangeMsg {
                    src: n,
                    dst: n + 1,
                    bytes: 8 * (1 + 4 * m.len()) as u64,
                });
            }
        }
        sim.exchange_phase(&msgs);

        // 4) Arrival-integration kernel.
        let mut charges: Vec<Vec<BlockCharge>> = vec![Vec::new(); nodes as usize];
        for c in 0..total {
            let arrived = inbox_from_left[c].len() + inbox_from_right[c].len();
            cells[c].extend(&inbox_from_left[c]);
            cells[c].extend(&inbox_from_right[c]);
            charges[c / per_node].push(BlockCharge {
                flops: arrived as f64 * 4.0,
                mem_bytes: arrived as f64 * 64.0,
            });
        }
        sim.kernel_phase(&charges);
    }

    (
        cells,
        ParticleResult {
            time_ms: sim.elapsed().as_millis_f64(),
            halo_ms: sim.exchange_elapsed().as_millis_f64(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::particles::model::serial_reference;

    #[test]
    fn matches_serial_reference() {
        let cfg = ParticleConfig::tiny(2);
        let (cells, res) = run_mpicuda(&SystemSpec::greina(), &cfg);
        let reference = serial_reference(&cfg);
        for (c, (a, b)) in cells.iter().zip(&reference).enumerate() {
            assert_eq!(a, b, "cell {c} diverged");
        }
        assert!(res.time_ms > 0.0);
        assert!(res.halo_ms > 0.0, "two nodes exchange boundary cells");
    }

    #[test]
    fn single_node_pays_no_network() {
        let cfg = ParticleConfig::tiny(1);
        let (_, res) = run_mpicuda(&SystemSpec::greina(), &cfg);
        assert!(res.time_ms > 0.0);
        // No cross-node messages, only launch/sync costs in the exchange
        // phases.
        assert!(res.halo_ms < res.time_ms * 0.2);
    }
}
