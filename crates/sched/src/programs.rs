//! The job-program registry: named, deterministic rank programs.
//!
//! A [`JobSpec`] crosses the control plane as text, so its program is a
//! name into this registry rather than a closure. Every program is fully
//! determined by `(seed, world, iters, payload)` and publishes a per-rank
//! FNV-1a checksum through an `AtomicU64` cell; [`fold_checksums`] combines
//! them order-independently (rank-salted wrapping sum), exactly the
//! conformance idiom of the root crate's workloads — which is what lets the
//! storm suite compare a job run on the shared scheduler byte-for-byte
//! against the same spec run alone on a fresh cluster.

use crate::{JobProgram, JobSpec};
use dcuda_rt::cluster::RankProgram;
use dcuda_rt::{
    allreduce_scratch_bytes, CollAlgo, CollCtx, CollPlan, Dtype, Rank, ReduceOp, RtCtx, RtQuery,
    Tag, WindowId,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// FNV-1a offset/prime (the same constants the conformance workloads use).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_u64(h: u64, v: u64) -> u64 {
    fnv_bytes(h, &v.to_le_bytes())
}

fn salt(rank: u32, sum: u64) -> u64 {
    fnv_u64(fnv_u64(FNV_OFFSET, u64::from(rank)), sum)
}

/// Window layout of a spec's program: ring-family programs stage in
/// `[0, payload)` and receive in `[payload, 2*payload)`; allreduce reduces
/// one `u64`-aligned buffer in place.
pub fn windows(spec: &JobSpec) -> Vec<usize> {
    match spec.program {
        JobProgram::Allreduce => vec![coll_len(spec)],
        _ => vec![spec.payload.max(1) * 2],
    }
}

/// Collective scratch the program's schedule needs (0 = runtime default is
/// plenty; only allreduce sizes it explicitly).
pub fn coll_scratch(spec: &JobSpec) -> usize {
    match spec.program {
        JobProgram::Allreduce => {
            allreduce_scratch_bytes(CollAlgo::Ring, coll_len(spec), 8, spec.ranks())
        }
        _ => 0,
    }
}

fn coll_len(spec: &JobSpec) -> usize {
    spec.payload.max(8).div_ceil(8) * 8
}

/// Build one program per world rank, each paired with the cell its
/// checksum lands in on completion.
pub fn build(spec: &JobSpec) -> Vec<(RankProgram, Arc<AtomicU64>)> {
    let world = spec.ranks();
    (0..world)
        .map(|_| {
            let spec = spec.clone();
            let cell = Arc::new(AtomicU64::new(0));
            let out = cell.clone();
            let program: RankProgram = Box::new(move |ctx: &mut RtCtx| {
                let sum = match spec.program {
                    JobProgram::Ring => run_ring(ctx, &spec, None),
                    JobProgram::PingPong => run_pingpong(ctx, &spec),
                    JobProgram::Allreduce => run_allreduce(ctx, &spec),
                    JobProgram::Poison { at_iter } => run_ring(ctx, &spec, Some(at_iter)),
                };
                out.store(sum, Ordering::Release);
            });
            (program, cell)
        })
        .collect()
}

/// Fold per-rank checksum cells into the job checksum: an order-independent
/// wrapping sum of rank-salted values (partition- and backend-independent).
pub fn fold_checksums(cells: &[Arc<AtomicU64>]) -> u64 {
    cells.iter().enumerate().fold(0u64, |acc, (rank, cell)| {
        acc.wrapping_add(salt(rank as u32, cell.load(Ordering::Acquire)))
    })
}

/// Fill the staging region with bytes derived from (seed, rank, iter,
/// position) — the deterministic stand-in for the compute phase.
fn fill_staging(ctx: &mut RtCtx, seed: u64, iter: u32, payload: usize) {
    let rank = ctx.rank().0;
    let w = ctx.win_mut_at(WindowId(0), 0, payload);
    let mut h = fnv_u64(
        fnv_u64(fnv_u64(FNV_OFFSET, seed), u64::from(rank)),
        u64::from(iter),
    );
    for (i, slot) in w.iter_mut().enumerate() {
        h = fnv_u64(h, i as u64);
        *slot = (h >> 24) as u8;
    }
}

fn run_ring(ctx: &mut RtCtx, spec: &JobSpec, poison_at: Option<u32>) -> u64 {
    let payload = spec.payload.max(1);
    let world = ctx.world_size();
    let rank = ctx.rank().0;
    let mut sum = FNV_OFFSET;
    for iter in 0..spec.iters {
        if poison_at == Some(iter) && rank == 0 {
            panic!("poisoned at iteration {iter}");
        }
        fill_staging(ctx, spec.seed, iter, payload);
        if world > 1 {
            ctx.ring_shift(WindowId(0), payload, 0, payload);
            let w = ctx.win_at(WindowId(0), payload, payload);
            sum = fnv_bytes(sum, w);
            ctx.ring_release();
        } else {
            // Degenerate single-rank world: checksum the staging fill so
            // the job still produces deterministic work.
            let w = ctx.win_at(WindowId(0), 0, payload);
            sum = fnv_bytes(sum, w);
        }
        if iter % 8 == 7 {
            ctx.flush();
        }
    }
    if rank == 0 {
        if let Some(at) = poison_at {
            if at >= spec.iters {
                // A poison job must die even if its trigger is past the
                // final round — the isolation suite relies on it.
                panic!("poisoned after final iteration {at}");
            }
        }
    }
    ctx.flush();
    if world > 1 {
        ctx.barrier();
    }
    sum
}

fn run_pingpong(ctx: &mut RtCtx, spec: &JobSpec) -> u64 {
    let payload = spec.payload.max(1);
    let world = ctx.world_size();
    let rank = ctx.rank().0;
    let partner = if rank.is_multiple_of(2) {
        rank + 1
    } else {
        rank - 1
    };
    let mut sum = FNV_OFFSET;
    if partner >= world {
        // Odd world: the unpaired last rank sits the game out.
        return sum;
    }
    for iter in 0..spec.iters {
        fill_staging(ctx, spec.seed, iter, payload);
        let q = RtQuery::exact(WindowId(0), Rank(partner), Tag(iter));
        if rank.is_multiple_of(2) {
            ctx.put_notify(WindowId(0), Rank(partner), payload, 0, payload, Tag(iter));
            ctx.wait_notifications(q, 1);
            sum = fnv_bytes(sum, ctx.win_at(WindowId(0), payload, payload));
        } else {
            ctx.wait_notifications(q, 1);
            // Read before replying: the reply licenses the partner's next
            // overwrite of this inbox.
            sum = fnv_bytes(sum, ctx.win_at(WindowId(0), payload, payload));
            ctx.put_notify(WindowId(0), Rank(partner), payload, 0, payload, Tag(iter));
        }
    }
    ctx.flush();
    sum
}

fn run_allreduce(ctx: &mut RtCtx, spec: &JobSpec) -> u64 {
    let len = coll_len(spec);
    let win = WindowId(0);
    let mut sum = FNV_OFFSET;
    let plan = CollPlan::builder()
        .algo(CollAlgo::Ring)
        .chunk_bytes(64)
        .op(ReduceOp::Sum)
        .dtype(Dtype::U64)
        .build()
        .expect("valid coll plan");
    for iter in 0..spec.iters {
        // Fill the reduction buffer with seed/rank/iter-determined lanes.
        let rank = ctx.rank().0;
        let w = ctx.win_mut_at(win, 0, len);
        let mut h = fnv_u64(
            fnv_u64(fnv_u64(FNV_OFFSET, spec.seed), u64::from(rank)),
            u64::from(iter),
        );
        for (i, lane) in w.chunks_exact_mut(8).enumerate() {
            h = fnv_u64(h, i as u64);
            // Keep lanes small so the sum never wraps differently per run.
            lane.copy_from_slice(&(h >> 32).to_le_bytes());
        }
        ctx.allreduce(win, 0, len, &plan);
        sum = fnv_bytes(sum, &ctx.win(win)[..len]);
        ctx.barrier();
    }
    ctx.flush();
    sum
}
