//! Compressed-row-storage matrices and the SpMV numerics (paper §IV-C).
//!
//! The matrix is distributed by a two-dimensional decomposition into square
//! `patch × patch` sub-domains, one per device, with the input vector stored
//! along the first row of the decomposition and the output vector along the
//! first column. Patches are generated deterministically so every variant
//! (and the serial reference) sees the same matrix.

use dcuda_core::types::Topology;
use dcuda_des::SplitMix64;
use dcuda_device::BlockCharge;

/// Experiment configuration for one weak-scaling point.
#[derive(Debug, Clone)]
pub struct SpmvConfig {
    /// Grid side: `grid x grid` devices (paper runs 1, 4 and 9 nodes).
    pub grid: u32,
    /// Ranks (blocks) per node.
    pub ranks_per_node: u32,
    /// Patch dimension (rows = columns per device patch; the paper uses
    /// 10,486).
    pub patch: usize,
    /// Nonzero density (the paper populates 0.1%).
    pub density: f64,
    /// Main-loop iterations.
    pub iters: u32,
    /// RNG seed.
    pub seed: u64,
    /// Use the §V broadcast-put extension (`put_notify_all`) for the
    /// on-device x fan-out instead of the notification tree.
    pub bcast_put: bool,
}

impl SpmvConfig {
    /// Paper-scale configuration.
    pub fn paper(grid: u32) -> Self {
        SpmvConfig {
            grid,
            ranks_per_node: 208,
            patch: 10_486,
            density: 0.001,
            iters: 100,
            seed: 0x5EED_CAFE,
            bcast_put: false,
        }
    }

    /// Miniature configuration for tests.
    pub fn tiny(grid: u32) -> Self {
        SpmvConfig {
            grid,
            ranks_per_node: 4,
            patch: 64,
            density: 0.05,
            iters: 3,
            seed: 7,
            bcast_put: false,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u32 {
        self.grid * self.grid
    }

    /// Rank topology.
    pub fn topology(&self) -> Topology {
        Topology {
            nodes: self.nodes(),
            ranks_per_node: self.ranks_per_node,
        }
    }

    /// Node index of grid position `(row, col)` (row-major).
    pub fn node_at(&self, row: u32, col: u32) -> u32 {
        row * self.grid + col
    }

    /// Grid position of a node.
    pub fn grid_pos(&self, node: u32) -> (u32, u32) {
        (node / self.grid, node % self.grid)
    }

    /// Row range of `local` rank within a patch (contiguous split).
    pub fn rank_rows(&self, local: u32) -> std::ops::Range<usize> {
        let per = self.patch / self.ranks_per_node as usize;
        let extra = self.patch % self.ranks_per_node as usize;
        let l = local as usize;
        let start = l * per + l.min(extra);
        let len = per + usize::from(l < extra);
        start..start + len
    }
}

/// A CSR matrix (one patch or the assembled global matrix).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Row pointers (`rows + 1` entries).
    pub row_ptr: Vec<usize>,
    /// Column indices.
    pub col_idx: Vec<usize>,
    /// Values.
    pub values: Vec<f64>,
}

impl CsrMatrix {
    /// Nonzero count.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Nonzeros in a row range.
    pub fn nnz_in(&self, rows: std::ops::Range<usize>) -> usize {
        self.row_ptr[rows.end] - self.row_ptr[rows.start]
    }

    /// `y[r] = Σ A[r, c] · x[c]` for `r` in `rows` (y indexed from
    /// `rows.start`).
    pub fn spmv_rows(&self, x: &[f64], y: &mut [f64], rows: std::ops::Range<usize>) {
        assert_eq!(x.len(), self.cols);
        for r in rows.clone() {
            let mut acc = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            y[r - rows.start] = acc;
        }
    }

    /// Extract a row range as a standalone matrix (rows renumbered from 0;
    /// columns unchanged). Lets each rank hold only its own rows instead of
    /// a full patch copy.
    pub fn slice_rows(&self, rows: std::ops::Range<usize>) -> CsrMatrix {
        let base = self.row_ptr[rows.start];
        let end = self.row_ptr[rows.end];
        CsrMatrix {
            rows: rows.len(),
            cols: self.cols,
            row_ptr: self.row_ptr[rows.start..=rows.end]
                .iter()
                .map(|p| p - base)
                .collect(),
            col_idx: self.col_idx[base..end].to_vec(),
            values: self.values[base..end].to_vec(),
        }
    }

    /// Hardware charge of multiplying `rows` (CSR streaming: 8 B value +
    /// 4 B index + 8 B gathered x per nonzero, 2 FLOPs per nonzero, plus the
    /// row-pointer and output traffic).
    pub fn spmv_charge(&self, rows: std::ops::Range<usize>) -> BlockCharge {
        let nnz = self.nnz_in(rows.clone()) as f64;
        let r = rows.len() as f64;
        BlockCharge {
            flops: 2.0 * nnz + r,
            mem_bytes: 20.0 * nnz + 16.0 * r,
        }
    }
}

/// Generate the patch owned by grid position `(prow, pcol)`.
pub fn generate_patch(cfg: &SpmvConfig, prow: u32, pcol: u32) -> CsrMatrix {
    let mut rng = SplitMix64::new(
        cfg.seed ^ ((prow as u64) << 32 | pcol as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    let n = cfg.patch;
    let expected = (n as f64 * cfg.density).max(1.0);
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    row_ptr.push(0);
    for _row in 0..n {
        // Row population: expected +- 50%, at least 1.
        let k = ((expected * 0.5) as u64 + rng.next_below((expected as u64).max(1) + 1)).max(1);
        let mut cols: Vec<usize> = (0..k).map(|_| rng.next_below(n as u64) as usize).collect();
        cols.sort_unstable();
        cols.dedup();
        for c in cols {
            col_idx.push(c);
            values.push(rng.next_f64() * 2.0 - 1.0);
        }
        row_ptr.push(col_idx.len());
    }
    CsrMatrix {
        rows: n,
        cols: n,
        row_ptr,
        col_idx,
        values,
    }
}

/// Deterministic input-vector part for grid column `pcol`.
pub fn generate_x(cfg: &SpmvConfig, pcol: u32) -> Vec<f64> {
    let mut rng = SplitMix64::new(cfg.seed ^ 0xABCD ^ (pcol as u64) << 17);
    (0..cfg.patch).map(|_| rng.next_f64() * 2.0 - 1.0).collect()
}

/// Serial reference: `y = A · x` over the whole decomposition, accumulating
/// column patches in binomial-tree order (the order both distributed
/// variants use), returning the global output vector.
pub fn serial_reference(cfg: &SpmvConfig) -> Vec<f64> {
    let g = cfg.grid;
    let n = cfg.patch;
    let mut y = vec![0.0; n * g as usize];
    for prow in 0..g {
        // Per-column partials.
        let mut partials: Vec<Vec<f64>> = (0..g)
            .map(|pcol| {
                let a = generate_patch(cfg, prow, pcol);
                let x = generate_x(cfg, pcol);
                let mut yp = vec![0.0; n];
                a.spmv_rows(&x, &mut yp, 0..n);
                yp
            })
            .collect();
        // Binomial-tree reduction to column 0 (matches both variants'
        // summation order).
        let gu = g as usize;
        let mut k = 1usize;
        while k < gu {
            let mut v = 0;
            while v + k < gu {
                let (a, b) = partials.split_at_mut(v + k);
                for (dst, src) in a[v].iter_mut().zip(b[0].iter()) {
                    *dst += src;
                }
                v += 2 * k;
            }
            k <<= 1;
        }
        y[prow as usize * n..(prow as usize + 1) * n].copy_from_slice(&partials[0]);
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SpmvConfig::tiny(2);
        assert_eq!(generate_patch(&cfg, 0, 1), generate_patch(&cfg, 0, 1));
        assert_ne!(
            generate_patch(&cfg, 0, 0).values,
            generate_patch(&cfg, 1, 0).values
        );
        assert_eq!(generate_x(&cfg, 1), generate_x(&cfg, 1));
    }

    #[test]
    fn csr_structure_is_valid() {
        let cfg = SpmvConfig::tiny(1);
        let m = generate_patch(&cfg, 0, 0);
        assert_eq!(m.row_ptr.len(), m.rows + 1);
        assert_eq!(*m.row_ptr.last().unwrap(), m.nnz());
        for w in m.row_ptr.windows(2) {
            assert!(w[0] <= w[1]);
        }
        for &c in &m.col_idx {
            assert!(c < m.cols);
        }
        // Columns sorted within each row.
        for r in 0..m.rows {
            let s = &m.col_idx[m.row_ptr[r]..m.row_ptr[r + 1]];
            assert!(s.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn spmv_identity_like() {
        // Hand-built 3x3: diagonal [2, 3, 4].
        let m = CsrMatrix {
            rows: 3,
            cols: 3,
            row_ptr: vec![0, 1, 2, 3],
            col_idx: vec![0, 1, 2],
            values: vec![2.0, 3.0, 4.0],
        };
        let x = vec![1.0, 10.0, 100.0];
        let mut y = vec![0.0; 3];
        m.spmv_rows(&x, &mut y, 0..3);
        assert_eq!(y, vec![2.0, 30.0, 400.0]);
        // Partial rows.
        let mut y2 = vec![0.0; 2];
        m.spmv_rows(&x, &mut y2, 1..3);
        assert_eq!(y2, vec![30.0, 400.0]);
    }

    #[test]
    fn rank_rows_partition_the_patch() {
        let cfg = SpmvConfig::tiny(1); // patch 64, 4 ranks
        let mut covered = 0;
        for l in 0..cfg.ranks_per_node {
            let r = cfg.rank_rows(l);
            assert_eq!(r.start, covered);
            covered = r.end;
        }
        assert_eq!(covered, cfg.patch);
        // Uneven split.
        let cfg = SpmvConfig {
            patch: 10,
            ranks_per_node: 3,
            ..SpmvConfig::tiny(1)
        };
        let lens: Vec<usize> = (0..3).map(|l| cfg.rank_rows(l).len()).collect();
        assert_eq!(lens.iter().sum::<usize>(), 10);
        assert!(lens.iter().all(|&l| l == 3 || l == 4));
    }

    #[test]
    fn serial_reference_matches_dense_computation() {
        let cfg = SpmvConfig::tiny(2);
        let y = serial_reference(&cfg);
        // Recompute densely for row-patch 0.
        let n = cfg.patch;
        let mut expect = vec![0.0; n];
        for pcol in [0u32, 1] {
            let a = generate_patch(&cfg, 0, pcol);
            let x = generate_x(&cfg, pcol);
            for (r, e) in expect.iter_mut().enumerate() {
                for k in a.row_ptr[r]..a.row_ptr[r + 1] {
                    *e += a.values[k] * x[a.col_idx[k]];
                }
            }
        }
        for (a, b) in y[0..n].iter().zip(&expect) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn charge_proportional_to_nnz() {
        let cfg = SpmvConfig::tiny(1);
        let m = generate_patch(&cfg, 0, 0);
        let c1 = m.spmv_charge(0..16);
        let c2 = m.spmv_charge(0..32);
        assert!(c2.mem_bytes > c1.mem_bytes);
        assert!(c2.flops > c1.flops);
    }

    #[test]
    fn grid_indexing() {
        let cfg = SpmvConfig::tiny(3);
        assert_eq!(cfg.nodes(), 9);
        assert_eq!(cfg.node_at(1, 2), 5);
        assert_eq!(cfg.grid_pos(5), (1, 2));
    }
}
