//! Cluster assembly: spawn host and rank threads, wire the queues, run.

use crate::ctx::RtCtx;
use crate::host::{FlushHistoryHandle, Host};
use crate::msg::{Cmd, Delivery, HostMsg};
use dcuda_queues::channel;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64};
use std::sync::Arc;

/// Cluster shape and window layout.
#[derive(Debug, Clone)]
pub struct RtConfig {
    /// Number of devices (each with its own host thread).
    pub devices: u32,
    /// Ranks per device (each its own thread — keep modest).
    pub ranks_per_device: u32,
    /// Window sizes in bytes (same layout on every rank).
    pub windows: Vec<usize>,
    /// Ring capacity for the command/delivery queues (power of two).
    pub ring_capacity: usize,
}

impl Default for RtConfig {
    fn default() -> Self {
        RtConfig {
            devices: 2,
            ranks_per_device: 4,
            windows: vec![4096],
            ring_capacity: 64,
        }
    }
}

/// Execution statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct RtReport {
    /// Puts routed by the hosts.
    pub puts: u64,
    /// Notifications enqueued at targets.
    pub notifications: u64,
}

/// A rank program: a blocking closure over the rank's context.
pub type RankProgram = Box<dyn FnOnce(&mut RtCtx) + Send>;

/// Run `programs` (one per world rank) on a threaded cluster and return
/// statistics.
///
/// # Panics
/// Panics if the program count does not match the topology or the ring
/// capacity is not a power of two.
pub fn run_cluster(cfg: &RtConfig, programs: Vec<RankProgram>) -> RtReport {
    let world = cfg.devices * cfg.ranks_per_device;
    assert_eq!(
        programs.len(),
        world as usize,
        "need one program per world rank"
    );

    // Inter-host channels.
    let mut peer_txs = Vec::with_capacity(cfg.devices as usize);
    let mut peer_rxs = VecDeque::with_capacity(cfg.devices as usize);
    for _ in 0..cfg.devices {
        let (tx, rx) = std::sync::mpsc::channel::<HostMsg>();
        peer_txs.push(tx);
        peer_rxs.push_back(rx);
    }
    let finished_global = Arc::new(AtomicU32::new(0));

    let mut hosts = Vec::new();
    let mut rank_parts: Vec<(RtCtx, RankProgram)> = Vec::new();
    let mut programs = programs.into_iter();

    for device in 0..cfg.devices {
        let barrier_epoch = Arc::new(AtomicU64::new(0));
        let mut cmd_rx = Vec::new();
        let mut delivery_tx = Vec::new();
        let mut flush = Vec::new();
        for local in 0..cfg.ranks_per_device {
            let (ctx_cmd_tx, host_cmd_rx) = channel::<Cmd>(cfg.ring_capacity);
            let (host_del_tx, ctx_del_rx) = channel::<Delivery>(cfg.ring_capacity);
            let flush_done = Arc::new(AtomicU64::new(0));
            cmd_rx.push(host_cmd_rx);
            delivery_tx.push(host_del_tx);
            flush.push(FlushHistoryHandle::new(flush_done.clone()));
            let ctx = RtCtx {
                rank: device * cfg.ranks_per_device + local,
                world,
                device,
                local,
                ranks_per_device: cfg.ranks_per_device,
                windows: cfg.windows.iter().map(|&b| vec![0u8; b]).collect(),
                cmd: ctx_cmd_tx,
                delivery: ctx_del_rx,
                pending: VecDeque::new(),
                flush_sent: 0,
                flush_done,
                barrier_epoch: barrier_epoch.clone(),
                barriers_entered: 0,
                matched: 0,
            };
            rank_parts.push((ctx, programs.next().expect("program count checked")));
        }
        hosts.push(Host {
            device,
            devices: cfg.devices,
            ranks_per_device: cfg.ranks_per_device,
            cmd_rx,
            delivery_tx,
            delivery_backlog: (0..cfg.ranks_per_device).map(|_| VecDeque::new()).collect(),
            peers: peer_txs.clone(),
            inbox: peer_rxs.pop_front().expect("one inbox per device"),
            barrier_epoch,
            barrier_arrived: 0,
            barrier_tokens: 0,
            finished_global: finished_global.clone(),
            finished_local: 0,
            flush,
            puts_routed: 0,
            notifications_sent: 0,
        });
    }

    let mut report = RtReport::default();
    std::thread::scope(|s| {
        let mut host_handles = Vec::new();
        for host in hosts {
            host_handles.push(s.spawn(move || host.run()));
        }
        let mut rank_handles = Vec::new();
        for (mut ctx, program) in rank_parts {
            rank_handles.push(s.spawn(move || {
                program(&mut ctx);
                ctx.finish();
            }));
        }
        for h in rank_handles {
            h.join().expect("rank thread panicked");
        }
        for h in host_handles {
            let (puts, notifs) = h.join().expect("host thread panicked");
            report.puts += puts;
            report.notifications += notifs;
        }
    });
    report
}
