//! Minimal wall-clock benchmark harness.
//!
//! The workspace builds offline with zero external crates, so the benches
//! under `benches/` time themselves with this ~60-line harness instead of
//! Criterion: one warmup call sizes the iteration count toward a fixed time
//! budget, then every iteration is timed and the spread reported. Good
//! enough to compare simulator-engineering alternatives (linear vs indexed
//! matcher, serial vs parallel driver) by factors, which is all the benches
//! claim.

use std::time::Instant;

/// Timing summary of one benchmark case.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Case name as printed.
    pub name: String,
    /// Timed iterations (after warmup).
    pub iters: u32,
    /// Mean wall time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Fastest iteration, nanoseconds.
    pub min_ns: f64,
}

impl BenchResult {
    /// Mean milliseconds per iteration.
    pub fn mean_ms(&self) -> f64 {
        self.mean_ns / 1e6
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Time `f`, print one summary line, and return the measurements.
///
/// One warmup call sizes the loop: enough iterations to fill ~300 ms of
/// wall time, clamped to [3, 30] so a slow case still gets a spread and a
/// fast one doesn't spin forever.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> BenchResult {
    let warmup = Instant::now();
    std::hint::black_box(f());
    let once_ns = warmup.elapsed().as_nanos().max(1) as f64;
    let iters = ((3e8 / once_ns) as u32).clamp(3, 30);
    let mut total_ns = 0.0;
    let mut min_ns = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(f());
        let ns = t.elapsed().as_nanos() as f64;
        total_ns += ns;
        min_ns = min_ns.min(ns);
    }
    let r = BenchResult {
        name: name.to_string(),
        iters,
        mean_ns: total_ns / iters as f64,
        min_ns,
    };
    println!(
        "bench {:<44} {:>12}/iter (min {:>12}, {} iters)",
        r.name,
        fmt_ns(r.mean_ns),
        fmt_ns(r.min_ns),
        r.iters
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_sane_numbers() {
        let r = bench("noop", || 42u64);
        assert!(r.iters >= 3);
        assert!(r.min_ns <= r.mean_ns);
        assert!(r.mean_ns > 0.0);
    }

    #[test]
    fn formatting_covers_scales() {
        assert!(fmt_ns(5.0).ends_with("ns"));
        assert!(fmt_ns(5.0e3).ends_with("us"));
        assert!(fmt_ns(5.0e6).ends_with("ms"));
        assert!(fmt_ns(5.0e9).ends_with(" s"));
    }
}
