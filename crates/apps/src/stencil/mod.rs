//! COSMO horizontal-diffusion stencil (paper §IV-C, Figure 10).
//!
//! A simplified version of the horizontal diffusion kernel from the COSMO
//! atmospheric model: four dependent stencils (`lap`, `flx`, `fly`, `out`)
//! over a three-dimensional regular grid with a limited number of vertical
//! levels, applied in three compute phases per iteration, each followed by a
//! one-point halo exchange along the j-decomposition.
//!
//! Grid storage is `[j][k][i]` with `i` contiguous, so one j-line (a halo)
//! is one contiguous segment of `KSIZE × ISIZE` doubles = 16 kB with the
//! paper's dimensions — exactly the per-halo message size of the MPI-CUDA
//! variant, while the dCUDA variant sends one 1 kB message per vertical
//! level (paper: "the MPI-CUDA variant sends one 16 kB message per halo,
//! while the dCUDA variant sends 16 separate 1 kB messages").

pub mod dcuda;
pub mod mpicuda;
pub mod numerics;

pub use dcuda::run_dcuda;
pub use mpicuda::run_mpicuda;
pub use numerics::{Dims, StencilParams};

use dcuda_core::types::Topology;

/// Full experiment configuration for one weak-scaling point.
#[derive(Debug, Clone)]
pub struct StencilConfig {
    /// Cluster nodes.
    pub nodes: u32,
    /// Ranks (blocks) per node.
    pub ranks_per_node: u32,
    /// Interior j-lines per rank.
    pub j_per_rank: usize,
    /// Grid dimensions of one line.
    pub dims: Dims,
    /// Main-loop iterations.
    pub iters: u32,
}

impl StencilConfig {
    /// The paper-scale per-device workload: 128 × (208·3) × 16 grid points.
    pub fn paper(nodes: u32) -> Self {
        StencilConfig {
            nodes,
            ranks_per_node: 208,
            j_per_rank: 3,
            dims: Dims {
                isize: 128,
                ksize: 16,
            },
            iters: 100,
        }
    }

    /// A miniature configuration for unit tests.
    pub fn tiny(nodes: u32) -> Self {
        StencilConfig {
            nodes,
            ranks_per_node: 4,
            j_per_rank: 2,
            dims: Dims {
                isize: 16,
                ksize: 2,
            },
            iters: 4,
        }
    }

    /// Rank topology.
    pub fn topology(&self) -> Topology {
        Topology {
            nodes: self.nodes,
            ranks_per_node: self.ranks_per_node,
        }
    }

    /// Bytes of one j-line.
    pub fn line_bytes(&self) -> usize {
        self.dims.line_len() * 8
    }

    /// Total interior j-lines on one node.
    pub fn j_per_node(&self) -> usize {
        self.j_per_rank * self.ranks_per_node as usize
    }

    /// Total interior j-lines across the cluster.
    pub fn j_total(&self) -> usize {
        self.j_per_node() * self.nodes as usize
    }
}

/// Timing series of one weak-scaling point (one bar group of Figure 10).
#[derive(Debug, Clone, Copy)]
pub struct StencilResult {
    /// Execution time in ms.
    pub time_ms: f64,
    /// Halo-exchange-only time in ms (reported by the MPI-CUDA variant).
    pub halo_ms: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcuda_core::SystemSpec;

    /// dCUDA and MPI-CUDA must compute identical fields (they share the
    /// numerics), and both must match the serial reference.
    #[test]
    fn variants_agree_with_serial_reference() {
        let cfg = StencilConfig::tiny(2);
        let spec = SystemSpec::greina();
        let (d_field, _) = run_dcuda(&spec, &cfg);
        let (m_field, _) = run_mpicuda(&spec, &cfg);
        let reference = numerics::serial_reference(&cfg);
        assert_eq!(d_field.len(), reference.len());
        for (i, ((d, m), r)) in d_field
            .iter()
            .zip(m_field.iter())
            .zip(reference.iter())
            .enumerate()
        {
            assert!(
                (d - r).abs() < 1e-12,
                "dCUDA diverges from reference at {i}: {d} vs {r}"
            );
            assert!(
                (m - r).abs() < 1e-12,
                "MPI-CUDA diverges from reference at {i}: {m} vs {r}"
            );
        }
    }

    #[test]
    fn dcuda_overlaps_halo_cost_in_weak_scaling() {
        // The Figure 10 shape at miniature scale: the MPI-CUDA variant's
        // multi-node time exceeds the dCUDA variant's.
        let spec = SystemSpec::greina();
        let mut cfg = StencilConfig::tiny(2);
        // Realistic occupancy (8 blocks/SM) — at 2 blocks/SM there is not
        // enough spare parallelism to hide the halo latency (Little's law) —
        // and enough per-rank work for the latency fraction to be paper-like.
        cfg.ranks_per_node = 104;
        cfg.j_per_rank = 6;
        cfg.iters = 10;
        cfg.dims = Dims {
            isize: 128,
            ksize: 16,
        };
        let (_, d) = run_dcuda(&spec, &cfg);
        let (_, m) = run_mpicuda(&spec, &cfg);
        assert!(
            d.time_ms < m.time_ms,
            "dCUDA {} ms should beat MPI-CUDA {} ms on 2 nodes",
            d.time_ms,
            m.time_ms
        );
        assert!(m.halo_ms > 0.0);
    }
}
