//! The dCUDA programming model — device-side remote memory access with
//! target notification — and its runtime, on the simulated GPU cluster.
//!
//! This crate is the reproduction of the paper's primary contribution
//! (Gysi, Bär, Hoefler: *dCUDA: Hardware Supported Overlap of Computation and
//! Communication*, SC'16). It provides:
//!
//! * the **programming model** ([`kernel`]): ranks (= CUDA blocks) implement
//!   [`RankKernel`]; inside a step they do real math on their window memory,
//!   accrue hardware cost charges, and issue `put_notify` / `get_notify` /
//!   `put` operations; they suspend on `wait_notifications`, `barrier` or
//!   `flush` — the same API surface as the paper's Figure 2 listing;
//! * **windows** ([`window`]): per-rank memory ranges registered into a
//!   global address space; windows of ranks sharing a device may physically
//!   overlap, enabling the zero-copy fast path;
//! * the **runtime** ([`world`]): the event-driven model of the paper's
//!   architecture (Figure 4/5) — device-side library, command / ack /
//!   notification queues over PCIe, one host event handler and per-rank
//!   block managers per node, MPI transport between nodes — driven on the
//!   [`dcuda_des`] kernel with the [`dcuda_device`] and [`dcuda_fabric`]
//!   models supplying timing;
//! * the **MPI-CUDA baseline driver** ([`baseline`]): the traditional
//!   host-controlled alternation of kernel launches and MPI phases that the
//!   paper compares against (Figure 1, left).

#![warn(missing_docs)]

pub mod baseline;
pub mod kernel;
pub mod pool;
pub mod report;
pub mod spec;
pub mod types;
pub mod verify_mode;
pub mod window;
pub mod world;

pub use kernel::{RankCtx, RankKernel, Suspend, IBARRIER_WIN};
pub use report::{RunReport, SchedStats};
pub use spec::{HostSpec, SystemSpec};
pub use types::{Rank, Tag, WinId};
pub use window::WindowSpec;
pub use world::ClusterSim;

// Re-exported so downstream crates can consume traces without a direct
// `dcuda-trace` dependency.
pub use dcuda_trace::{TraceSummary, Tracer};
