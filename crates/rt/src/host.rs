//! The per-device host thread: event handler plus block managers
//! (paper Figure 4), executed by a single worker as in §III-A.
//!
//! The host is written against the [`Transport`] trait only: the same
//! progress loop runs over the in-process shared-memory plane and over
//! `dcuda-net`'s multi-process socket mesh. World quiescence combines the
//! process-local `finished_global` counter with `Finished` announcements
//! received from remote processes; the final-drain argument relies on every
//! transport delivering per-connection FIFO, so a host's `Deliver`s always
//! precede its `Finished` broadcasts at the receiver.

use crate::coll::COLL_TAG_BIT;
use crate::msg::{Cmd, Delivery};
use crate::types::RtError;
use dcuda_des::SplitMix64;
use dcuda_net::{NetError, NetStats, Transport, WireMsg};
use dcuda_queues::{DedupWindow, Notification, Receiver, Sender, TrySendError, DEDUP_WINDOW};
use dcuda_trace::Tracer;
use dcuda_verify::ShardCounters;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Per-local-rank flush bookkeeping: completed ids become visible to the
/// rank only as a consecutive prefix ("the flush identifier of the last
/// processed remote memory access operation whose predecessors are done as
/// well", paper §III-B).
struct FlushHistory {
    frontier: u64,
    completed: BinaryHeap<std::cmp::Reverse<u64>>,
    publish: Arc<AtomicU64>,
}

impl FlushHistory {
    fn new(publish: Arc<AtomicU64>) -> Self {
        FlushHistory {
            frontier: 0,
            completed: BinaryHeap::new(),
            publish,
        }
    }

    fn complete(&mut self, id: u64) {
        if id <= self.frontier {
            // Duplicate ack for an id the frontier already passed; absorbing
            // it here keeps the heap from wedging below a stale entry.
            return;
        }
        self.completed.push(std::cmp::Reverse(id));
        while let Some(&std::cmp::Reverse(top)) = self.completed.peek() {
            if top <= self.frontier {
                self.completed.pop();
            } else if top == self.frontier + 1 {
                self.completed.pop();
                self.frontier += 1;
            } else {
                break;
            }
        }
        self.publish.store(self.frontier, Ordering::Release);
    }
}

/// Per-host fault-injection state: a seeded origin-side packet mangler plus
/// receiver-side dedup windows (one per origin host).
///
/// "Dropping" a `Deliver` means the first copy never reaches the wire and the
/// message parks in [`retransmit`](Self::retransmit); it is resent — with the
/// *same* sequence number — on a later progress-loop pass, and always before
/// any local `Finish` is counted, which preserves the quiescence argument in
/// [`Host::run`]. Duplication sends two copies back-to-back; the receiver's
/// window suppresses the echo before it can double-deliver or double-ack.
pub(crate) struct HostFaults {
    rng: SplitMix64,
    drop_p: f64,
    dup_p: f64,
    /// Next outbound sequence number per destination device.
    next_seq: Vec<u64>,
    /// Dropped `Deliver`s awaiting retransmission: (peer, seq, message).
    retransmit: VecDeque<(u32, u64, WireMsg)>,
    /// Inbound dedup window per origin device.
    dedup: Vec<DedupWindow>,
    /// Retransmissions performed.
    retries: u64,
}

impl HostFaults {
    pub fn new(seed: u64, drop_p: f64, dup_p: f64, device: u32, devices: u32) -> Self {
        // Distinct deterministic stream per host.
        let stream = seed ^ 0xA24B_AED4_963E_E407u64.wrapping_mul(u64::from(device) + 1);
        HostFaults {
            rng: SplitMix64::new(stream),
            drop_p,
            dup_p,
            next_seq: vec![0; devices as usize],
            retransmit: VecDeque::new(),
            dedup: (0..devices).map(|_| DedupWindow::new()).collect(),
            retries: 0,
        }
    }

    fn dups_suppressed(&self) -> u64 {
        self.dedup.iter().map(DedupWindow::suppressed).sum()
    }
}

/// Statistics one host thread hands back after quiescence.
pub(crate) struct HostStats {
    pub puts: u64,
    pub notifications: u64,
    pub retries: u64,
    pub dups_suppressed: u64,
}

/// Everything a host thread returns on clean shutdown.
pub(crate) struct HostOutcome {
    pub stats: HostStats,
    pub net: NetStats,
    pub net_trace: Tracer,
    pub counters: Option<Box<ShardCounters>>,
}

/// Everything one host thread owns.
pub(crate) struct Host {
    pub device: u32,
    pub devices: u32,
    pub ranks_per_device: u32,
    /// Command rings from local ranks.
    pub cmd_rx: Vec<Receiver<Cmd>>,
    /// Delivery rings to local ranks.
    pub delivery_tx: Vec<Sender<Delivery>>,
    /// Overflow buffers when a delivery ring is momentarily full.
    pub delivery_backlog: Vec<VecDeque<Delivery>>,
    /// This device's endpoint on the inter-host plane.
    pub plane: Box<dyn Transport>,
    /// Count of finished ranks in *this process*.
    pub finished_global: Arc<AtomicU32>,
    pub finished_local: u32,
    /// Ranks on remote processes announced finished via the plane.
    pub finished_remote: u32,
    /// Cluster-wide first-failure flag; the host bails out when set.
    pub abort: Arc<AtomicBool>,
    /// Flush bookkeeping per local rank.
    pub flush: Vec<FlushHistoryHandle>,
    /// Statistics.
    pub puts_routed: u64,
    pub notifications_sent: u64,
    /// Fault-injection state (`None` on a healthy fabric).
    pub faults: Option<HostFaults>,
    /// Invariant-counter shard (verified runs only). The host accounts the
    /// fabric side of conservation: a notification counts as *delivered*
    /// when it enters the target rank's delivery ring and as *dropped* when
    /// the target finished before it could (disconnected ring or residual
    /// backlog at shutdown) — so `delivered + dropped == sent` holds exactly
    /// even for fire-and-forget puts the target never polls.
    pub counters: Option<Box<ShardCounters>>,
}

/// Public wrapper so `cluster` can construct histories.
pub(crate) struct FlushHistoryHandle(FlushHistory);

impl FlushHistoryHandle {
    pub fn new(publish: Arc<AtomicU64>) -> Self {
        FlushHistoryHandle(FlushHistory::new(publish))
    }
}

fn net_err(e: NetError) -> RtError {
    RtError::Transport {
        detail: e.to_string(),
    }
}

impl Host {
    fn local_of(&self, rank: u32) -> Option<u32> {
        let device = rank / self.ranks_per_device;
        (device == self.device).then(|| rank % self.ranks_per_device)
    }

    fn device_of(&self, rank: u32) -> u32 {
        rank / self.ranks_per_device
    }

    /// Try to push backlog + a new delivery into a rank's ring. Collective
    /// traffic (tag bit 31) is carried like any other delivery but is
    /// invisible to the user-facing notification counter.
    fn deliver_local(&mut self, local: u32, delivery: Delivery) {
        self.notifications_sent +=
            u64::from(delivery.notify && delivery.notif.tag & COLL_TAG_BIT == 0);
        self.delivery_backlog[local as usize].push_back(delivery);
        self.pump_backlog(local);
    }

    fn pump_backlog(&mut self, local: u32) {
        let target = self.device * self.ranks_per_device + local;
        while let Some(d) = self.delivery_backlog[local as usize].pop_front() {
            let notify = d.notify;
            let notif = d.notif;
            match self.delivery_tx[local as usize].try_send(d) {
                Ok(()) => {
                    // Collective traffic stays out of the conservation
                    // ledger on both sides (its sends skip `note_sent` too).
                    if notify && notif.tag & COLL_TAG_BIT == 0 {
                        if let Some(c) = self.counters.as_mut() {
                            c.note_delivered(target, notif);
                        }
                    }
                }
                Err(TrySendError::Full(d)) => {
                    self.delivery_backlog[local as usize].push_front(d);
                    return;
                }
                Err(TrySendError::Disconnected(d)) => {
                    // Rank exited; residual deliveries are moot — but the
                    // conservation ledger must still account for them.
                    if let Some(c) = self.counters.as_mut() {
                        if d.notify && d.notif.tag & COLL_TAG_BIT == 0 {
                            c.note_dropped(target, d.notif);
                        }
                        for d in self.delivery_backlog[local as usize].drain(..) {
                            if d.notify && d.notif.tag & COLL_TAG_BIT == 0 {
                                c.note_dropped(target, d.notif);
                            }
                        }
                    }
                    self.delivery_backlog[local as usize].clear();
                    return;
                }
            }
        }
    }

    fn handle_cmd(&mut self, local: u32, cmd: Cmd) -> Result<(), RtError> {
        match cmd {
            Cmd::Put {
                dst,
                win,
                dst_off,
                data,
                tag,
                notify,
                flush_id,
            } => {
                // Collective-engine puts (tag bit 31) route like user puts
                // but are accounted in `CollStats`, not here.
                self.puts_routed += u64::from(tag & COLL_TAG_BIT == 0);
                let rank = self.device * self.ranks_per_device + local;
                match self.local_of(dst) {
                    Some(dst_local) => {
                        // Device-local: deliver directly, flush completes
                        // immediately.
                        let delivery = Delivery {
                            notif: Notification {
                                win,
                                source: rank,
                                tag,
                            },
                            win,
                            dst_off,
                            data,
                            notify,
                        };
                        self.deliver_local(dst_local, delivery);
                        self.flush[local as usize].0.complete(flush_id);
                    }
                    None => {
                        let peer = self.device_of(dst);
                        let dst_local = dst % self.ranks_per_device;
                        let origin_device = self.device;
                        let make_msg = move |seq: u64| WireMsg::Deliver {
                            dst_local,
                            win,
                            dst_off: dst_off as u64,
                            source: rank,
                            tag,
                            notify,
                            seq,
                            origin_device,
                            origin_local: local,
                            flush_id,
                            data,
                        };
                        match self.faults.as_mut() {
                            None => {
                                self.plane.send(peer, make_msg(0)).map_err(net_err)?;
                            }
                            Some(f) => {
                                let seq = f.next_seq[peer as usize];
                                f.next_seq[peer as usize] += 1;
                                // A parked retransmit must never age past the
                                // receiver's replay window, or dedup would
                                // eat the only surviving copy.
                                let must_drain = f.retransmit.iter().any(|&(p, s, _)| {
                                    p == peer && seq.saturating_sub(s) >= DEDUP_WINDOW / 2
                                });
                                if must_drain {
                                    self.flush_retransmits()?;
                                }
                                let msg = make_msg(seq);
                                let f = match self.faults.as_mut() {
                                    Some(f) => f,
                                    None => return Ok(()),
                                };
                                if f.rng.next_f64() < f.drop_p {
                                    // First copy lost in flight: park it for
                                    // a same-seq retransmission.
                                    f.retransmit.push_back((peer, seq, msg));
                                } else {
                                    if f.rng.next_f64() < f.dup_p {
                                        self.plane.send(peer, msg.clone()).map_err(net_err)?;
                                    }
                                    self.plane.send(peer, msg).map_err(net_err)?;
                                }
                            }
                        }
                    }
                }
            }
            Cmd::Finish => {
                // Flush parked retransmits *before* the finish is counted or
                // announced: the quiescence drain in `run` relies on every
                // inter-host `Deliver` happening-before the matching finish
                // becomes observable (counter increment locally, `Finished`
                // message remotely — FIFO per connection).
                self.flush_retransmits()?;
                self.finished_local += 1;
                self.finished_global.fetch_add(1, Ordering::AcqRel);
                for d in self.plane.remote_devices() {
                    self.plane
                        .send(
                            d,
                            WireMsg::Finished {
                                device: self.device,
                                ranks: 1,
                            },
                        )
                        .map_err(net_err)?;
                }
            }
        }
        Ok(())
    }

    fn handle_peer(&mut self, msg: WireMsg) -> Result<(), RtError> {
        match msg {
            WireMsg::Deliver {
                dst_local,
                win,
                dst_off,
                source,
                tag,
                notify,
                seq,
                origin_device,
                origin_local,
                flush_id,
                data,
            } => {
                if let Some(f) = self.faults.as_mut() {
                    if !f.dedup[origin_device as usize].accept(seq) {
                        // Duplicate copy: no second delivery, no second ack
                        // (a double-complete would corrupt flush ordering).
                        return Ok(());
                    }
                }
                let delivery = Delivery {
                    notif: Notification { win, source, tag },
                    win,
                    dst_off: dst_off as usize,
                    data,
                    notify,
                };
                self.deliver_local(dst_local, delivery);
                self.plane
                    .send(
                        origin_device,
                        WireMsg::Ack {
                            origin_local,
                            flush_id,
                        },
                    )
                    .map_err(net_err)?;
            }
            WireMsg::Ack {
                origin_local,
                flush_id,
            } => {
                self.flush[origin_local as usize].0.complete(flush_id);
            }
            WireMsg::Finished { device: _, ranks } => {
                self.finished_remote += ranks;
            }
        }
        Ok(())
    }

    /// Resend every parked (dropped) `Deliver` with its original sequence
    /// number. Returns whether anything was sent.
    fn flush_retransmits(&mut self) -> Result<bool, RtError> {
        let mut any = false;
        loop {
            let item = match self.faults.as_mut() {
                Some(f) => f.retransmit.pop_front(),
                None => None,
            };
            let Some((peer, _, msg)) = item else { break };
            if let Some(f) = self.faults.as_mut() {
                f.retries += 1;
            }
            self.plane.send(peer, msg).map_err(net_err)?;
            any = true;
        }
        Ok(any)
    }

    /// Main progress loop. Returns statistics, plane-level counters and the
    /// invariant-counter shard (verified runs only) after world quiescence,
    /// or the first transport/abort failure.
    pub fn run(mut self) -> Result<HostOutcome, RtError> {
        let world = self.devices * self.ranks_per_device;
        loop {
            if self.abort.load(Ordering::Acquire) {
                // Another thread failed first; unwind so the scope joins.
                return Err(RtError::Aborted);
            }
            let mut progress = false;
            for local in 0..self.ranks_per_device {
                // Drain this rank's command ring.
                while let Ok(cmd) = self.cmd_rx[local as usize].try_recv() {
                    progress = true;
                    self.handle_cmd(local, cmd)?;
                }
                self.pump_backlog(local);
            }
            progress |= self.flush_retransmits()?;
            while let Some(msg) = self.plane.try_recv().map_err(net_err)? {
                progress = true;
                self.handle_peer(msg)?;
            }
            // Drive deferred transport work (coalesced flushes, credit- and
            // rendezvous-stalled sends, socket-level retransmits).
            progress |= self.plane.pump().map_err(net_err)?;
            if !progress {
                let done = self.finished_global.load(Ordering::Acquire) + self.finished_remote;
                if done == world {
                    if !self.plane.idle() {
                        // Quiescent protocol but bytes still queued (e.g. a
                        // rendezvous payload awaiting its grant): keep
                        // pumping, never exit with undelivered sends.
                        continue;
                    }
                    // All ranks everywhere are done and nothing is pending.
                    // Every inbound `Deliver` became visible before its
                    // origin's finish did (channel send happens-before the
                    // counter increment in-process; per-connection FIFO
                    // orders `Deliver` before `Finished` across processes),
                    // so one final drain sees the complete stream; whatever
                    // the exited ranks never picked up is accounted as
                    // dropped.
                    while let Some(msg) = self.plane.try_recv().map_err(net_err)? {
                        self.handle_peer(msg)?;
                    }
                    // Best-effort flush of the acks the drain just queued;
                    // peers that already exited are gone, not errors.
                    let _ = self.plane.pump();
                    for local in 0..self.ranks_per_device {
                        self.pump_backlog(local);
                    }
                    if self.counters.is_some() {
                        for local in 0..self.ranks_per_device {
                            let target = self.device * self.ranks_per_device + local;
                            let residue: Vec<Notification> = self.delivery_backlog[local as usize]
                                .drain(..)
                                .filter(|d| d.notify && d.notif.tag & COLL_TAG_BIT == 0)
                                .map(|d| d.notif)
                                .collect();
                            if let Some(c) = self.counters.as_mut() {
                                for n in residue {
                                    c.note_dropped(target, n);
                                }
                            }
                        }
                    }
                    let stats = HostStats {
                        puts: self.puts_routed,
                        notifications: self.notifications_sent,
                        retries: self.faults.as_ref().map_or(0, |f| f.retries),
                        dups_suppressed: self
                            .faults
                            .as_ref()
                            .map_or(0, HostFaults::dups_suppressed),
                    };
                    return Ok(HostOutcome {
                        stats,
                        net: self.plane.stats(),
                        net_trace: self.plane.take_tracer(),
                        counters: self.counters,
                    });
                }
                if let Some(proc) = self.plane.peer_gone() {
                    // A worker process died before the world finished: fail
                    // loudly instead of spinning on messages that will never
                    // arrive.
                    return Err(RtError::Transport {
                        detail: format!("peer process {proc} died before quiescence"),
                    });
                }
                std::thread::yield_now();
            }
        }
    }
}
