//! Cross-crate integration tests through the `dcuda` facade: the simulated
//! and threaded backends computing the same problems, calibration against
//! the paper's measured numbers, and figure-shape checks.

use dcuda::apps::micro::overlap::{self, OverlapConfig, Workload};
use dcuda::apps::micro::pingpong::{self, Placement};
use dcuda::apps::particles::{self, ParticleConfig};
use dcuda::apps::spmv::{self, SpmvConfig};
use dcuda::apps::stencil::{self, StencilConfig};
use dcuda::core::types::Topology;
use dcuda::core::{ClusterSim, RankCtx, RankKernel, Suspend, SystemSpec, WindowSpec};
use dcuda::rt::{run_cluster, RtConfig, RtQuery};
use dcuda::rt::{Rank as RtRank, Tag as RtTag, WindowId as RtWin};

/// The paper's §IV-B calibration: empty-packet notified-put latencies.
#[test]
fn calibration_matches_paper_measurements() {
    let spec = SystemSpec::greina();
    let shared = pingpong::run(&spec, Placement::Shared, 1, 300);
    let distributed = pingpong::run(&spec, Placement::Distributed, 1, 300);
    assert!(
        (shared.latency_us - 7.8).abs() / 7.8 < 0.1,
        "shared {} vs paper 7.8 us",
        shared.latency_us
    );
    assert!(
        (distributed.latency_us - 19.4).abs() / 19.4 < 0.1,
        "distributed {} vs paper 19.4 us",
        distributed.latency_us
    );
    // Little's law (paper §II): the network operating point implies ~112 kB
    // in flight to saturate.
    let bw = spec.network.device_bandwidth;
    let inflight_kb = bw * distributed.latency_us * 1e-6 / 1024.0;
    assert!(inflight_kb > 80.0 && inflight_kb < 150.0);
}

/// All three mini-apps agree with their serial references under both
/// programming models (tiny configurations).
#[test]
fn all_miniapps_cross_validate() {
    let spec = SystemSpec::greina();

    let cfg = StencilConfig::tiny(2);
    let (d, _) = stencil::run_dcuda(&spec, &cfg);
    let (m, _) = stencil::run_mpicuda(&spec, &cfg);
    let r = stencil::numerics::serial_reference(&cfg);
    assert!(d.iter().zip(&r).all(|(a, b)| (a - b).abs() < 1e-12));
    assert!(m.iter().zip(&r).all(|(a, b)| (a - b).abs() < 1e-12));

    let cfg = ParticleConfig::tiny(2);
    let (d, _) = particles::run_dcuda(&spec, &cfg);
    let (m, _) = particles::run_mpicuda(&spec, &cfg);
    let r = particles::model::serial_reference(&cfg);
    assert_eq!(particles::model::digest(&d), particles::model::digest(&r));
    assert_eq!(particles::model::digest(&m), particles::model::digest(&r));

    let cfg = SpmvConfig::tiny(2);
    let (d, _) = spmv::run_dcuda(&spec, &cfg);
    let (m, _) = spmv::run_mpicuda(&spec, &cfg);
    let r = spmv::csr::serial_reference(&cfg);
    assert!(d
        .iter()
        .zip(&r)
        .all(|(a, b)| (a - b).abs() <= 1e-9 * b.abs().max(1.0)));
    assert!(m
        .iter()
        .zip(&r)
        .all(|(a, b)| (a - b).abs() <= 1e-9 * b.abs().max(1.0)));
}

/// The same ring-exchange program gives the same data on the simulated and
/// the threaded backend.
#[test]
fn simulated_and_threaded_backends_agree() {
    const VAL_BASE: f64 = 10.0;
    let world = 4u32;

    // --- simulated backend ---
    struct K {
        phase: u32,
        right: u32,
    }
    impl RankKernel for K {
        fn resume(&mut self, ctx: &mut RankCtx<'_>) -> Suspend {
            self.phase += 1;
            match self.phase {
                1 => {
                    let me = ctx.rank().0;
                    ctx.win_f64_mut(dcuda::core::WinId(0))[0] = VAL_BASE + me as f64;
                    // Send my value to the right neighbour's slot 1.
                    ctx.put_notify(
                        dcuda::core::WinId(0),
                        dcuda::core::Rank(self.right),
                        8,
                        0,
                        8,
                        0,
                    );
                    Suspend::WaitNotifications {
                        win: None,
                        source: None,
                        tag: Some(0),
                        count: 1,
                    }
                }
                _ => Suspend::Finished,
            }
        }
    }
    let topo = Topology {
        nodes: 2,
        ranks_per_node: 2,
    };
    let win = WindowSpec::uniform(&topo, 16);
    let kernels: Vec<Box<dyn RankKernel>> = (0..world)
        .map(|r| {
            Box::new(K {
                phase: 0,
                right: (r + 1) % world,
            }) as Box<dyn RankKernel>
        })
        .collect();
    let mut sim = ClusterSim::new(SystemSpec::greina(), topo, vec![win], kernels);
    sim.run();
    let mut sim_values = Vec::new();
    for r in 0..world {
        let node = r / 2;
        let local = (r % 2) as usize;
        let arena = sim.arena(node, dcuda::core::WinId(0));
        sim_values.push(dcuda::core::window::f64_slice(&arena[local * 16 + 8..local * 16 + 16])[0]);
    }

    // --- threaded backend ---
    let results: Vec<_> = (0..world)
        .map(|_| std::sync::Arc::new(std::sync::Mutex::new(0.0f64)))
        .collect();
    let mut programs: Vec<dcuda::rt::cluster::RankProgram> = Vec::new();
    for r in 0..world {
        let out = results[r as usize].clone();
        programs.push(Box::new(move |ctx| {
            let v = VAL_BASE + r as f64;
            ctx.win_mut(RtWin(0))[0..8].copy_from_slice(&v.to_le_bytes());
            ctx.put_notify(RtWin(0), RtRank((r + 1) % world), 8, 0, 8, RtTag(0));
            ctx.wait_notifications(RtQuery::exact(RtWin(0), RtRank::ANY, RtTag(0)), 1);
            let got = f64::from_le_bytes(ctx.win(RtWin(0))[8..16].try_into().unwrap());
            *out.lock().unwrap() = got;
        }));
    }
    run_cluster(
        &RtConfig {
            devices: 2,
            ranks_per_device: 2,
            windows: vec![16],
            ring_capacity: 8,
            ..RtConfig::default()
        },
        programs,
    );
    let rt_values: Vec<f64> = results.iter().map(|m| *m.lock().unwrap()).collect();

    // Both backends: rank r received from its left neighbour.
    for r in 0..world as usize {
        let expect = VAL_BASE + ((r as u32 + world - 1) % world) as f64;
        assert_eq!(sim_values[r], expect, "sim backend rank {r}");
        assert_eq!(rt_values[r], expect, "rt backend rank {r}");
    }
}

/// The headline claim end-to-end: the stencil's dCUDA variant weak-scales
/// nearly flat while the MPI-CUDA variant pays its halo time.
///
/// The quick tier runs a reduced world so `cargo test` stays fast; set
/// `DCUDA_FULL_TESTS=1` for the paper-scale configuration (CI runs it).
#[test]
fn headline_overlap_claim_holds() {
    let full = dcuda::des::check::full_tier("paper-scale 104-rank stencil");
    let (rpn, iters) = if full { (104, 10) } else { (52, 3) };
    let spec = SystemSpec::greina();
    let mk = |nodes| {
        let mut cfg = StencilConfig::paper(nodes);
        cfg.ranks_per_node = rpn;
        cfg.j_per_rank = 4;
        cfg.iters = iters;
        cfg
    };
    let (_, d1) = stencil::run_dcuda(&spec, &mk(1));
    let (_, d4) = stencil::run_dcuda(&spec, &mk(4));
    let (_, m1) = stencil::run_mpicuda(&spec, &mk(1));
    let (_, m4) = stencil::run_mpicuda(&spec, &mk(4));
    let d_scaling = (d4.time_ms - d1.time_ms) / d1.time_ms;
    let m_scaling = (m4.time_ms - m1.time_ms) / m1.time_ms;
    assert!(
        d_scaling < 0.15,
        "dCUDA should be nearly flat, grew {:.0}%",
        d_scaling * 100.0
    );
    assert!(
        m_scaling > d_scaling,
        "MPI-CUDA ({:.2}) must scale worse than dCUDA ({:.2})",
        m_scaling,
        d_scaling
    );
    // The MPI-CUDA scaling cost is roughly its halo time (paper §IV-C).
    let gap = m4.time_ms - m1.time_ms;
    assert!(
        (gap - m4.halo_ms).abs() < 0.5 * m4.halo_ms.max(0.2),
        "scaling cost {:.2} ms vs halo {:.2} ms",
        gap,
        m4.halo_ms
    );
}

/// Tracing must be pure observation: with the tracer disabled (the default),
/// every benchmark series reproduces the pre-trace-subsystem numbers
/// bit-for-bit. Golden values captured at PR 1.
#[test]
fn trace_disabled_series_are_byte_identical_to_pr1() {
    let spec = SystemSpec::greina();

    let mut newton = OverlapConfig::paper(Workload::Newton, 64, 10);
    newton.nodes = 2;
    newton.ranks_per_node = 26;
    assert_eq!(
        overlap::run(&spec, &newton).to_bits(),
        0.227598308f64.to_bits()
    );

    let mut copy = OverlapConfig::paper(Workload::Copy, 64, 10);
    copy.nodes = 2;
    copy.ranks_per_node = 26;
    assert_eq!(
        overlap::run(&spec, &copy).to_bits(),
        0.8135510450000001f64.to_bits()
    );

    let pp = pingpong::run(&spec, Placement::Distributed, 1024, 20);
    assert_eq!(pp.latency_us.to_bits(), 18.590332999999998f64.to_bits());
    assert_eq!(pp.bandwidth_mbs.to_bits(), 55.08239147733395f64.to_bits());

    let (_, st) = stencil::run_dcuda(&spec, &StencilConfig::tiny(2));
    assert_eq!(st.time_ms.to_bits(), 0.22593622200000002f64.to_bits());
}

/// A traced simulation yields the same modeled time as an untraced one and
/// produces a populated trace with the overlap-efficiency aggregate.
#[test]
fn traced_sim_is_observation_only() {
    use dcuda::core::{ClusterSim as Sim, WindowSpec as Win};

    struct Ring {
        phase: u32,
        right: u32,
    }
    impl RankKernel for Ring {
        fn resume(&mut self, ctx: &mut RankCtx<'_>) -> Suspend {
            self.phase += 1;
            match self.phase {
                1 => {
                    ctx.charge(dcuda::device::BlockCharge::flops(4096.0));
                    ctx.put_notify(
                        dcuda::core::WinId(0),
                        dcuda::core::Rank(self.right),
                        0,
                        0,
                        8,
                        1,
                    );
                    Suspend::WaitNotifications {
                        win: None,
                        source: None,
                        tag: Some(1),
                        count: 1,
                    }
                }
                _ => Suspend::Finished,
            }
        }
    }
    let topo = Topology {
        nodes: 2,
        ranks_per_node: 4,
    };
    let world = topo.nodes * topo.ranks_per_node;
    let mk = || -> Vec<Box<dyn RankKernel>> {
        (0..world)
            .map(|r| {
                Box::new(Ring {
                    phase: 0,
                    right: (r + 1) % world,
                }) as Box<dyn RankKernel>
            })
            .collect()
    };
    let win = WindowSpec::uniform(&topo, 64);

    let mut plain = Sim::new(SystemSpec::greina(), topo, vec![win.clone()], mk());
    let plain_report = plain.run();
    assert!(plain_report.trace.is_none(), "tracing is opt-in");

    let mut traced = Sim::new(
        SystemSpec::greina(),
        topo,
        vec![Win::uniform(&topo, 64)],
        mk(),
    );
    traced.enable_tracing();
    let traced_report = traced.run();

    assert_eq!(
        plain_report.end_time, traced_report.end_time,
        "tracing changed the modeled schedule"
    );
    assert_eq!(plain_report.events, traced_report.events);

    let summary = traced_report.trace.expect("trace summary present");
    let eff = summary.overlap_efficiency.expect("ranks waited");
    assert!((0.0..=1.0).contains(&eff), "efficiency {eff} out of range");
    assert!(
        summary.wait_hist.summary().count() > 0,
        "wait spans recorded"
    );

    let tracer = traced.take_trace();
    assert!(!tracer.is_empty(), "trace has events");
    assert!(
        tracer.spans().iter().any(|s| s.name == "wait"),
        "per-rank wait spans present"
    );
}
