//! Quickstart: the paper's Figure 2 program — a 2-D stencil with halo
//! exchange via device-side notified remote memory access.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Eight ranks (two simulated K80 nodes, four blocks each) iterate a 5-point
//! stencil over a j-decomposed field. Each iteration every rank computes its
//! interior, `put_notify`s one halo line to each neighbour, and blocks in
//! `wait_notifications` — overlap of computation and communication falls out
//! of the hardware model, not out of manual pipelining.

use dcuda::core::types::Topology;
use dcuda::core::{ClusterSim, Rank, RankCtx, RankKernel, Suspend, SystemSpec, WinId, WindowSpec};
use dcuda::device::BlockCharge;

/// One j-line of the field (doubles).
const LINE: usize = 64;
/// Interior lines per rank.
const JPR: usize = 4;
/// Stencil iterations.
const STEPS: u32 = 50;

/// The Figure 2 kernel as a resumable state machine: `in`/`out` windows
/// swap every iteration; window line 0 / line JPR+1 are the halos.
struct StencilKernel {
    left: Option<Rank>,
    right: Option<Rank>,
    iter: u32,
    started: bool,
}

impl StencilKernel {
    fn win_in(&self) -> WinId {
        WinId(self.iter % 2)
    }

    fn win_out(&self) -> WinId {
        WinId(1 - self.iter % 2)
    }
}

impl RankKernel for StencilKernel {
    fn resume(&mut self, ctx: &mut RankCtx<'_>) -> Suspend {
        if !self.started {
            self.started = true;
            // Initial condition: a bump in the middle of the global domain.
            let world = ctx.world_size() as usize;
            let rank = ctx.rank().0 as usize;
            let a = ctx.win_f64_mut(WinId(0));
            for j in 0..JPR {
                let jg = rank * JPR + j;
                for i in 0..LINE {
                    a[(j + 1) * LINE + i] = if jg == world * JPR / 2 && i == LINE / 2 {
                        1000.0
                    } else {
                        0.0
                    };
                }
            }
        }
        if self.iter >= STEPS {
            return Suspend::Finished;
        }
        // for (int idx = from; idx < to; ...) out[idx] = -4 * in[idx] + ...
        let (win_in, win_out) = (self.win_in(), self.win_out());
        {
            let (input, out) = ctx.win_f64_pair(win_in, win_out);
            for j in 1..=JPR {
                for i in 1..LINE - 1 {
                    out[j * LINE + i] = 0.25
                        * (input[j * LINE + i + 1]
                            + input[j * LINE + i - 1]
                            + input[(j + 1) * LINE + i]
                            + input[(j - 1) * LINE + i]);
                }
            }
        }
        ctx.charge(BlockCharge {
            flops: (JPR * LINE * 4) as f64,
            mem_bytes: (JPR * LINE * 16) as f64,
        });
        // if (lsend) dcuda_put_notify(ctx, wout, rank - 1, ...);
        let line_bytes = LINE * 8;
        let mut expected = 0;
        if let Some(l) = self.left {
            ctx.put_notify(
                win_out,
                l,
                (JPR + 1) * line_bytes,
                line_bytes,
                line_bytes,
                0,
            );
            expected += 1;
        }
        // if (rsend) dcuda_put_notify(ctx, wout, rank + 1, ...);
        if let Some(r) = self.right {
            ctx.put_notify(win_out, r, 0, JPR * line_bytes, line_bytes, 0);
            expected += 1;
        }
        // dcuda_wait_notifications(ctx, wout, DCUDA_ANY_SOURCE, tag, lsend + rsend);
        self.iter += 1; // swap(in, out); swap(win, wout);
        Suspend::WaitNotifications {
            win: Some(win_out),
            source: None,
            tag: Some(0),
            count: expected,
        }
    }
}

fn main() {
    let topo = Topology {
        nodes: 2,
        ranks_per_node: 4,
    };
    // Two windows (in/out), each: JPR interior lines + 2 halo lines.
    let win = || WindowSpec::halo_ring(&topo, JPR * LINE * 8, LINE * 8);
    let kernels: Vec<Box<dyn RankKernel>> = topo
        .ranks()
        .map(|r| {
            Box::new(StencilKernel {
                left: (r.0 > 0).then(|| Rank(r.0 - 1)),
                right: (r.0 + 1 < topo.world_size()).then(|| Rank(r.0 + 1)),
                iter: 0,
                started: false,
            }) as Box<dyn RankKernel>
        })
        .collect();
    let mut sim = ClusterSim::new(SystemSpec::greina(), topo, vec![win(), win()], kernels);
    let report = sim.run();

    println!("dCUDA quickstart: {STEPS}-step 5-point stencil on 2 nodes x 4 ranks");
    println!(
        "  simulated execution time: {:.3} ms",
        report.elapsed().as_millis_f64()
    );
    println!(
        "  RMA ops: {} ({} zero-copy on overlapping shared-memory windows, {} across the network)",
        report.rma_ops, report.zero_copy_ops, report.distributed_ops
    );
    println!("  notifications delivered: {}", report.notifications);

    // The diffused bump: check mass spread symmetrically.
    let final_win = WinId(STEPS % 2);
    let mut total = 0.0;
    for node in 0..topo.nodes {
        let arena = sim.arena(node, final_win);
        let field = dcuda::core::window::f64_slice(arena);
        // Interior lines only (skip the two edge halos).
        total += field[LINE..field.len() - LINE].iter().sum::<f64>();
    }
    println!("  field mass after diffusion: {total:.3} (leaks only via the fixed boundary)");
    assert!(total > 0.0 && total < 1000.0);
}
