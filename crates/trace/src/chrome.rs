//! Chrome-trace ("Trace Event Format") JSON export.
//!
//! The emitted file loads directly into `chrome://tracing` and Perfetto
//! (<https://ui.perfetto.dev>). Layout:
//!
//! * one *process* per component class (ranks / device event handlers /
//!   network links / PCIe links), named by metadata events;
//! * one *thread* (track) per rank, per host worker, per NIC and per PCIe
//!   link;
//! * spans as `"ph": "X"` complete events, instants as `"ph": "i"`;
//! * timestamps in microseconds of **simulated** time (the format's `ts`
//!   unit), emitted in nondecreasing order within each track.
//!
//! The writer depends on nothing but `std`; numbers are formatted with
//! Rust's shortest-roundtrip float formatter, so identical traces produce
//! identical bytes.

use crate::{ArgValue, Tracer, Track};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Convert picoseconds of simulated time to the format's microsecond unit.
fn ps_to_us(ps: u64) -> f64 {
    ps as f64 / 1e6
}

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn push_args(out: &mut String, args: &[(&'static str, ArgValue)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_escaped(out, k);
        out.push(':');
        match v {
            ArgValue::U64(n) => {
                let _ = write!(out, "{n}");
            }
            ArgValue::F64(f) => push_f64(out, *f),
            ArgValue::Str(s) => push_escaped(out, s),
        }
    }
    out.push('}');
}

/// One renderable event, normalized for sorting.
struct Row<'a> {
    track: Track,
    ts_ps: u64,
    /// Complete events carry a duration; instants do not.
    dur_ps: Option<u64>,
    name: &'a str,
    args: &'a [(&'static str, ArgValue)],
}

/// Serialize a [`Tracer`]'s records as a Chrome-trace JSON object.
///
/// Events are ordered by (process, track, timestamp, duration), making the
/// output deterministic and each track's `ts` sequence nondecreasing — the
/// property the CI schema check asserts.
pub fn to_chrome_json(tracer: &Tracer) -> String {
    let mut rows: Vec<Row<'_>> = Vec::with_capacity(tracer.len());
    for s in tracer.spans() {
        rows.push(Row {
            track: s.track,
            ts_ps: s.start_ps,
            dur_ps: Some(s.end_ps - s.start_ps),
            name: s.name,
            args: &s.args,
        });
    }
    for i in tracer.instants() {
        rows.push(Row {
            track: i.track,
            ts_ps: i.ts_ps,
            dur_ps: None,
            name: i.name,
            args: &i.args,
        });
    }
    rows.sort_by_key(|r| (r.track.pid(), r.track.tid(), r.ts_ps, r.dur_ps));

    let tracks: BTreeSet<Track> = rows.iter().map(|r| r.track).collect();
    let pids: BTreeSet<(u32, &'static str)> =
        tracks.iter().map(|t| (t.pid(), t.process_name())).collect();

    let mut out = String::with_capacity(rows.len() * 96 + 1024);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut emit_sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
        out.push('\n');
    };
    for (pid, name) in &pids {
        emit_sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":"
        );
        push_escaped(&mut out, name);
        out.push_str("}}");
    }
    for t in &tracks {
        emit_sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":",
            t.pid(),
            t.tid()
        );
        push_escaped(&mut out, &t.track_name());
        out.push_str("}}");
    }
    for r in &rows {
        emit_sep(&mut out);
        out.push_str("{\"ph\":");
        match r.dur_ps {
            Some(dur) => {
                out.push_str("\"X\",\"dur\":");
                push_f64(&mut out, ps_to_us(dur));
            }
            None => out.push_str("\"i\",\"s\":\"t\""),
        }
        out.push_str(",\"name\":");
        push_escaped(&mut out, r.name);
        let _ = write!(out, ",\"pid\":{},\"tid\":{}", r.track.pid(), r.track.tid());
        out.push_str(",\"ts\":");
        push_f64(&mut out, ps_to_us(r.ts_ps));
        out.push_str(",\"args\":");
        push_args(&mut out, r.args);
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_is_json_safe() {
        let mut s = String::new();
        push_escaped(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn emits_metadata_and_events() {
        let mut t = Tracer::enabled();
        t.span(
            Track::Rank(0),
            "wait",
            2_000_000,
            5_000_000,
            vec![("count", 1u64.into())],
        );
        t.instant(Track::NetLink(1), "arrive", 7_000_000, vec![]);
        let json = to_chrome_json(&t);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"name\":\"rank 0\""));
        assert!(json.contains("\"name\":\"nic 1\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":3"));
        assert!(json.contains("\"ph\":\"i\""));
        // ts in microseconds.
        assert!(json.contains("\"ts\":2"));
        assert!(json.contains("\"ts\":7"));
    }

    #[test]
    fn per_track_ts_is_sorted() {
        let mut t = Tracer::enabled();
        // Inserted out of order on the same track.
        t.span(Track::Host(0), "b", 9_000_000, 10_000_000, vec![]);
        t.span(Track::Host(0), "a", 1_000_000, 2_000_000, vec![]);
        let json = to_chrome_json(&t);
        let a = json.find("\"name\":\"a\"").unwrap();
        let b = json.find("\"name\":\"b\"").unwrap();
        assert!(a < b, "events must be time-sorted within a track");
    }

    #[test]
    fn deterministic_bytes() {
        let build = || {
            let mut t = Tracer::enabled();
            t.span(Track::Rank(3), "put", 1, 2, vec![("bytes", 1024u64.into())]);
            t.instant(Track::Pcie(0), "txn", 3, vec![("path", "dma".into())]);
            to_chrome_json(&t)
        };
        assert_eq!(build(), build());
    }
}
