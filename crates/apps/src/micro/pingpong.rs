//! Ping-pong notified-put latency and bandwidth (paper Figure 6).
//!
//! Two ranks bounce a packet using `put_notify`/`wait_notifications`; the
//! latency is half the round-trip time, and the put bandwidth is packet size
//! over latency. The rank pair is placed either on one device (shared
//! memory) or on two nodes (distributed memory).

use dcuda_core::types::Topology;
use dcuda_core::{ClusterSim, Rank, RankCtx, RankKernel, Suspend, SystemSpec, WinId, WindowSpec};

/// Placement of the communicating rank pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Both ranks on one device: shared-memory path.
    Shared,
    /// Ranks on two different nodes: network path.
    Distributed,
}

/// Result of one ping-pong measurement.
#[derive(Debug, Clone, Copy)]
pub struct PingPongResult {
    /// Packet size in bytes.
    pub bytes: usize,
    /// One-way latency (half a round trip) in microseconds.
    pub latency_us: f64,
    /// Put bandwidth in MB/s (paper plots MB/s).
    pub bandwidth_mbs: f64,
}

struct Initiator {
    peer: Rank,
    bytes: usize,
    iters: u32,
    i: u32,
}
impl RankKernel for Initiator {
    fn resume(&mut self, ctx: &mut RankCtx<'_>) -> Suspend {
        if self.i >= self.iters {
            return Suspend::Finished;
        }
        self.i += 1;
        ctx.put_notify(WinId(0), self.peer, 0, 0, self.bytes, 1);
        Suspend::WaitNotifications {
            win: Some(WinId(0)),
            source: Some(self.peer),
            tag: Some(1),
            count: 1,
        }
    }
}

struct Responder {
    peer: Rank,
    bytes: usize,
    iters: u32,
    i: u32,
    reply_due: bool,
}
impl RankKernel for Responder {
    fn resume(&mut self, ctx: &mut RankCtx<'_>) -> Suspend {
        if self.i >= self.iters {
            return Suspend::Finished;
        }
        if self.reply_due {
            self.reply_due = false;
            ctx.put_notify(WinId(0), self.peer, 0, 0, self.bytes, 1);
            self.i += 1;
            if self.i >= self.iters {
                return Suspend::Finished;
            }
        }
        self.reply_due = true;
        Suspend::WaitNotifications {
            win: Some(WinId(0)),
            source: Some(self.peer),
            tag: Some(1),
            count: 1,
        }
    }
}

/// Run the ping-pong for one packet size.
///
/// Following the paper's methodology, the launch/setup overhead is
/// subtracted (estimated by a zero-iteration run) and the result is the
/// per-iteration median — with a deterministic simulator the mean over
/// `iters` equals the median.
pub fn run(spec: &SystemSpec, placement: Placement, bytes: usize, iters: u32) -> PingPongResult {
    let topo = match placement {
        Placement::Shared => Topology {
            nodes: 1,
            ranks_per_node: 2,
        },
        Placement::Distributed => Topology {
            nodes: 2,
            ranks_per_node: 1,
        },
    };
    // Non-overlapping windows even in the shared case: the ping-pong
    // measures real copies, not the zero-copy fast path.
    let win = WindowSpec::uniform(&topo, bytes.max(8));
    let peer_of = |r: u32| Rank(topo.world_size() - 1 - r);
    let elapsed = |iters: u32| -> f64 {
        let kernels: Vec<Box<dyn RankKernel>> = vec![
            Box::new(Initiator {
                peer: peer_of(0),
                bytes,
                iters,
                i: 0,
            }),
            Box::new(Responder {
                peer: Rank(0),
                bytes,
                iters,
                i: 0,
                reply_due: false,
            }),
        ];
        let mut sim = ClusterSim::new(spec.clone(), topo, vec![win.clone()], kernels);
        sim.run().elapsed().as_micros_f64()
    };
    let setup = elapsed(0);
    let total = elapsed(iters);
    let latency_us = (total - setup) / (iters as f64 * 2.0);
    PingPongResult {
        bytes,
        latency_us,
        bandwidth_mbs: bytes as f64 / latency_us, // B/us == MB/s
    }
}

/// The packet-size sweep of Figure 6 (1 B to 4 MB, powers of two in kB
/// steps like the paper's log-scale axis).
pub fn figure6_sizes() -> Vec<usize> {
    let mut v = vec![1, 64, 256];
    let mut s = 1024usize;
    while s <= 4 << 20 {
        v.push(s);
        s *= 4;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SystemSpec {
        SystemSpec::greina()
    }

    #[test]
    fn empty_packet_latencies_match_paper() {
        // Paper §IV-B: "we measure a latency of 7.8 us and 19.4 us for
        // shared and distributed memory respectively" (empty packets).
        let sh = run(&spec(), Placement::Shared, 1, 200);
        let di = run(&spec(), Placement::Distributed, 1, 200);
        assert!(
            (sh.latency_us - 7.8).abs() / 7.8 < 0.10,
            "shared latency {} vs paper 7.8",
            sh.latency_us
        );
        assert!(
            (di.latency_us - 19.4).abs() / 19.4 < 0.10,
            "distributed latency {} vs paper 19.4",
            di.latency_us
        );
    }

    #[test]
    fn shared_bandwidth_plateaus_near_single_block_limit() {
        // Paper: ~1057.9 MB/s — a single block cannot saturate the memory
        // interface.
        let r = run(&spec(), Placement::Shared, 4 << 20, 5);
        assert!(
            r.bandwidth_mbs > 800.0 && r.bandwidth_mbs < 1200.0,
            "shared plateau {} MB/s",
            r.bandwidth_mbs
        );
    }

    #[test]
    fn distributed_bandwidth_plateaus_near_network_limit() {
        // Paper: ~5757.6 MB/s at the top of the sweep; our staged path
        // saturates somewhat higher (see EXPERIMENTS.md).
        let r = run(&spec(), Placement::Distributed, 4 << 20, 5);
        assert!(
            r.bandwidth_mbs > 4000.0 && r.bandwidth_mbs < 9500.0,
            "distributed plateau {} MB/s",
            r.bandwidth_mbs
        );
    }

    #[test]
    fn distributed_beats_shared_for_large_packets() {
        // The paper's crossover: distributed bandwidth exceeds the
        // single-block shared-memory copy bandwidth for large packets.
        let sh = run(&spec(), Placement::Shared, 1 << 20, 5);
        let di = run(&spec(), Placement::Distributed, 1 << 20, 5);
        assert!(di.bandwidth_mbs > sh.bandwidth_mbs);
    }

    #[test]
    fn latency_bound_small_packets() {
        let a = run(&spec(), Placement::Distributed, 1, 50);
        let b = run(&spec(), Placement::Distributed, 1024, 50);
        // 1 kB adds well under 1 us of serialization: latency-dominated.
        assert!((b.latency_us - a.latency_us) < 1.0);
    }
}
