//! Platform abstraction for the queue protocol's memory primitives.
//!
//! The SPSC ring (`spsc.rs`) is written against this small trait family
//! instead of `std::sync::atomic` directly, so the *same protocol code* can
//! run on two substrates:
//!
//! * [`StdPlatform`] — real `AtomicU64` + `UnsafeCell<MaybeUninit<T>>`
//!   payload cells. This is the production configuration; it compiles to
//!   exactly the code the ring had before the abstraction existed (the
//!   traits are `#[inline]`-forwarded zero-cost wrappers).
//! * `dcuda-verify`'s virtual platform — shimmed atomics that route every
//!   load/store through a model-checking scheduler which enumerates thread
//!   interleavings and weak-memory behaviours. Because the ring is generic,
//!   the checker exercises the shipped protocol, not a copy of it.
//!
//! # Safety contract for implementors
//!
//! The ring declares itself `Send`/`Sync` for any `Platform` (the SPSC
//! protocol guarantees exclusive payload access between the seq/tail
//! synchronization points). An implementation must therefore only use
//! associated types that are safe to share across threads when `T: Send` —
//! in particular [`Platform::Cell`] must not hand out aliasing access
//! beyond what [`PlatCell::write`]/[`PlatCell::read`] callers already
//! promise.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, Ordering};

/// An atomic 64-bit counter as the queue protocol uses it: plain loads and
/// stores with explicit orderings (the protocol never needs RMW ops — that
/// is the point of the paper's single-writer design).
pub trait PlatAtomicU64 {
    /// A counter initialized to `v`.
    fn new(v: u64) -> Self;
    /// Atomic load.
    fn load(&self, order: Ordering) -> u64;
    /// Atomic store.
    fn store(&self, v: u64, order: Ordering);
}

/// A payload slot: logically a `MaybeUninit<T>` whose init state is tracked
/// by the protocol (the slot's sequence number), not the cell itself.
///
/// # Safety
///
/// Callers of [`write`](Self::write) and [`read`](Self::read) must uphold
/// the SPSC exclusivity protocol: `write` requires that no other thread is
/// accessing the cell and that any previous value has been moved out;
/// `read` requires that a matching `write` happened-before it and moves the
/// value out (reading twice without an intervening write is undefined).
pub trait PlatCell<T> {
    /// A cell holding no value.
    fn empty() -> Self;
    /// Move `v` into the cell.
    ///
    /// # Safety
    /// See the trait-level contract.
    unsafe fn write(&self, v: T);
    /// Move the value out of the cell.
    ///
    /// # Safety
    /// See the trait-level contract.
    unsafe fn read(&self) -> T;
}

/// The pair of primitives a queue is built from.
pub trait Platform: 'static {
    /// Atomic counter type (sequence numbers, tail, disconnect flag).
    type AtomicU64: PlatAtomicU64;
    /// Payload slot type.
    type Cell<T>: PlatCell<T>;
}

/// Production platform: real atomics, `UnsafeCell` payload slots.
pub struct StdPlatform;

impl PlatAtomicU64 for AtomicU64 {
    #[inline]
    fn new(v: u64) -> Self {
        AtomicU64::new(v)
    }

    #[inline]
    fn load(&self, order: Ordering) -> u64 {
        AtomicU64::load(self, order)
    }

    #[inline]
    fn store(&self, v: u64, order: Ordering) {
        AtomicU64::store(self, v, order)
    }
}

/// Production payload cell: `UnsafeCell<MaybeUninit<T>>`, exactly the slot
/// representation the ring used before the platform abstraction.
pub struct StdCell<T>(UnsafeCell<MaybeUninit<T>>);

impl<T> PlatCell<T> for StdCell<T> {
    #[inline]
    fn empty() -> Self {
        StdCell(UnsafeCell::new(MaybeUninit::uninit()))
    }

    #[inline]
    unsafe fn write(&self, v: T) {
        (*self.0.get()).write(v);
    }

    #[inline]
    unsafe fn read(&self) -> T {
        (*self.0.get()).assume_init_read()
    }
}

impl Platform for StdPlatform {
    type AtomicU64 = AtomicU64;
    type Cell<T> = StdCell<T>;
}
