//! Hardware parameter sets, calibrated to the paper's Greina testbed.

use dcuda_des::SimDuration;

/// Interconnect parameters (LogGP-style).
#[derive(Debug, Clone)]
pub struct NetworkSpec {
    /// Wire + switch latency for any message (the "L" in LogGP).
    pub latency: SimDuration,
    /// Per-message CPU/NIC overhead at the sender (the "o").
    pub overhead: SimDuration,
    /// Bandwidth for direct device-to-device (GPUDirect) transfers, bytes/s.
    pub device_bandwidth: f64,
    /// Bandwidth for transfers whose payload sits in pinned host memory,
    /// bytes/s. On the K80-era testbed this is *higher* than GPUDirect
    /// (paper §IV-C: OpenMPI stages >20 kB messages through the host "to
    /// achieve better bandwidth").
    pub host_bandwidth: f64,
    /// Device-buffer messages at or above this size are staged through host
    /// memory (OpenMPI `btl_openib` style pipeline).
    pub stage_threshold: u64,
    /// Extra one-way latency paid by the staged path (DMA engine setup on
    /// both endpoints).
    pub stage_latency: SimDuration,
    /// Latency of a node-local loopback delivery (same node, e.g. MPI to
    /// self or a co-located rank pair).
    pub loopback_latency: SimDuration,
}

impl NetworkSpec {
    /// Greina-like defaults: 4x EDR InfiniBand as observed from a K80 —
    /// ~6 GB/s device-direct, ~1.7 µs small-message latency, host-staged
    /// pipeline at ~9 GB/s for >20 kB.
    pub fn greina() -> Self {
        NetworkSpec {
            latency: SimDuration::from_nanos(1_700),
            overhead: SimDuration::from_nanos(300),
            device_bandwidth: 6.0e9,
            host_bandwidth: 9.0e9,
            stage_threshold: 20 * 1024,
            stage_latency: SimDuration::from_micros(2),
            loopback_latency: SimDuration::from_nanos(500),
        }
    }
}

impl Default for NetworkSpec {
    fn default() -> Self {
        Self::greina()
    }
}

/// PCI-Express link parameters (one link per node between host and device).
#[derive(Debug, Clone)]
pub struct PcieSpec {
    /// Latency of a single small mapped-memory transaction (a queue-entry
    /// write through BAR mapping / gdrcopy, paper §III-C "an enqueue
    /// operation with an amortized cost of a single PCI-Express transaction").
    pub txn_latency: SimDuration,
    /// Link occupancy per posted transaction (throughput limit for pipelined
    /// small writes; much smaller than the one-way latency).
    pub txn_gap: SimDuration,
    /// Cost of polling a mapped remote location (host polling a device-memory
    /// tail pointer or vice versa).
    pub poll_latency: SimDuration,
    /// DMA engine setup latency ("considerable startup latency", §III-C).
    pub dma_setup: SimDuration,
    /// Bulk DMA bandwidth, bytes/s (PCIe 3.0 x16 effective).
    pub dma_bandwidth: f64,
    /// Maximum queue-entry size guaranteed atomic by a single vector
    /// transaction (paper: "limiting the queue entry size to the vector
    /// instruction width").
    pub max_txn_bytes: u64,
}

impl PcieSpec {
    /// Greina-like defaults.
    pub fn greina() -> Self {
        PcieSpec {
            txn_latency: SimDuration::from_nanos(900),
            txn_gap: SimDuration::from_nanos(150),
            poll_latency: SimDuration::from_nanos(400),
            dma_setup: SimDuration::from_micros(1),
            dma_bandwidth: 11.0e9,
            max_txn_bytes: 16,
        }
    }
}

impl Default for PcieSpec {
    fn default() -> Self {
        Self::greina()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greina_network_matches_paper_operating_point() {
        let s = NetworkSpec::greina();
        // Paper §II: 6 GB/s bandwidth; Little's law with ~19 µs end-to-end
        // pipeline gives ~112 kB in flight (~7000 threads x 16 B).
        assert_eq!(s.device_bandwidth, 6.0e9);
        assert!(s.host_bandwidth > s.device_bandwidth);
        assert!(s.stage_threshold > 16 * 1024, "16 kB halos must go direct");
    }

    #[test]
    fn greina_pcie_txn_is_sub_microsecond() {
        let s = PcieSpec::greina();
        assert!(s.txn_latency <= SimDuration::from_micros(1));
        assert!(s.max_txn_bytes >= 16);
    }
}
