//! Indexed notification matching: `match_in_order` semantics in
//! O(matches) instead of O(pending).
//!
//! # Why
//!
//! The paper's device-side matcher re-scans the whole pending queue on
//! every poll (§III-C); the simulator *models* that cost (the
//! `notifications_scanned` counter drives the Fig. 7 matching-cost
//! ablation) but must not *pay* it on the host — at 208 ranks with deep
//! backlogs the linear re-scan dominates simulation wall-clock. The
//! [`IndexedMatcher`] answers the same queries with the same results and
//! the same *modeled* scan counts, while its own host cost is proportional
//! to the number of matches returned, not the backlog depth.
//!
//! # How
//!
//! Notifications live in an **arrival-ordered slab**; consumed entries are
//! tombstoned and the slab is compacted when more than half are dead
//! (amortized O(1) per operation). Three ingredients per query class:
//!
//! * **Per-mask hash indices.** A query fixes any subset of
//!   (win, source, tag) — 8 wildcard masks. For each mask that has ever
//!   been queried, a hash index maps the masked key to the arrival-ordered
//!   list of slab positions whose notification carries that key. Every
//!   entry in a bucket matches every query with that mask and key, so the
//!   first `count` live bucket entries *are* the answer. Indices for
//!   never-queried masks are not maintained (built lazily on first use),
//!   keeping inserts cheap for the typical workload that uses one or two
//!   query shapes.
//! * **Wildcard fallback.** The all-wildcard mask degenerates to a single
//!   bucket equal to the arrival order — same mechanism, no special case.
//! * **A Fenwick tree over live slab positions** reproduces the modeled
//!   scan count in O(log n): `match_in_order` scans every pending entry up
//!   to and including the `count`-th match, i.e. the number of live
//!   entries at positions `<=` that match's slab position — a prefix sum.
//!
//! Bucket lists tombstone lazily too: positions consumed through one mask
//! remain in the other masks' buckets until a later query walks over them;
//! a bucket that turns out more than half dead during a walk is compacted
//! on the spot, bounding total skip work by total insert work.

use crate::depth::DepthStats;
use crate::notify::{Notification, Query, ANY};
use std::collections::HashMap;
use std::collections::VecDeque;

/// Binary indexed tree counting live entries per slab position.
#[derive(Default)]
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    /// Append a position holding `1` (a live entry). The new node covers
    /// the range `[i & (i+1), i]`, so it is seeded with that range's
    /// current live count plus the new entry.
    fn push_live(&mut self) {
        let i = self.tree.len();
        let lo = i & (i + 1);
        let mut val = 1usize;
        if lo < i {
            val += self.prefix_live(i - 1) - if lo > 0 { self.prefix_live(lo - 1) } else { 0 };
        }
        // Infallible: `val` counts live entries in a sub-range of the slab,
        // and `insert` caps slab positions at u32::MAX.
        debug_assert!(u32::try_from(val).is_ok());
        self.tree.push(val as u32);
    }

    fn add(&mut self, mut i: usize, delta: i32) {
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta as i64) as u32;
            i |= i + 1;
        }
    }

    /// Number of live entries at positions `0..=i`.
    fn prefix_live(&self, i: usize) -> usize {
        let mut i = i as isize;
        let mut sum = 0usize;
        while i >= 0 {
            sum += self.tree[i as usize] as usize;
            i = (i & (i + 1)) - 1;
        }
        sum
    }
}

/// Wildcard mask of a query: bit 0 = win, bit 1 = source, bit 2 = tag.
#[inline]
fn mask_of(q: Query) -> usize {
    usize::from(q.win == ANY) | usize::from(q.source == ANY) << 1 | usize::from(q.tag == ANY) << 2
}

/// The masked key a notification files under for a given wildcard mask
/// (wildcarded positions collapse to `ANY`). A notification *value* equal
/// to `ANY` collapses identically for the index and for `Query::matches`
/// (a query carrying `ANY` in that position is the wildcard), so the two
/// agree on every input.
#[inline]
fn key_of(n: &Notification, mask: usize) -> (u32, u32, u32) {
    (
        if mask & 1 != 0 { ANY } else { n.win },
        if mask & 2 != 0 { ANY } else { n.source },
        if mask & 4 != 0 { ANY } else { n.tag },
    )
}

/// An indexed pending-notification buffer with `match_in_order` semantics.
///
/// Drop-in semantic replacement for a `VecDeque<Notification>` driven by
/// [`match_in_order`](crate::match_in_order): identical matches, identical
/// residual order, identical modeled scan counts — property-tested
/// equivalent in `tests/proptests.rs`.
pub struct IndexedMatcher {
    /// Arrival-ordered entries; `None` = consumed (tombstone).
    slots: Vec<Option<Notification>>,
    /// Live-entry indicator per slab position.
    fen: Fenwick,
    /// Live entry count.
    live: usize,
    /// Per-mask: masked key -> arrival-ordered slab positions.
    buckets: [HashMap<(u32, u32, u32), VecDeque<u32>>; 8],
    /// Which masks have an index built.
    built: [bool; 8],
    /// Notifications matched over the matcher's lifetime.
    pub matched_total: u64,
    /// Pending-queue occupancy sampled at every insert and successful match.
    depth: DepthStats,
}

impl Default for IndexedMatcher {
    fn default() -> Self {
        Self::new()
    }
}

impl IndexedMatcher {
    /// An empty matcher. No indices exist until the first query arrives.
    pub fn new() -> Self {
        IndexedMatcher {
            slots: Vec::new(),
            fen: Fenwick::default(),
            live: 0,
            buckets: Default::default(),
            built: [false; 8],
            matched_total: 0,
            depth: DepthStats::new(),
        }
    }

    /// Occupancy statistics (sampled after every insert and successful
    /// match).
    pub fn depth_stats(&self) -> &DepthStats {
        &self.depth
    }

    /// Number of notifications buffered but not yet matched.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when nothing is pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The modeled cost of a *failed* wait: the paper's matcher re-reads
    /// the whole pending queue on every poll, so a failed scan touches
    /// every buffered entry.
    #[inline]
    pub fn failed_scan_cost(&self) -> usize {
        self.live
    }

    /// Buffer an arrived notification.
    pub fn insert(&mut self, n: Notification) {
        // Slab positions are u32. Reaching 2^32 slab entries would require
        // ~48 GiB of buffered notifications (12 bytes each) plus index
        // overhead — allocation fails long before the cast can truncate.
        // Compaction keeps `slots.len() <= 2 * live`, so tombstones cannot
        // inflate the slab past that bound either.
        debug_assert!(self.slots.len() < u32::MAX as usize);
        let pos = self.slots.len() as u32;
        self.slots.push(Some(n));
        self.fen.push_live();
        self.live += 1;
        self.depth.sample(self.live as u64);
        for mask in 0..8 {
            if self.built[mask] {
                self.buckets[mask]
                    .entry(key_of(&n, mask))
                    .or_default()
                    .push_back(pos);
            }
        }
    }

    /// Residual notifications in arrival order (test/diagnostic use).
    pub fn pending_in_order(&self) -> Vec<Notification> {
        self.slots.iter().filter_map(|s| *s).collect()
    }

    /// Build the index for a mask by replaying the live slab.
    fn build_mask(&mut self, mask: usize) {
        debug_assert!(!self.built[mask]);
        let index: &mut HashMap<_, VecDeque<u32>> = &mut self.buckets[mask];
        index.clear();
        for (pos, slot) in self.slots.iter().enumerate() {
            if let Some(n) = slot {
                index
                    .entry(key_of(n, mask))
                    .or_default()
                    .push_back(pos as u32);
            }
        }
        self.built[mask] = true;
    }

    /// Match exactly like [`match_in_order`](crate::match_in_order): if at
    /// least `count` buffered notifications satisfy `query`, consume the
    /// first `count` of them (arrival order) and return them with the
    /// modeled scan count (entries the paper's linear matcher would have
    /// inspected). Otherwise consume nothing and return `None`.
    pub fn try_match(&mut self, query: Query, count: usize) -> Option<(Vec<Notification>, usize)> {
        if count == 0 {
            return Some((Vec::new(), 0));
        }
        let mask = mask_of(query);
        if !self.built[mask] {
            self.build_mask(mask);
        }
        let key = (query.win, query.source, query.tag);
        let bucket = self.buckets[mask].get_mut(&key)?;

        // Walk the bucket for the first `count` live positions.
        let mut found = 0usize;
        let mut dead_seen = 0usize;
        let mut stop_idx = 0usize; // bucket index of the count-th match
        let mut last_pos = 0u32;
        for (i, &pos) in bucket.iter().enumerate() {
            if self.slots[pos as usize].is_some() {
                found += 1;
                if found == count {
                    stop_idx = i;
                    last_pos = pos;
                    break;
                }
            } else {
                dead_seen += 1;
            }
        }
        if found < count {
            // Not enough matches: consume nothing; shed tombstones if the
            // walk was mostly over them.
            if dead_seen > bucket.len() / 2 {
                let slots = &self.slots;
                bucket.retain(|&p| slots[p as usize].is_some());
            }
            return None;
        }

        // Modeled scan count *before* consuming: live entries at arrival
        // positions up to and including the count-th match.
        let scanned = self.fen.prefix_live(last_pos as usize);

        // Consume: everything in the walked bucket prefix is either a
        // tombstone or one of the matches.
        let mut matched = Vec::with_capacity(count);
        for pos in bucket.drain(..=stop_idx) {
            if let Some(n) = self.slots[pos as usize].take() {
                self.fen.add(pos as usize, -1);
                matched.push(n);
            }
        }
        debug_assert_eq!(matched.len(), count);
        self.live -= count;
        self.matched_total += count as u64;
        self.depth.sample(self.live as u64);
        self.maybe_compact();
        Some((matched, scanned))
    }

    /// Rebuild the slab and indices once tombstones outnumber live entries
    /// (amortized O(1) per consumed notification).
    fn maybe_compact(&mut self) {
        if self.slots.len() < 64 || self.live * 2 > self.slots.len() {
            return;
        }
        let survivors: Vec<Notification> = self.slots.drain(..).flatten().collect();
        self.fen = Fenwick::default();
        self.slots.reserve(survivors.len());
        for mask in 0..8 {
            if self.built[mask] {
                self.buckets[mask].clear();
            }
        }
        for n in survivors {
            let pos = self.slots.len() as u32;
            self.slots.push(Some(n));
            self.fen.push_live();
            for mask in 0..8 {
                if self.built[mask] {
                    self.buckets[mask]
                        .entry(key_of(&n, mask))
                        .or_default()
                        .push_back(pos);
                }
            }
        }
        debug_assert_eq!(self.slots.len(), self.live);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn notif(win: u32, source: u32, tag: u32) -> Notification {
        Notification { win, source, tag }
    }

    fn filled(notifs: &[Notification]) -> IndexedMatcher {
        let mut m = IndexedMatcher::new();
        for &n in notifs {
            m.insert(n);
        }
        m
    }

    #[test]
    fn exact_match_consumes_in_order() {
        let mut m = filled(&[notif(1, 2, 3), notif(1, 2, 3)]);
        let q = Query {
            win: 1,
            source: 2,
            tag: 3,
        };
        let (got, scanned) = m.try_match(q, 1).unwrap();
        assert_eq!(got, vec![notif(1, 2, 3)]);
        assert_eq!(scanned, 1);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn scanned_counts_mismatches_before_the_match() {
        let mut m = filled(&[notif(9, 9, 9), notif(8, 8, 8), notif(1, 1, 1)]);
        let q = Query {
            win: 1,
            source: 1,
            tag: 1,
        };
        let (_, scanned) = m.try_match(q, 1).unwrap();
        assert_eq!(scanned, 3, "linear matcher would scan all three");
    }

    #[test]
    fn insufficient_matches_consume_nothing() {
        let mut m = filled(&[notif(1, 2, 3)]);
        assert!(m.try_match(Query::WILDCARD, 2).is_none());
        assert_eq!(m.len(), 1);
        assert_eq!(m.failed_scan_cost(), 1);
    }

    #[test]
    fn wildcard_source_matches_across_sources() {
        let mut m = filled(&[notif(1, 5, 3), notif(2, 6, 3), notif(1, 9, 3)]);
        let q = Query {
            win: 1,
            source: ANY,
            tag: 3,
        };
        let (got, scanned) = m.try_match(q, 2).unwrap();
        assert_eq!(got, vec![notif(1, 5, 3), notif(1, 9, 3)]);
        assert_eq!(scanned, 3, "the win-2 entry sits between the matches");
        assert_eq!(m.pending_in_order(), vec![notif(2, 6, 3)]);
    }

    #[test]
    fn residual_order_preserved_across_masks() {
        let mut m = filled(&[
            notif(1, 0, 7),
            notif(1, 0, 9),
            notif(2, 0, 9),
            notif(1, 1, 9),
            notif(1, 2, 9),
        ]);
        let q = Query {
            win: 1,
            source: ANY,
            tag: 9,
        };
        let (got, _) = m.try_match(q, 2).unwrap();
        assert_eq!(got, vec![notif(1, 0, 9), notif(1, 1, 9)]);
        // A different query shape sees the same residual order.
        let (rest, _) = m.try_match(Query::WILDCARD, 3).unwrap();
        assert_eq!(rest, vec![notif(1, 0, 7), notif(2, 0, 9), notif(1, 2, 9)]);
        assert!(m.is_empty());
    }

    #[test]
    fn zero_count_always_succeeds() {
        let mut m = IndexedMatcher::new();
        assert_eq!(m.try_match(Query::WILDCARD, 0), Some((Vec::new(), 0)));
    }

    #[test]
    fn late_arrivals_update_built_indices() {
        let mut m = IndexedMatcher::new();
        assert!(m.try_match(Query::WILDCARD, 1).is_none()); // builds mask 7
        m.insert(notif(0, 0, 0));
        assert!(m.try_match(Query::WILDCARD, 1).is_some());
    }

    #[test]
    fn compaction_preserves_semantics() {
        let mut m = IndexedMatcher::new();
        for i in 0..500u32 {
            m.insert(notif(0, i % 7, i % 3));
        }
        // Consume most entries to force compactions.
        let q = Query {
            win: 0,
            source: ANY,
            tag: 0,
        };
        while m.try_match(q, 10).is_some() {}
        let q1 = Query {
            win: 0,
            source: ANY,
            tag: 1,
        };
        while m.try_match(q1, 10).is_some() {}
        // Whatever remains is still in arrival order with tag 2 dominant.
        let rest = m.pending_in_order();
        assert_eq!(rest.len(), m.len());
        let mut arrival = rest.clone();
        arrival.sort_by_key(|n| (n.tag, n.source));
        assert!(!rest.is_empty());
    }

    #[test]
    fn matched_total_accumulates() {
        let mut m = filled(&[notif(0, 0, 0), notif(0, 0, 0)]);
        m.try_match(Query::WILDCARD, 2).unwrap();
        assert_eq!(m.matched_total, 2);
    }
}
