//! Post-run metric aggregation: interval algebra, overlap efficiency, and
//! the [`TraceSummary`] surfaced through `RunReport`/`RtReport`.

use crate::{ArgValue, Span};
use dcuda_des::stats::LatencyHistogram;
use dcuda_des::SimDuration;

/// A set of disjoint, sorted half-open intervals `[start, end)` in
//  picoseconds of simulated time.
#[derive(Debug, Clone, Default)]
pub struct IntervalSet {
    iv: Vec<(u64, u64)>,
    normalized: bool,
}

impl IntervalSet {
    /// An empty set.
    pub fn new() -> Self {
        IntervalSet {
            iv: Vec::new(),
            normalized: true,
        }
    }

    /// Add one interval (any order; zero-length intervals are dropped).
    pub fn push(&mut self, start_ps: u64, end_ps: u64) {
        if end_ps > start_ps {
            self.iv.push((start_ps, end_ps));
            self.normalized = false;
        }
    }

    /// Sort and merge overlapping/adjacent intervals.
    pub fn normalize(&mut self) {
        if self.normalized {
            return;
        }
        self.iv.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.iv.len());
        for &(s, e) in &self.iv {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        self.iv = merged;
        self.normalized = true;
    }

    /// The merged intervals (normalizes first).
    pub fn intervals(&mut self) -> &[(u64, u64)] {
        self.normalize();
        &self.iv
    }

    /// Total covered picoseconds.
    pub fn total_ps(&mut self) -> u64 {
        self.normalize();
        self.iv.iter().map(|&(s, e)| e - s).sum()
    }

    /// Picoseconds of `self` that are also covered by `other`
    /// (`|self ∩ other|`). Both sets are normalized; the sweep is
    /// O(|self| + |other|).
    pub fn intersection_ps(&mut self, other: &mut IntervalSet) -> u64 {
        self.normalize();
        other.normalize();
        let (a, b) = (&self.iv, &other.iv);
        let (mut i, mut j, mut covered) = (0usize, 0usize, 0u64);
        while i < a.len() && j < b.len() {
            let lo = a[i].0.max(b[j].0);
            let hi = a[i].1.min(b[j].1);
            if hi > lo {
                covered += hi - lo;
            }
            if a[i].1 <= b[j].1 {
                i += 1;
            } else {
                j += 1;
            }
        }
        covered
    }

    /// Merge another set into this one.
    pub fn union_with(&mut self, other: &IntervalSet) {
        self.iv.extend_from_slice(&other.iv);
        self.normalized = false;
    }

    /// True if no interval was recorded.
    pub fn is_empty(&self) -> bool {
        self.iv.is_empty()
    }
}

/// Overlap efficiency (the quantity paper Figures 7/8 visualize): of all the
/// time ranks spent blocked (wait/flush/barrier), the fraction during which
/// at least one *other* rank resident on the same device was executing
/// compute — i.e. the wait was actually hidden by over-subscription.
///
/// `waits[r]` / `computes[r]` are per-rank interval sets; `device_of[r]`
/// maps a rank to its device. Returns `None` when no rank ever waited.
///
/// A rank cannot compute while it waits, so intersecting a rank's waits with
/// the union of its device's compute intervals equals intersecting with the
/// union over *other* ranks only.
pub fn overlap_efficiency(
    waits: &mut [IntervalSet],
    computes: &mut [IntervalSet],
    device_of: &[u32],
) -> Option<f64> {
    assert_eq!(waits.len(), computes.len());
    assert_eq!(waits.len(), device_of.len());
    let devices = device_of.iter().copied().max().map_or(0, |d| d + 1);
    let mut device_compute: Vec<IntervalSet> = (0..devices).map(|_| IntervalSet::new()).collect();
    for (r, c) in computes.iter_mut().enumerate() {
        c.normalize();
        device_compute[device_of[r] as usize].union_with(c);
    }
    let mut total = 0u64;
    let mut covered = 0u64;
    for (r, w) in waits.iter_mut().enumerate() {
        total += w.total_ps();
        covered += w.intersection_ps(&mut device_compute[device_of[r] as usize]);
    }
    (total > 0).then(|| covered as f64 / total as f64)
}

/// Metric aggregates of one traced run, surfaced as `RunReport::trace` /
/// `RtReport` extensions. All values derive from simulated time and
/// deterministic counters.
#[derive(Debug, Clone)]
pub struct TraceSummary {
    /// Fraction of rank wait-time covered by other runnable ranks on the
    /// same device (`None` if no rank ever waited).
    pub overlap_efficiency: Option<f64>,
    /// Histogram of individual wait spans (wait/flush/barrier), log2-µs
    /// bucketed.
    pub wait_hist: LatencyHistogram,
    /// Histogram of network message latencies (injection to arrival).
    pub net_hist: LatencyHistogram,
    /// Per-node busy fraction of the host worker (event handler + block
    /// managers) over the run.
    pub host_busy_frac: Vec<f64>,
    /// Per-node busy fraction of the egress NIC over the run.
    pub nic_busy_frac: Vec<f64>,
    /// Per-node busy fraction of the PCIe link over the run.
    pub pcie_busy_frac: Vec<f64>,
    /// Mean pending-notification queue depth sampled at every insert.
    pub notif_depth_mean: f64,
    /// Peak pending-notification queue depth.
    pub notif_depth_peak: u64,
}

impl TraceSummary {
    /// An empty summary (no activity).
    pub fn new() -> Self {
        TraceSummary {
            overlap_efficiency: None,
            wait_hist: LatencyHistogram::default(),
            net_hist: LatencyHistogram::default(),
            host_busy_frac: Vec::new(),
            nic_busy_frac: Vec::new(),
            pcie_busy_frac: Vec::new(),
            notif_depth_mean: 0.0,
            notif_depth_peak: 0,
        }
    }
}

impl Default for TraceSummary {
    fn default() -> Self {
        Self::new()
    }
}

/// Aggregated view of the collective engine's per-chunk overlap spans
/// (`coll_wait` / `coll_reduce`), the evidence behind the chunked-pipeline
/// claim: a chunk wait whose notification had already arrived when first
/// polled was *hidden* behind the preceding chunk's local reduction.
#[derive(Debug, Clone, Default)]
pub struct CollOverlapSummary {
    /// Chunk waits observed in total.
    pub chunk_waits: u64,
    /// Chunk waits that were fully hidden (notification pre-arrived).
    pub hidden: u64,
    /// Chunk waits that had to block for the notification.
    pub blocked: u64,
    /// Histogram of chunk-wait span durations. For the threaded runtime the
    /// "picoseconds" are per-rank logical ticks — bucket shape, not absolute
    /// latency, is the meaningful signal there.
    pub wait_hist: LatencyHistogram,
    /// Local reduction spans observed.
    pub reduces: u64,
    /// Bytes reduced across all `coll_reduce` spans.
    pub reduce_bytes: u64,
}

impl CollOverlapSummary {
    /// Fraction of chunk waits that were hidden (`None` without samples).
    pub fn hidden_fraction(&self) -> Option<f64> {
        (self.chunk_waits > 0).then(|| self.hidden as f64 / self.chunk_waits as f64)
    }
}

/// Scan a cluster trace for the collective engine's spans and fold them
/// into a [`CollOverlapSummary`].
pub fn coll_overlap_summary(spans: &[Span]) -> CollOverlapSummary {
    let mut s = CollOverlapSummary::default();
    let arg_u64 = |span: &Span, key: &str| {
        span.args.iter().find_map(|(k, v)| match v {
            ArgValue::U64(n) if *k == key => Some(*n),
            _ => None,
        })
    };
    for span in spans {
        match span.name {
            "coll_wait" => {
                s.chunk_waits += 1;
                if arg_u64(span, "hidden") == Some(1) {
                    s.hidden += 1;
                } else {
                    s.blocked += 1;
                }
                s.wait_hist
                    .record(SimDuration::from_ps(span.end_ps - span.start_ps));
            }
            "coll_reduce" => {
                s.reduces += 1;
                s.reduce_bytes += arg_u64(span, "bytes").unwrap_or(0);
            }
            _ => {}
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(iv: &[(u64, u64)]) -> IntervalSet {
        let mut s = IntervalSet::new();
        for &(a, b) in iv {
            s.push(a, b);
        }
        s
    }

    #[test]
    fn normalize_merges_overlaps() {
        let mut s = set(&[(5, 10), (0, 6), (20, 30), (10, 12)]);
        assert_eq!(s.intervals(), &[(0, 12), (20, 30)]);
        assert_eq!(s.total_ps(), 22);
    }

    #[test]
    fn zero_length_dropped() {
        let mut s = set(&[(5, 5)]);
        assert!(s.is_empty());
        assert_eq!(s.total_ps(), 0);
    }

    #[test]
    fn intersection_sweep() {
        let mut a = set(&[(0, 10), (20, 30)]);
        let mut b = set(&[(5, 25)]);
        assert_eq!(a.intersection_ps(&mut b), 5 + 5);
        assert_eq!(b.intersection_ps(&mut a), 10);
    }

    #[test]
    fn overlap_fully_hidden() {
        // Rank 0 waits [0,10); rank 1 (same device) computes [0,10).
        let mut waits = vec![set(&[(0, 10)]), IntervalSet::new()];
        let mut computes = vec![IntervalSet::new(), set(&[(0, 10)])];
        let eff = overlap_efficiency(&mut waits, &mut computes, &[0, 0]);
        assert_eq!(eff, Some(1.0));
    }

    #[test]
    fn overlap_not_hidden_across_devices() {
        // The computing rank lives on another device: nothing is hidden.
        let mut waits = vec![set(&[(0, 10)]), IntervalSet::new()];
        let mut computes = vec![IntervalSet::new(), set(&[(0, 10)])];
        let eff = overlap_efficiency(&mut waits, &mut computes, &[0, 1]);
        assert_eq!(eff, Some(0.0));
    }

    #[test]
    fn overlap_partial() {
        let mut waits = vec![set(&[(0, 10)]), IntervalSet::new()];
        let mut computes = vec![IntervalSet::new(), set(&[(0, 4)])];
        let eff = overlap_efficiency(&mut waits, &mut computes, &[0, 0]);
        assert_eq!(eff, Some(0.4));
    }

    #[test]
    fn no_waits_is_none() {
        let mut waits = vec![IntervalSet::new()];
        let mut computes = vec![set(&[(0, 4)])];
        assert_eq!(overlap_efficiency(&mut waits, &mut computes, &[0]), None);
    }

    fn coll_span(name: &'static str, start: u64, end: u64, args: &[(&'static str, u64)]) -> Span {
        Span {
            track: crate::Track::Rank(0),
            name,
            start_ps: start,
            end_ps: end,
            args: args.iter().map(|&(k, v)| (k, ArgValue::U64(v))).collect(),
        }
    }

    #[test]
    fn coll_summary_splits_hidden_and_blocked() {
        let spans = vec![
            coll_span("coll_wait", 0, 10, &[("hidden", 1)]),
            coll_span("coll_wait", 10, 30, &[("hidden", 0)]),
            coll_span("coll_wait", 30, 35, &[("hidden", 1)]),
            coll_span("coll_reduce", 35, 40, &[("bytes", 512)]),
            coll_span("coll_reduce", 40, 44, &[("bytes", 256)]),
            coll_span("compute", 44, 90, &[]),
        ];
        let s = coll_overlap_summary(&spans);
        assert_eq!(s.chunk_waits, 3);
        assert_eq!(s.hidden, 2);
        assert_eq!(s.blocked, 1);
        assert_eq!(s.wait_hist.summary().count(), 3);
        assert_eq!(s.reduces, 2);
        assert_eq!(s.reduce_bytes, 768);
        let f = s.hidden_fraction().unwrap();
        assert!((f - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn coll_summary_empty_trace() {
        let s = coll_overlap_summary(&[]);
        assert_eq!(s.chunk_waits, 0);
        assert_eq!(s.hidden_fraction(), None);
    }
}
