//! Device hardware parameters.

use dcuda_des::SimDuration;

/// Parameters of one simulated GPU (defaults: one GK210 chip of a Tesla K80,
/// the device used in the paper's Greina testbed).
#[derive(Debug, Clone)]
pub struct DeviceSpec {
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Hardware limit on resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Hardware limit on resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Register file size per SM (32-bit registers).
    pub registers_per_sm: u32,
    /// Double-precision throughput of one SM, FLOP/s.
    pub sm_flops: f64,
    /// Device memory bandwidth, bytes/s.
    pub mem_bandwidth: f64,
    /// Device memory access latency.
    pub mem_latency: SimDuration,
    /// Maximum memory bandwidth a single block can absorb, bytes/s
    /// (Little's law: threads/block x bytes-in-flight / latency; the reason a
    /// single block "cannot saturate the memory interface", paper §IV-B).
    pub block_mem_bandwidth: f64,
    /// Host-side kernel launch overhead (driver + DMA of launch config).
    pub launch_overhead: SimDuration,
    /// Cost of matching one notification on the device (the paper's eight
    /// thread, shuffle-reduction matcher is "relatively compute heavy",
    /// §IV-B) — charged per matched/scanned notification.
    pub notification_match_cost: SimDuration,
    /// Interval at which a waiting block polls its notification queue.
    pub notification_poll_interval: SimDuration,
}

impl DeviceSpec {
    /// One GK210 chip of a Tesla K80 with the paper's launch configuration
    /// limits (208 blocks in flight, 128 threads per block).
    pub fn k80() -> Self {
        DeviceSpec {
            sm_count: 13,
            max_blocks_per_sm: 16,
            max_threads_per_sm: 2048,
            registers_per_sm: 131_072,
            // 64 DP lanes x 2 (FMA) x 0.823 GHz ~ 105 GFLOP/s per SMX.
            sm_flops: 105.0e9,
            mem_bandwidth: 240.0e9,
            mem_latency: SimDuration::from_micros(1),
            // 128 threads x 16 B in flight / 1 us ~ 2.1 GB/s of streaming
            // (touched bytes). A copy loop touches 2 bytes per payload byte,
            // so a single-block put moves payload at ~1.05 GB/s — the
            // paper's shared-memory put-bandwidth plateau. Aggregate block
            // capability (208 x 2.1 = 437 GB/s) deliberately exceeds the
            // 240 GB/s interface: that spare parallelism is what hides
            // latency in the bandwidth domain (Little's law, paper §II).
            block_mem_bandwidth: 2.1e9,
            launch_overhead: SimDuration::from_micros(7),
            notification_match_cost: SimDuration::from_nanos(600),
            notification_poll_interval: SimDuration::from_nanos(400),
        }
    }

    /// Total device double-precision throughput, FLOP/s.
    pub fn device_flops(&self) -> f64 {
        self.sm_flops * self.sm_count as f64
    }

    /// Hardware limit on resident blocks for the whole device.
    pub fn max_resident_blocks(&self) -> u32 {
        self.sm_count * self.max_blocks_per_sm
    }
}

impl Default for DeviceSpec {
    fn default() -> Self {
        Self::k80()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k80_matches_paper_launch_config() {
        let s = DeviceSpec::k80();
        // Paper §IV-A: 208 blocks per device, guaranteed in flight at once.
        assert_eq!(s.max_resident_blocks(), 208);
    }

    #[test]
    fn aggregate_bandwidth_needs_many_blocks() {
        let s = DeviceSpec::k80();
        // A single block is two orders of magnitude below the interface;
        // the full residency over-subscribes it (paper §IV-B and §II: spare
        // parallelism is what hides stalls).
        assert!(s.block_mem_bandwidth < s.mem_bandwidth / 100.0);
        assert!(s.block_mem_bandwidth * s.max_resident_blocks() as f64 > s.mem_bandwidth * 1.5);
    }

    #[test]
    fn device_flops_is_sum_of_sms() {
        let s = DeviceSpec::k80();
        assert!((s.device_flops() - 13.0 * 105.0e9).abs() < 1.0);
    }
}
