//! End-to-end tests of the dCUDA runtime model: data correctness, timing
//! sanity, zero-copy behaviour, barriers, flush, and the latency-hiding
//! mechanism itself.

use dcuda_core::types::Topology;
use dcuda_core::window::f64_slice;
use dcuda_core::{ClusterSim, Rank, RankCtx, RankKernel, Suspend, SystemSpec, WinId, WindowSpec};

fn topo(nodes: u32, ranks_per_node: u32) -> Topology {
    Topology {
        nodes,
        ranks_per_node,
    }
}

/// A kernel that finishes immediately.
struct Noop;
impl RankKernel for Noop {
    fn resume(&mut self, _ctx: &mut RankCtx<'_>) -> Suspend {
        Suspend::Finished
    }
}

fn boxed<K: RankKernel + 'static>(ks: Vec<K>) -> Vec<Box<dyn RankKernel>> {
    ks.into_iter()
        .map(|k| Box::new(k) as Box<dyn RankKernel>)
        .collect()
}

#[test]
fn empty_kernel_costs_launch_overhead() {
    let t = topo(1, 4);
    let kernels: Vec<Box<dyn RankKernel>> = (0..4).map(|_| Box::new(Noop) as _).collect();
    let mut sim = ClusterSim::new(SystemSpec::greina(), t, vec![], kernels);
    let report = sim.run();
    let us = report.elapsed().as_micros_f64();
    assert!((us - 7.0).abs() < 0.01, "launch overhead only, got {us}");
}

#[test]
fn compute_time_matches_device_model() {
    // 4 ranks on one SM-pinned layout... ranks 0..4 land on SMs 0..4, each
    // alone: 1.05e9 flops at 105 GFLOP/s = 10 ms.
    let t = topo(1, 4);
    struct K;
    impl RankKernel for K {
        fn resume(&mut self, ctx: &mut RankCtx<'_>) -> Suspend {
            ctx.charge_flops(1.05e9);
            Suspend::Finished
        }
    }
    let mut sim = ClusterSim::new(SystemSpec::greina(), t, vec![], boxed(vec![K, K, K, K]));
    let report = sim.run();
    let ms = report.elapsed().as_millis_f64();
    assert!((ms - 10.0).abs() < 0.05, "got {ms} ms");
}

#[test]
fn sm_sharing_doubles_time() {
    // 26 ranks on a 13-SM device: two per SM -> same total work takes twice
    // as long as one-per-SM.
    struct K;
    impl RankKernel for K {
        fn resume(&mut self, ctx: &mut RankCtx<'_>) -> Suspend {
            ctx.charge_flops(1.05e9);
            Suspend::Finished
        }
    }
    let mut one = ClusterSim::new(
        SystemSpec::greina(),
        topo(1, 13),
        vec![],
        (0..13).map(|_| Box::new(K) as _).collect(),
    );
    let mut two = ClusterSim::new(
        SystemSpec::greina(),
        topo(1, 26),
        vec![],
        (0..26).map(|_| Box::new(K) as _).collect(),
    );
    let t1 = one.run().elapsed().as_millis_f64();
    let t2 = two.run().elapsed().as_millis_f64();
    assert!((t1 - 10.0).abs() < 0.05);
    assert!((t2 - 20.0).abs() < 0.05, "PS sharing: got {t2}");
}

/// Two-rank notified-put ping: rank 0 writes a value into its window,
/// puts it to rank 1, rank 1 waits and verifies.
struct PingSender {
    dst: Rank,
    sent: bool,
}
impl RankKernel for PingSender {
    fn resume(&mut self, ctx: &mut RankCtx<'_>) -> Suspend {
        if self.sent {
            return Suspend::Finished;
        }
        self.sent = true;
        let w = ctx.win_f64_mut(WinId(0));
        for (i, x) in w.iter_mut().enumerate() {
            *x = i as f64 + 0.5;
        }
        let len = ctx.win(WinId(0)).len();
        ctx.put_notify(WinId(0), self.dst, 0, 0, len, 42);
        Suspend::Flush
    }
}
struct PingReceiver {
    src: Rank,
    got: bool,
}
impl RankKernel for PingReceiver {
    fn resume(&mut self, ctx: &mut RankCtx<'_>) -> Suspend {
        if !self.got {
            self.got = true;
            return Suspend::WaitNotifications {
                win: Some(WinId(0)),
                source: Some(self.src),
                tag: Some(42),
                count: 1,
            };
        }
        // Data must be visible now.
        let w = ctx.win_f64(WinId(0));
        for (i, x) in w.iter().enumerate() {
            assert_eq!(*x, i as f64 + 0.5, "payload corrupted at {i}");
        }
        Suspend::Finished
    }
}

#[test]
fn distributed_put_delivers_data_and_notification() {
    let t = topo(2, 1);
    let win = WindowSpec::uniform(&t, 1024);
    let kernels: Vec<Box<dyn RankKernel>> = vec![
        Box::new(PingSender {
            dst: Rank(1),
            sent: false,
        }),
        Box::new(PingReceiver {
            src: Rank(0),
            got: false,
        }),
    ];
    let mut sim = ClusterSim::new(SystemSpec::greina(), t, vec![win], kernels);
    let report = sim.run();
    assert_eq!(report.rma_ops, 1);
    assert_eq!(report.distributed_ops, 1);
    assert_eq!(report.notifications, 1);
    // Latency target: the paper measures ~19.4 us for an empty distributed
    // notified put; a 1 kB one adds a bit of serialization.
    let us = report.elapsed().as_micros_f64() - 7.0; // subtract launch
    assert!(us > 15.0 && us < 30.0, "distributed put took {us} us");
    // The payload landed in node 1's arena.
    let arena = sim.arena(1, WinId(0));
    assert_eq!(f64_slice(&arena[0..1024])[3], 3.5);
}

#[test]
fn shared_put_is_faster_than_distributed() {
    let t2 = topo(1, 2);
    let win = WindowSpec::uniform(&t2, 1024);
    let kernels: Vec<Box<dyn RankKernel>> = vec![
        Box::new(PingSender {
            dst: Rank(1),
            sent: false,
        }),
        Box::new(PingReceiver {
            src: Rank(0),
            got: false,
        }),
    ];
    let mut sim = ClusterSim::new(SystemSpec::greina(), t2, vec![win], kernels);
    let report = sim.run();
    assert_eq!(report.shared_ops, 1);
    assert_eq!(report.zero_copy_ops, 0);
    let us = report.elapsed().as_micros_f64() - 7.0;
    assert!(us > 5.0 && us < 12.0, "shared put took {us} us");
    // Data visible in the shared arena.
    let arena = sim.arena(0, WinId(0));
    assert_eq!(f64_slice(&arena[1024..2048])[3], 3.5);
}

#[test]
fn overlapping_windows_take_zero_copy_path() {
    // Two ranks on one device with fully overlapping windows: a put from
    // offset k to offset k is zero-copy.
    let t = topo(1, 2);
    let win = WindowSpec {
        ranges: vec![0..1024, 0..1024],
    };
    struct S {
        sent: bool,
    }
    impl RankKernel for S {
        fn resume(&mut self, ctx: &mut RankCtx<'_>) -> Suspend {
            if self.sent {
                return Suspend::Finished;
            }
            self.sent = true;
            ctx.put_notify(WinId(0), Rank(1), 128, 128, 256, 0);
            Suspend::Flush
        }
    }
    struct R {
        waited: bool,
    }
    impl RankKernel for R {
        fn resume(&mut self, _ctx: &mut RankCtx<'_>) -> Suspend {
            if self.waited {
                return Suspend::Finished;
            }
            self.waited = true;
            Suspend::WaitNotifications {
                win: None,
                source: None,
                tag: None,
                count: 1,
            }
        }
    }
    let kernels: Vec<Box<dyn RankKernel>> =
        vec![Box::new(S { sent: false }), Box::new(R { waited: false })];
    let mut sim = ClusterSim::new(SystemSpec::greina(), t, vec![win], kernels);
    let report = sim.run();
    assert_eq!(report.zero_copy_ops, 1);
    assert_eq!(report.shared_ops, 1);
}

#[test]
fn barrier_synchronizes_all_ranks() {
    // Rank 0 computes 1 ms then enters the barrier; others enter at once.
    // Everyone must exit after rank 0 entered.
    let t = topo(2, 4);
    struct K {
        heavy: bool,
        phase: u32,
    }
    impl RankKernel for K {
        fn resume(&mut self, ctx: &mut RankCtx<'_>) -> Suspend {
            self.phase += 1;
            match self.phase {
                1 => {
                    if self.heavy {
                        ctx.charge_flops(105.0e6); // 1 ms alone on its SM
                    }
                    Suspend::Barrier
                }
                _ => Suspend::Finished,
            }
        }
    }
    let kernels: Vec<Box<dyn RankKernel>> = (0..8)
        .map(|i| {
            Box::new(K {
                heavy: i == 0,
                phase: 0,
            }) as _
        })
        .collect();
    let mut sim = ClusterSim::new(SystemSpec::greina(), t, vec![], kernels);
    let report = sim.run();
    assert_eq!(report.barriers, 1);
    // All ranks finish after the heavy rank's compute (1 ms).
    for (i, f) in report.rank_finish.iter().enumerate() {
        assert!(
            f.as_millis_f64() > 1.0,
            "rank {i} exited the barrier too early ({f})"
        );
    }
}

#[test]
fn get_notify_pulls_remote_data() {
    let t = topo(2, 1);
    let win = WindowSpec::uniform(&t, 256);
    // Rank 1 seeds its window via its kernel; rank 0 gets it.
    struct Seeder {
        done: bool,
    }
    impl RankKernel for Seeder {
        fn resume(&mut self, ctx: &mut RankCtx<'_>) -> Suspend {
            if self.done {
                return Suspend::Finished;
            }
            self.done = true;
            let w = ctx.win_f64_mut(WinId(0));
            w.fill(9.25);
            // Tell rank 0 the data is ready.
            ctx.put_notify(WinId(0), Rank(0), 0, 0, 8, 1);
            Suspend::Flush
        }
    }
    struct Getter {
        phase: u32,
    }
    impl RankKernel for Getter {
        fn resume(&mut self, ctx: &mut RankCtx<'_>) -> Suspend {
            self.phase += 1;
            match self.phase {
                1 => Suspend::WaitNotifications {
                    win: Some(WinId(0)),
                    source: Some(Rank(1)),
                    tag: Some(1),
                    count: 1,
                },
                2 => {
                    // Pull the remote window contents (skip the first 8
                    // bytes the seeder overwrote with its ready signal).
                    ctx.get_notify(WinId(0), Rank(1), 8, 8, 248, 2);
                    Suspend::WaitNotifications {
                        win: Some(WinId(0)),
                        source: Some(Rank(1)),
                        tag: Some(2),
                        count: 1,
                    }
                }
                _ => {
                    let w = ctx.win_f64(WinId(0));
                    for x in &w[1..] {
                        assert_eq!(*x, 9.25);
                    }
                    Suspend::Finished
                }
            }
        }
    }
    let kernels: Vec<Box<dyn RankKernel>> = vec![
        Box::new(Getter { phase: 0 }),
        Box::new(Seeder { done: false }),
    ];
    let mut sim = ClusterSim::new(SystemSpec::greina(), t, vec![win], kernels);
    let report = sim.run();
    assert_eq!(report.rma_ops, 2);
    assert_eq!(report.notifications, 2);
}

#[test]
fn wildcard_wait_matches_any_source() {
    // Ranks 1..4 all put to rank 0; rank 0 waits for 3 notifications with
    // wildcard source.
    let t = topo(1, 4);
    let win = WindowSpec::uniform(&t, 64);
    struct S {
        sent: bool,
    }
    impl RankKernel for S {
        fn resume(&mut self, ctx: &mut RankCtx<'_>) -> Suspend {
            if self.sent {
                return Suspend::Finished;
            }
            self.sent = true;
            ctx.put_notify(WinId(0), Rank(0), 0, 0, 8, 7);
            Suspend::Flush
        }
    }
    struct R {
        waited: bool,
    }
    impl RankKernel for R {
        fn resume(&mut self, _: &mut RankCtx<'_>) -> Suspend {
            if self.waited {
                return Suspend::Finished;
            }
            self.waited = true;
            Suspend::WaitNotifications {
                win: Some(WinId(0)),
                source: None,
                tag: Some(7),
                count: 3,
            }
        }
    }
    let kernels: Vec<Box<dyn RankKernel>> = vec![
        Box::new(R { waited: false }) as _,
        Box::new(S { sent: false }) as _,
        Box::new(S { sent: false }) as _,
        Box::new(S { sent: false }) as _,
    ];
    let mut sim = ClusterSim::new(SystemSpec::greina(), t, vec![win], kernels);
    let report = sim.run();
    assert_eq!(report.notifications, 3);
}

#[test]
fn latency_hiding_overlaps_communication_with_computation() {
    // THE paper's mechanism, as a unit test. Two ranks per SM... use 26
    // ranks on node 0 (2 per SM): half of them ping-pong with node 1
    // (communication-bound), half compute. With over-subscription the
    // compute ranks absorb the SM time the waiting ranks leave idle, so
    // total time ~ max(compute, comm), not the sum.
    let nodes = 2;
    let per_node = 26;
    let t = topo(nodes, per_node);
    let win = WindowSpec::uniform(&t, 1024);
    const ITERS: u32 = 50;

    // Initiator: put, wait for the echo, repeat.
    struct Initiator {
        peer: Rank,
        iter: u32,
    }
    impl RankKernel for Initiator {
        fn resume(&mut self, ctx: &mut RankCtx<'_>) -> Suspend {
            if self.iter >= ITERS {
                return Suspend::Finished;
            }
            self.iter += 1;
            ctx.put_notify(WinId(0), self.peer, 0, 0, 64, 5);
            Suspend::WaitNotifications {
                win: Some(WinId(0)),
                source: Some(self.peer),
                tag: Some(5),
                count: 1,
            }
        }
    }
    // Echo: wait, reply, repeat.
    struct Echo {
        peer: Rank,
        iter: u32,
        pending_reply: bool,
    }
    impl RankKernel for Echo {
        fn resume(&mut self, ctx: &mut RankCtx<'_>) -> Suspend {
            if self.pending_reply {
                self.pending_reply = false;
                ctx.put_notify(WinId(0), self.peer, 0, 0, 64, 5);
                self.iter += 1;
                if self.iter >= ITERS {
                    return Suspend::Finished;
                }
            }
            self.pending_reply = true;
            Suspend::WaitNotifications {
                win: Some(WinId(0)),
                source: Some(self.peer),
                tag: Some(5),
                count: 1,
            }
        }
    }
    struct Compute {
        flops: f64,
        done: bool,
    }
    impl RankKernel for Compute {
        fn resume(&mut self, ctx: &mut RankCtx<'_>) -> Suspend {
            if self.done {
                return Suspend::Finished;
            }
            self.done = true;
            ctx.charge_flops(self.flops);
            Suspend::Finished
        }
    }

    // Each SM on node 0 hosts one Comm rank (even local index) and one
    // Compute rank (odd local index); node 1 hosts the echoes.
    // 50 ping-pongs ~ 50 * 2 * ~20 us = ~2 ms of pure communication.
    // Compute ranks get ~2 ms of work each (105e9 * 2e-3 flops at full SM).
    let comm_time_est = 2.0e-3;
    let per_rank_flops = 105.0e9 * comm_time_est;
    let mut kernels: Vec<Box<dyn RankKernel>> = Vec::new();
    for local in 0..per_node {
        if local % 2 == 0 {
            kernels.push(Box::new(Initiator {
                peer: Rank(per_node + local),
                iter: 0,
            }));
        } else {
            kernels.push(Box::new(Compute {
                flops: per_rank_flops,
                done: false,
            }));
        }
    }
    for local in 0..per_node {
        if local % 2 == 0 {
            kernels.push(Box::new(Echo {
                peer: Rank(local),
                iter: 0,
                pending_reply: false,
            }));
        } else {
            kernels.push(Box::new(Compute {
                flops: 0.0,
                done: false,
            }));
        }
    }
    let mut sim = ClusterSim::new(SystemSpec::greina(), t, vec![win], kernels);
    let report = sim.run();
    let total_ms = report.elapsed().as_millis_f64();
    // Perfect overlap would give ~max(comm, compute) ~ 2 ms (compute is
    // 2 ms at full SM rate and the communicating rank leaves the SM idle
    // while waiting). Serialization would give ~4 ms.
    assert!(
        total_ms < 3.0,
        "latency hiding failed: {total_ms} ms (expected ~2 ms, serialized would be ~4 ms)"
    );
    assert!(total_ms > 1.8, "impossibly fast: {total_ms} ms");
}

#[test]
fn flush_waits_for_origin_completion() {
    let t = topo(2, 1);
    let win = WindowSpec::uniform(&t, 1 << 20);
    // A large un-notified put followed by flush: the sender cannot finish
    // before its NIC has serialized the megabyte.
    struct S {
        phase: u32,
    }
    impl RankKernel for S {
        fn resume(&mut self, ctx: &mut RankCtx<'_>) -> Suspend {
            self.phase += 1;
            match self.phase {
                1 => {
                    ctx.put(WinId(0), Rank(1), 0, 0, 1 << 20);
                    Suspend::Flush
                }
                _ => Suspend::Finished,
            }
        }
    }
    struct Idle;
    impl RankKernel for Idle {
        fn resume(&mut self, _: &mut RankCtx<'_>) -> Suspend {
            Suspend::Finished
        }
    }
    let kernels: Vec<Box<dyn RankKernel>> = vec![Box::new(S { phase: 0 }), Box::new(Idle)];
    let mut sim = ClusterSim::new(SystemSpec::greina(), t, vec![win], kernels);
    let report = sim.run();
    // 1 MB at 9 GB/s (staged) is ~117 us of serialization.
    let sender_us = report.rank_finish[0].as_micros_f64();
    assert!(sender_us > 100.0, "flush returned too early: {sender_us}");
    assert_eq!(report.net_staged, 1, "1 MB should stage through the host");
    assert_eq!(report.notifications, 0, "plain put must not notify");
}

#[test]
#[should_panic(expected = "deadlock")]
fn unmatched_wait_deadlocks_with_diagnostics() {
    let t = topo(1, 2);
    struct W {
        waited: bool,
    }
    impl RankKernel for W {
        fn resume(&mut self, _: &mut RankCtx<'_>) -> Suspend {
            if self.waited {
                return Suspend::Finished;
            }
            self.waited = true;
            Suspend::WaitNotifications {
                win: None,
                source: None,
                tag: None,
                count: 1,
            }
        }
    }
    let kernels: Vec<Box<dyn RankKernel>> = vec![Box::new(W { waited: false }), Box::new(Noop)];
    let mut sim = ClusterSim::new(SystemSpec::greina(), t, vec![], kernels);
    sim.run();
}

#[test]
fn put_notify_all_reaches_every_local_rank() {
    // The SV broadcast-put: one zero-copy op notifies all four ranks on the
    // target device.
    let t = topo(1, 4);
    let win = WindowSpec {
        ranges: vec![0..256; 4],
    };
    struct B {
        sent: bool,
    }
    impl RankKernel for B {
        fn resume(&mut self, ctx: &mut RankCtx<'_>) -> Suspend {
            if self.sent {
                return Suspend::Finished;
            }
            self.sent = true;
            ctx.win_f64_mut(WinId(0))[0] = 3.25;
            ctx.put_notify_all(WinId(0), Rank(0), 0, 0, 256, 6);
            Suspend::WaitNotifications {
                win: Some(WinId(0)),
                source: None,
                tag: Some(6),
                count: 1,
            }
        }
    }
    struct W {
        waited: bool,
    }
    impl RankKernel for W {
        fn resume(&mut self, ctx: &mut RankCtx<'_>) -> Suspend {
            if self.waited {
                assert_eq!(ctx.win_f64(WinId(0))[0], 3.25, "broadcast data visible");
                return Suspend::Finished;
            }
            self.waited = true;
            Suspend::WaitNotifications {
                win: Some(WinId(0)),
                source: Some(Rank(0)),
                tag: Some(6),
                count: 1,
            }
        }
    }
    let kernels: Vec<Box<dyn RankKernel>> = vec![
        Box::new(B { sent: false }) as _,
        Box::new(W { waited: false }) as _,
        Box::new(W { waited: false }) as _,
        Box::new(W { waited: false }) as _,
    ];
    let mut sim = ClusterSim::new(SystemSpec::greina(), t, vec![win], kernels);
    let report = sim.run();
    assert_eq!(report.rma_ops, 1, "a single op...");
    assert_eq!(report.notifications, 4, "...notifies every local rank");
    assert_eq!(report.zero_copy_ops, 1);
}

#[test]
fn notifications_match_by_tag_across_reordering() {
    // Rank 1 sends tag 1 then tag 2; rank 0 waits for tag 2 first, then
    // tag 1 — the queue compaction must keep both available.
    let t = topo(1, 2);
    let win = WindowSpec::uniform(&t, 64);
    struct S {
        sent: bool,
    }
    impl RankKernel for S {
        fn resume(&mut self, ctx: &mut RankCtx<'_>) -> Suspend {
            if self.sent {
                return Suspend::Finished;
            }
            self.sent = true;
            ctx.put_notify(WinId(0), Rank(0), 0, 0, 8, 1);
            ctx.put_notify(WinId(0), Rank(0), 8, 8, 8, 2);
            Suspend::Flush
        }
    }
    struct R {
        phase: u32,
    }
    impl RankKernel for R {
        fn resume(&mut self, _: &mut RankCtx<'_>) -> Suspend {
            self.phase += 1;
            match self.phase {
                1 => Suspend::WaitNotifications {
                    win: Some(WinId(0)),
                    source: None,
                    tag: Some(2),
                    count: 1,
                },
                2 => Suspend::WaitNotifications {
                    win: Some(WinId(0)),
                    source: None,
                    tag: Some(1),
                    count: 1,
                },
                _ => Suspend::Finished,
            }
        }
    }
    let kernels: Vec<Box<dyn RankKernel>> =
        vec![Box::new(R { phase: 0 }), Box::new(S { sent: false })];
    let mut sim = ClusterSim::new(SystemSpec::greina(), t, vec![win], kernels);
    let report = sim.run();
    assert_eq!(report.notifications, 2);
}

#[test]
#[should_panic(expected = "exceeds this rank's window")]
fn put_beyond_own_window_panics() {
    let t = topo(1, 2);
    let win = WindowSpec::uniform(&t, 64);
    struct Bad;
    impl RankKernel for Bad {
        fn resume(&mut self, ctx: &mut RankCtx<'_>) -> Suspend {
            ctx.put_notify(WinId(0), Rank(1), 0, 32, 64, 0); // 32 + 64 > 64
            Suspend::Finished
        }
    }
    let kernels: Vec<Box<dyn RankKernel>> = vec![Box::new(Bad), Box::new(Noop)];
    let mut sim = ClusterSim::new(SystemSpec::greina(), t, vec![win], kernels);
    sim.run();
}

#[test]
#[should_panic(expected = "exceeds")]
fn put_beyond_remote_window_panics() {
    let t = topo(2, 1);
    let win = WindowSpec::uniform(&t, 64);
    struct Bad;
    impl RankKernel for Bad {
        fn resume(&mut self, ctx: &mut RankCtx<'_>) -> Suspend {
            ctx.put_notify(WinId(0), Rank(1), 48, 0, 32, 0); // 48 + 32 > 64
            Suspend::Finished
        }
    }
    let kernels: Vec<Box<dyn RankKernel>> = vec![Box::new(Bad), Box::new(Noop)];
    let mut sim = ClusterSim::new(SystemSpec::greina(), t, vec![win], kernels);
    sim.run();
}

#[test]
fn ibarrier_overlaps_compute_and_synchronizes() {
    // Paper SV: nonblocking collectives run in the background. Rank 0 is
    // slow to enter; the others enter immediately, compute 1 ms while the
    // barrier is in flight, then wait for the completion notification. No
    // completion may arrive before rank 0 entered.
    use dcuda_core::IBARRIER_WIN;
    let t = topo(2, 2);
    struct K {
        slow: bool,
        phase: u32,
    }
    impl RankKernel for K {
        fn resume(&mut self, ctx: &mut RankCtx<'_>) -> Suspend {
            self.phase += 1;
            match self.phase {
                1 => {
                    if self.slow {
                        ctx.charge_flops(105.0e6); // ~1 ms alone on its SM
                    }
                    ctx.ibarrier(3);
                    // Overlapped compute while the barrier completes.
                    ctx.charge_flops(105.0e6);
                    Suspend::WaitNotifications {
                        win: Some(WinId(IBARRIER_WIN)),
                        source: Some(ctx.rank()),
                        tag: Some(3),
                        count: 1,
                    }
                }
                _ => Suspend::Finished,
            }
        }
    }
    let kernels: Vec<Box<dyn RankKernel>> = (0..4)
        .map(|i| {
            Box::new(K {
                slow: i == 0,
                phase: 0,
            }) as _
        })
        .collect();
    let mut sim = ClusterSim::new(SystemSpec::greina(), t, vec![], kernels);
    let report = sim.run();
    // Everyone finishes after the slow rank's 1 ms entry...
    for f in &report.rank_finish {
        assert!(f.as_millis_f64() > 1.0);
    }
    // ...but the overlapped compute is free: a fast rank finishes at
    // ~max(slow entry + barrier, own compute) ~ 2 ms, NOT 1 + 1 + 1.
    let fast = report.rank_finish[1].as_millis_f64();
    assert!(
        fast < 2.4,
        "ibarrier failed to overlap compute: rank 1 took {fast} ms"
    );
    assert_eq!(report.barriers, 1);
}

#[test]
fn verified_run_is_clean_and_transparent() {
    let build = || {
        let t = topo(2, 1);
        let win = WindowSpec::uniform(&t, 1024);
        let kernels: Vec<Box<dyn RankKernel>> = vec![
            Box::new(PingSender {
                dst: Rank(1),
                sent: false,
            }),
            Box::new(PingReceiver {
                src: Rank(0),
                got: false,
            }),
        ];
        ClusterSim::new(SystemSpec::greina(), t, vec![win], kernels)
    };
    let plain = build().run();
    let mut sim = build();
    sim.enable_verification();
    let verified = sim.run();
    // The monitor observed a clean run...
    let v = verified.verify.as_ref().expect("monitor attached");
    assert!(v.is_clean(), "{}", v.summary());
    assert_eq!(v.notifications_tracked, 1);
    // ...and observing changed nothing (same virtual time, same events).
    assert_eq!(plain.end_time, verified.end_time);
    assert_eq!(plain.events, verified.events);
    assert_eq!(plain.notifications, verified.notifications);
    assert!(plain.verify.is_none());
}

#[test]
#[should_panic(expected = "no matching sender exists")]
fn deadlock_panic_carries_wait_for_graph_analysis() {
    // Rank 1 waits for a notification rank 0 never sends; rank 0 finishes
    // immediately. The quiescence report must name the liveness failure,
    // not just dump statuses.
    let t = topo(1, 2);
    let win = WindowSpec::uniform(&t, 64);
    let kernels: Vec<Box<dyn RankKernel>> = vec![
        Box::new(Noop),
        Box::new(PingReceiver {
            src: Rank(0),
            got: false,
        }),
    ];
    let mut sim = ClusterSim::new(SystemSpec::greina(), t, vec![win], kernels);
    sim.run();
}

#[test]
fn race_detector_is_clean_and_transparent_on_notified_put() {
    // A properly notified put has a happens-before edge from the write to
    // the receiver's wait: the detector must stay silent, and attaching it
    // must not perturb virtual time (it is strictly observational).
    let t = topo(2, 1);
    let win = WindowSpec::uniform(&t, 1024);
    let build = || {
        let kernels: Vec<Box<dyn RankKernel>> = vec![
            Box::new(PingSender {
                dst: Rank(1),
                sent: false,
            }),
            Box::new(PingReceiver {
                src: Rank(0),
                got: false,
            }),
        ];
        ClusterSim::new(SystemSpec::greina(), t, vec![win.clone()], kernels)
    };
    let plain = build().run();
    let mut sim = build();
    sim.enable_race_detection();
    let checked = sim.run();
    assert!(
        checked.races.is_empty(),
        "false positive: {}",
        checked.races[0]
    );
    assert_eq!(plain.end_time, checked.end_time);
    assert_eq!(plain.events, checked.events);
    assert!(plain.races.is_empty());
}

#[test]
fn race_detector_flags_unordered_remote_writes() {
    // Ranks 1 and 2 both put-with-notify into the SAME bytes of rank 0's
    // window with no ordering between them: a write-write race on rank 0's
    // memory. The report must be found, and found deterministically (the
    // same single report on every run).
    let t = topo(1, 3);
    let win = WindowSpec::uniform(&t, 64);
    struct S {
        sent: bool,
    }
    impl RankKernel for S {
        fn resume(&mut self, ctx: &mut RankCtx<'_>) -> Suspend {
            if self.sent {
                return Suspend::Finished;
            }
            self.sent = true;
            ctx.put_notify(WinId(0), Rank(0), 0, 0, 8, 7);
            Suspend::Flush
        }
    }
    struct R {
        waited: bool,
    }
    impl RankKernel for R {
        fn resume(&mut self, _: &mut RankCtx<'_>) -> Suspend {
            if self.waited {
                return Suspend::Finished;
            }
            self.waited = true;
            Suspend::WaitNotifications {
                win: Some(WinId(0)),
                source: None,
                tag: Some(7),
                count: 2,
            }
        }
    }
    let run_once = || {
        let kernels: Vec<Box<dyn RankKernel>> = vec![
            Box::new(R { waited: false }) as _,
            Box::new(S { sent: false }) as _,
            Box::new(S { sent: false }) as _,
        ];
        let mut sim = ClusterSim::new(SystemSpec::greina(), t, vec![win.clone()], kernels);
        sim.enable_race_detection();
        sim.run()
    };
    let a = run_once();
    assert_eq!(a.races.len(), 1, "expected exactly one race: {:?}", a.races);
    let r = &a.races[0];
    assert_eq!(r.owner, 0);
    assert_eq!(r.win, 0);
    assert_eq!((r.start, r.end), (0, 8));
    use dcuda_verify::AccessKind;
    assert!(
        matches!(r.first.kind, AccessKind::RemoteWrite)
            && matches!(r.second.kind, AccessKind::RemoteWrite),
        "must be write-write: {r}"
    );
    // Deterministic: a second run yields the byte-identical report.
    let b = run_once();
    assert_eq!(b.races.len(), 1);
    assert_eq!(a.races[0].to_string(), b.races[0].to_string());
}

#[test]
fn race_detector_joins_nonblocking_barrier_at_completion_wait() {
    // Nonblocking barrier ordering: rank 1 reads bytes rank 0 wrote (after
    // a notification wait — ordered), then both ranks run an ibarrier.
    // Rank 0 re-writes the same bytes only after waiting for its barrier
    // completion, so the all-entries join delivered at the IBARRIER_WIN
    // match must order the re-write after rank 1's read. No race.
    use dcuda_core::IBARRIER_WIN;
    let t = topo(2, 1);
    let win = WindowSpec::uniform(&t, 64);
    struct Writer {
        phase: u32,
    }
    impl RankKernel for Writer {
        fn resume(&mut self, ctx: &mut RankCtx<'_>) -> Suspend {
            self.phase += 1;
            match self.phase {
                1 => {
                    ctx.put_notify(WinId(0), Rank(1), 0, 0, 8, 9);
                    Suspend::Flush
                }
                2 => {
                    ctx.ibarrier(5);
                    Suspend::WaitNotifications {
                        win: Some(WinId(IBARRIER_WIN)),
                        source: Some(ctx.rank()),
                        tag: Some(5),
                        count: 1,
                    }
                }
                3 => {
                    // Only now — after the barrier completion — touch the
                    // bytes rank 1 read.
                    ctx.put_notify(WinId(0), Rank(1), 0, 0, 8, 11);
                    Suspend::Flush
                }
                _ => Suspend::Finished,
            }
        }
    }
    struct Reader {
        phase: u32,
    }
    impl RankKernel for Reader {
        fn resume(&mut self, ctx: &mut RankCtx<'_>) -> Suspend {
            self.phase += 1;
            match self.phase {
                1 => Suspend::WaitNotifications {
                    win: Some(WinId(0)),
                    source: Some(Rank(0)),
                    tag: Some(9),
                    count: 1,
                },
                2 => {
                    // RMA read of the bytes rank 0 just wrote (the put's
                    // source range), then enter the barrier.
                    ctx.put(WinId(0), Rank(0), 8, 0, 8);
                    ctx.ibarrier(5);
                    Suspend::WaitNotifications {
                        win: Some(WinId(IBARRIER_WIN)),
                        source: Some(ctx.rank()),
                        tag: Some(5),
                        count: 1,
                    }
                }
                3 => Suspend::WaitNotifications {
                    win: Some(WinId(0)),
                    source: Some(Rank(0)),
                    tag: Some(11),
                    count: 1,
                },
                _ => Suspend::Finished,
            }
        }
    }
    let kernels: Vec<Box<dyn RankKernel>> =
        vec![Box::new(Writer { phase: 0 }), Box::new(Reader { phase: 0 })];
    let mut sim = ClusterSim::new(SystemSpec::greina(), t, vec![win], kernels);
    sim.enable_race_detection();
    let report = sim.run();
    assert_eq!(report.barriers, 1);
    assert!(
        report.races.is_empty(),
        "false positive across ibarrier: {}",
        report.races[0]
    );
}
