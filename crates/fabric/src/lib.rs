//! Interconnect and PCI-Express models for the simulated GPU cluster.
//!
//! The dCUDA paper's testbed is ten nodes with one Tesla K80 each, connected
//! by 4x EDR InfiniBand; the paper measures ~6 GB/s device-direct bandwidth
//! and a ~19 µs end-to-end notified-put pipeline. This crate provides the
//! timing substrate for that environment:
//!
//! * [`NetworkSpec`] / [`Network`] — a LogGP-style fully connected fabric
//!   with per-node NIC egress serialization, fixed wire latency, per-message
//!   overhead, and the OpenMPI *host-staging* policy (large device buffers
//!   are staged through pinned host memory, trading extra latency for higher
//!   bandwidth — paper §IV-C).
//! * [`PcieSpec`] / [`PcieLink`] — the host–device link used for queue
//!   transactions (single-transaction enqueues, paper §III-C) and DMA copies.
//! * [`FaultSpec`] / [`FaultLayer`] — deterministic, seed-reproducible fault
//!   injection (drop/duplicate/reorder, latency spikes, bandwidth brownouts,
//!   NIC stalls, permanent link death) plus per-link health tracking that
//!   drives the adaptive path-demotion ladder.
//!
//! All models are *time functions*: they mutate internal contention state and
//! return delivery instants; the caller schedules the corresponding events.

#![warn(missing_docs)]

pub mod faults;
pub mod network;
pub mod pcie;
pub mod spec;

pub use faults::{
    storm_victims, FaultLayer, FaultSpec, FaultStats, KillLink, PacketFate, RetrySpec, StreamRates,
};
pub use network::{Delivery, FaultedSend, MsgRecord, Network, NodeId, PacketKind, TransferPath};
pub use pcie::{PcieLink, PcieOp, PcieRecord};
pub use spec::{NetworkSpec, PcieSpec};
