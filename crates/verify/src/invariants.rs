//! Runtime protocol invariant monitoring.
//!
//! Two deployment shapes, one report type:
//!
//! * **Token-level monitor** ([`InvariantMonitor`]) for the discrete-event
//!   simulator: the single-threaded event loop mints a unique token per
//!   notification *at send time* and reports delivery and matching, so the
//!   monitor checks exactly-once delivery per token, matched-at-most-
//!   delivered per key, and tracks a per-rank vector clock joined along
//!   delivery edges. Delivery order between a pair of ranks may legally
//!   reorder in the simulator (metadata and payload paths complete
//!   independently), so reordering is *counted*, not flagged.
//! * **Sharded counters** ([`ShardCounters`]) for the threaded runtime:
//!   each rank/host thread keeps private per-key counters (sent,
//!   delivered, matched, dropped-at-shutdown) plus local sequence and
//!   credit checks; [`reconcile_shards`] merges them after the join and
//!   derives conservation violations.
//!
//! Both produce a [`VerifyReport`] that rides inside the runs' report
//! structures. Monitoring is strictly observational: enabling it must not
//! change any run output (the golden test in the bench crate asserts
//! byte-identical figures with `--verify` on and off).

use dcuda_queues::Notification;
use std::collections::BTreeMap;

/// The identity of a notification class: the (window, source, tag) triple
/// that queries match against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct NotifKey {
    /// Window id.
    pub win: u32,
    /// Origin rank.
    pub source: u32,
    /// User tag.
    pub tag: u32,
}

impl From<Notification> for NotifKey {
    fn from(n: Notification) -> Self {
        NotifKey {
            win: n.win,
            source: n.source,
            tag: n.tag,
        }
    }
}

impl std::fmt::Display for NotifKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "(win {}, source {}, tag {})",
            self.win, self.source, self.tag
        )
    }
}

/// A detected protocol violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A notification was sent but never delivered to its target.
    LostNotification {
        /// Target rank that never saw it.
        target: u32,
        /// Notification class.
        key: NotifKey,
        /// How many of this class went missing.
        missing: u64,
    },
    /// More deliveries than sends were observed for a class (duplicate
    /// delivery, or delivery without a send).
    DuplicateDelivery {
        /// Target rank.
        target: u32,
        /// Notification class.
        key: NotifKey,
        /// Deliveries beyond the send count.
        extra: u64,
    },
    /// A single token was delivered twice (simulator token-level check).
    TokenRedelivered {
        /// Target rank.
        target: u32,
        /// Notification class.
        key: NotifKey,
        /// The offending token.
        token: u64,
    },
    /// A delivery carried a token that was never minted.
    UnknownToken {
        /// Target rank.
        target: u32,
        /// The offending token.
        token: u64,
    },
    /// More notifications matched than were delivered for a class.
    OverMatched {
        /// Matching rank.
        target: u32,
        /// Notification class.
        key: NotifKey,
        /// Matches observed.
        matched: u64,
        /// Deliveries observed.
        delivered: u64,
    },
    /// A producer's in-flight upper bound exceeded the ring capacity
    /// (credit flow-control failure).
    CreditOverflow {
        /// Rank whose command ring overflowed.
        rank: u32,
        /// Observed in-flight bound.
        in_flight: u64,
        /// Ring capacity.
        capacity: u64,
    },
    /// A consumer observed its consumed-count moving backwards.
    SequenceRegression {
        /// Rank whose delivery ring regressed.
        rank: u32,
        /// Previously observed count.
        prev: u64,
        /// Regressed count.
        got: u64,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::LostNotification { target, key, missing } => write!(
                f,
                "lost notification: {missing} of class {key} never delivered to rank {target}"
            ),
            Violation::DuplicateDelivery { target, key, extra } => write!(
                f,
                "duplicate delivery: {extra} extra of class {key} at rank {target}"
            ),
            Violation::TokenRedelivered { target, key, token } => write!(
                f,
                "token {token} of class {key} delivered twice to rank {target}"
            ),
            Violation::UnknownToken { target, token } => {
                write!(f, "unminted token {token} delivered to rank {target}")
            }
            Violation::OverMatched {
                target,
                key,
                matched,
                delivered,
            } => write!(
                f,
                "over-match at rank {target}: {matched} matched but only {delivered} delivered for class {key}"
            ),
            Violation::CreditOverflow {
                rank,
                in_flight,
                capacity,
            } => write!(
                f,
                "credit overflow at rank {rank}: {in_flight} in flight on a capacity-{capacity} ring"
            ),
            Violation::SequenceRegression { rank, prev, got } => write!(
                f,
                "sequence regression at rank {rank}: consumed count moved {prev} -> {got}"
            ),
        }
    }
}

/// Outcome of an invariant-monitored run.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Detected violations (empty on a clean run).
    pub violations: Vec<Violation>,
    /// Notifications tracked end-to-end.
    pub notifications_tracked: u64,
    /// Per-(origin, target) delivery reorderings observed. Legal in the
    /// simulator (independent completion of metadata/payload paths);
    /// reported for diagnostics.
    pub reorders_observed: u64,
}

impl VerifyReport {
    /// True when no violations were detected.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line summary for logs and check binaries.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            format!(
                "verify: clean ({} notifications tracked, {} reorders)",
                self.notifications_tracked, self.reorders_observed
            )
        } else {
            format!(
                "verify: {} violation(s) over {} notifications: {}",
                self.violations.len(),
                self.notifications_tracked,
                self.violations
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("; ")
            )
        }
    }
}

impl std::fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.summary())
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct KeyCounts {
    sent: u64,
    delivered: u64,
    matched: u64,
}

struct TokenRec {
    target: u32,
    key: NotifKey,
    delivered: bool,
}

/// Token-level invariant monitor for the (single-threaded) simulator event
/// loop. Strictly observational; see the module docs.
pub struct InvariantMonitor {
    world: u32,
    /// Token `t` (1-based) lives at `tokens[t - 1]`.
    tokens: Vec<TokenRec>,
    counts: BTreeMap<(u32, NotifKey), KeyCounts>,
    /// Per-rank vector clocks (world × world), joined along delivery edges
    /// at delivery time (an upper bound on true causality; diagnostic).
    clocks: Vec<Vec<u64>>,
    /// Per-(origin, target) newest delivered token, for reorder counting.
    last_delivered: BTreeMap<(u32, u32), u64>,
    reorders: u64,
    violations: Vec<Violation>,
}

impl InvariantMonitor {
    /// Monitor for a world of `world` ranks.
    pub fn new(world: u32) -> Self {
        InvariantMonitor {
            world,
            tokens: Vec::new(),
            counts: BTreeMap::new(),
            clocks: (0..world).map(|_| vec![0u64; world as usize]).collect(),
            last_delivered: BTreeMap::new(),
            reorders: 0,
            violations: Vec::new(),
        }
    }

    /// Record a notification sent toward `target`; returns the minted token
    /// (tokens are sequential, so a `k`-way fan-out minted back-to-back
    /// occupies a contiguous token range).
    pub fn sent(&mut self, origin: u32, target: u32, notif: Notification) -> u64 {
        let key = NotifKey::from(notif);
        self.counts.entry((target, key)).or_default().sent += 1;
        if (origin as usize) < self.clocks.len() {
            let o = origin as usize;
            self.clocks[o][o] += 1;
        }
        self.tokens.push(TokenRec {
            target,
            key,
            delivered: false,
        });
        self.tokens.len() as u64
    }

    /// Record token `token` arriving at `target` from `origin`.
    pub fn delivered(&mut self, origin: u32, target: u32, token: u64, notif: Notification) {
        let key = NotifKey::from(notif);
        self.counts.entry((target, key)).or_default().delivered += 1;
        match self.tokens.get_mut((token as usize).wrapping_sub(1)) {
            None => self
                .violations
                .push(Violation::UnknownToken { target, token }),
            Some(rec) => {
                if rec.delivered {
                    self.violations.push(Violation::TokenRedelivered {
                        target,
                        key: rec.key,
                        token,
                    });
                }
                rec.delivered = true;
            }
        }
        // Delivery-time causal join: target learns everything the origin's
        // clock currently holds (upper bound on the true send-time clock).
        if (origin as usize) < self.clocks.len() && (target as usize) < self.clocks.len() {
            let snapshot = self.clocks[origin as usize].clone();
            let t = &mut self.clocks[target as usize];
            for (c, s) in t.iter_mut().zip(snapshot.iter()) {
                *c = (*c).max(*s);
            }
        }
        let last = self.last_delivered.entry((origin, target)).or_insert(0);
        if token < *last {
            self.reorders += 1;
        } else {
            *last = token;
        }
    }

    /// Record `count` notifications of `notif`'s class matched at `target`.
    pub fn matched(&mut self, target: u32, notif: Notification, count: u64) {
        let key = NotifKey::from(notif);
        let c = self.counts.entry((target, key)).or_default();
        c.matched += count;
        if c.matched > c.delivered {
            self.violations.push(Violation::OverMatched {
                target,
                key,
                matched: c.matched,
                delivered: c.delivered,
            });
        }
    }

    /// Final per-rank vector clocks (diagnostic).
    pub fn clocks(&self) -> &[Vec<u64>] {
        &self.clocks
    }

    /// World size the monitor was built for.
    pub fn world(&self) -> u32 {
        self.world
    }

    /// Close the books: every minted token must have been delivered exactly
    /// once, and per-class matched ≤ delivered ≤ sent must hold.
    pub fn finish(mut self) -> VerifyReport {
        let mut missing: BTreeMap<(u32, NotifKey), u64> = BTreeMap::new();
        for rec in &self.tokens {
            if !rec.delivered {
                *missing.entry((rec.target, rec.key)).or_default() += 1;
            }
        }
        for ((target, key), count) in missing {
            self.violations.push(Violation::LostNotification {
                target,
                key,
                missing: count,
            });
        }
        for (&(target, key), c) in &self.counts {
            if c.delivered > c.sent {
                self.violations.push(Violation::DuplicateDelivery {
                    target,
                    key,
                    extra: c.delivered - c.sent,
                });
            }
        }
        VerifyReport {
            violations: self.violations,
            notifications_tracked: self.tokens.len() as u64,
            reorders_observed: self.reorders,
        }
    }
}

/// Per-thread counters for the threaded runtime: each rank (and host) keeps
/// its own shard with no cross-thread traffic; [`reconcile_shards`] merges
/// them after the threads join.
#[derive(Debug, Clone, Default)]
pub struct ShardCounters {
    /// (target, class) → notifications sent.
    pub sent: BTreeMap<(u32, NotifKey), u64>,
    /// (target, class) → notifications delivered (target-side).
    pub delivered: BTreeMap<(u32, NotifKey), u64>,
    /// (target, class) → notifications matched (target-side).
    pub matched: BTreeMap<(u32, NotifKey), u64>,
    /// (target, class) → deliveries dropped because the target had already
    /// finished (legal at shutdown; balances the conservation equation).
    pub dropped: BTreeMap<(u32, NotifKey), u64>,
    /// Credit-balance violations observed locally (in-flight > capacity).
    pub credit_overflows: u64,
    /// Largest in-flight bound observed on this shard's command ring.
    pub max_in_flight: u64,
    /// Consumed-count regressions observed on this shard's delivery ring.
    pub seq_regressions: u64,
}

impl ShardCounters {
    /// Record a notification sent toward `target`.
    pub fn note_sent(&mut self, target: u32, notif: Notification) {
        *self
            .sent
            .entry((target, NotifKey::from(notif)))
            .or_default() += 1;
    }

    /// Record a delivery observed locally at `target`.
    pub fn note_delivered(&mut self, target: u32, notif: Notification) {
        *self
            .delivered
            .entry((target, NotifKey::from(notif)))
            .or_default() += 1;
    }

    /// Record `count` local matches at `target`.
    pub fn note_matched(&mut self, target: u32, notif: Notification, count: u64) {
        *self
            .matched
            .entry((target, NotifKey::from(notif)))
            .or_default() += count;
    }

    /// Record a delivery dropped at shutdown (target already finished).
    pub fn note_dropped(&mut self, target: u32, notif: Notification) {
        *self
            .dropped
            .entry((target, NotifKey::from(notif)))
            .or_default() += 1;
    }

    /// Check the producer-side credit bound after a send.
    pub fn note_in_flight(&mut self, in_flight: u64, capacity: u64) {
        self.max_in_flight = self.max_in_flight.max(in_flight);
        if in_flight > capacity {
            self.credit_overflows += 1;
        }
    }

    /// Check consumer-side sequence monotonicity.
    pub fn note_consumed(&mut self, prev: u64, got: u64) {
        if got < prev {
            self.seq_regressions += 1;
        }
    }

    /// Fold another shard into this one.
    pub fn merge(&mut self, other: &ShardCounters) {
        for (k, v) in &other.sent {
            *self.sent.entry(*k).or_default() += v;
        }
        for (k, v) in &other.delivered {
            *self.delivered.entry(*k).or_default() += v;
        }
        for (k, v) in &other.matched {
            *self.matched.entry(*k).or_default() += v;
        }
        for (k, v) in &other.dropped {
            *self.dropped.entry(*k).or_default() += v;
        }
        self.credit_overflows += other.credit_overflows;
        self.max_in_flight = self.max_in_flight.max(other.max_in_flight);
        self.seq_regressions += other.seq_regressions;
    }
}

/// Merge per-thread shards and derive conservation violations:
/// `matched ≤ delivered`, `delivered + dropped == sent` per (target, class),
/// no credit overflows, no sequence regressions. `capacity` is the command
/// ring capacity (diagnostic context for credit violations).
pub fn reconcile_shards<I>(capacity: u64, shards: I) -> VerifyReport
where
    I: IntoIterator<Item = ShardCounters>,
{
    let mut total = ShardCounters::default();
    for s in shards {
        total.merge(&s);
    }
    let mut violations = Vec::new();
    let mut tracked = 0u64;
    let keys: std::collections::BTreeSet<(u32, NotifKey)> = total
        .sent
        .keys()
        .chain(total.delivered.keys())
        .chain(total.matched.keys())
        .chain(total.dropped.keys())
        .copied()
        .collect();
    for k in keys {
        let (target, key) = k;
        let sent = total.sent.get(&k).copied().unwrap_or(0);
        let delivered = total.delivered.get(&k).copied().unwrap_or(0);
        let matched = total.matched.get(&k).copied().unwrap_or(0);
        let dropped = total.dropped.get(&k).copied().unwrap_or(0);
        tracked += sent;
        if matched > delivered {
            violations.push(Violation::OverMatched {
                target,
                key,
                matched,
                delivered,
            });
        }
        if delivered + dropped > sent {
            violations.push(Violation::DuplicateDelivery {
                target,
                key,
                extra: delivered + dropped - sent,
            });
        } else if delivered + dropped < sent {
            violations.push(Violation::LostNotification {
                target,
                key,
                missing: sent - delivered - dropped,
            });
        }
    }
    if total.credit_overflows > 0 {
        violations.push(Violation::CreditOverflow {
            rank: u32::MAX,
            in_flight: total.max_in_flight,
            capacity,
        });
    }
    if total.seq_regressions > 0 {
        violations.push(Violation::SequenceRegression {
            rank: u32::MAX,
            prev: total.seq_regressions,
            got: 0,
        });
    }
    VerifyReport {
        violations,
        notifications_tracked: tracked,
        reorders_observed: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(win: u32, source: u32, tag: u32) -> Notification {
        Notification { win, source, tag }
    }

    #[test]
    fn clean_exactly_once_flow() {
        let mut m = InvariantMonitor::new(4);
        let t0 = m.sent(0, 1, n(0, 0, 7));
        let t1 = m.sent(0, 1, n(0, 0, 7));
        m.delivered(0, 1, t0, n(0, 0, 7));
        m.delivered(0, 1, t1, n(0, 0, 7));
        m.matched(1, n(0, 0, 7), 2);
        let r = m.finish();
        assert!(r.is_clean(), "{}", r.summary());
        assert_eq!(r.notifications_tracked, 2);
    }

    #[test]
    fn lost_notification_detected() {
        let mut m = InvariantMonitor::new(2);
        let _t = m.sent(0, 1, n(0, 0, 3));
        let r = m.finish();
        assert!(matches!(
            r.violations.as_slice(),
            [Violation::LostNotification {
                target: 1,
                missing: 1,
                ..
            }]
        ));
    }

    #[test]
    fn double_delivery_detected() {
        let mut m = InvariantMonitor::new(2);
        let t = m.sent(0, 1, n(0, 0, 3));
        m.delivered(0, 1, t, n(0, 0, 3));
        m.delivered(0, 1, t, n(0, 0, 3));
        let r = m.finish();
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::TokenRedelivered { .. })));
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DuplicateDelivery { .. })));
    }

    #[test]
    fn over_match_detected() {
        let mut m = InvariantMonitor::new(2);
        let t = m.sent(0, 1, n(0, 0, 3));
        m.delivered(0, 1, t, n(0, 0, 3));
        m.matched(1, n(0, 0, 3), 2);
        let r = m.finish();
        assert!(r.violations.iter().any(|v| matches!(
            v,
            Violation::OverMatched {
                matched: 2,
                delivered: 1,
                ..
            }
        )));
    }

    #[test]
    fn reorders_counted_not_flagged() {
        let mut m = InvariantMonitor::new(2);
        let t0 = m.sent(0, 1, n(0, 0, 1));
        let t1 = m.sent(0, 1, n(0, 0, 2));
        m.delivered(0, 1, t1, n(0, 0, 2));
        m.delivered(0, 1, t0, n(0, 0, 1));
        m.matched(1, n(0, 0, 1), 1);
        m.matched(1, n(0, 0, 2), 1);
        let r = m.finish();
        assert!(r.is_clean(), "{}", r.summary());
        assert_eq!(r.reorders_observed, 1);
    }

    #[test]
    fn shards_reconcile_clean() {
        let mut rank1 = ShardCounters::default();
        rank1.note_sent(2, n(0, 1, 5));
        let mut rank2 = ShardCounters::default();
        rank2.note_delivered(2, n(0, 1, 5));
        rank2.note_matched(2, n(0, 1, 5), 1);
        let r = reconcile_shards(64, [rank1, rank2]);
        assert!(r.is_clean(), "{}", r.summary());
    }

    #[test]
    fn shards_detect_loss_and_credit() {
        let mut rank1 = ShardCounters::default();
        rank1.note_sent(2, n(0, 1, 5));
        rank1.note_in_flight(65, 64);
        let r = reconcile_shards(64, [rank1]);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::LostNotification { .. })));
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::CreditOverflow { .. })));
    }

    #[test]
    fn dropped_deliveries_balance() {
        let mut rank1 = ShardCounters::default();
        rank1.note_sent(2, n(0, 1, 5));
        let mut host = ShardCounters::default();
        host.note_dropped(2, n(0, 1, 5));
        let r = reconcile_shards(64, [rank1, host]);
        assert!(r.is_clean(), "{}", r.summary());
    }
}
