//! `dcuda-sched`: a multi-tenant job scheduler over the threaded runtime.
//!
//! The dCUDA paper evaluates one program per cluster run; this crate turns
//! the runtime into a long-lived shared service. A [`Scheduler`] owns the
//! capacity of one cluster (`devices × ranks_per_device` rank slots — the
//! paper's one-rank-per-SM mapping read as an accounting unit) and admits a
//! stream of [`JobSpec`] submissions:
//!
//! * **Gang scheduling, FIFO with bounded backfill** — a job's ranks are
//!   leased all-or-nothing onto free devices ([`ledger::Ledger`]); queued
//!   jobs wait for capacity, later jobs may jump a blocked head at most
//!   [`SchedLimits::backfill_limit`] times (no starvation).
//! * **Quotas at admission** — window/scratch bytes, queue (ring) capacity,
//!   gang size and queue depth are checked at `submit` and rejected with
//!   typed, deterministic [`SchedError`]s.
//! * **Fault isolation per job** — every admitted job runs as its own
//!   cluster world via [`dcuda_rt::try_run_cluster_job`] with its own
//!   abort flag, so one job's `RankPanicked`/`RtError::Race` tears down
//!   only that job and frees its lease while neighbors run on.
//! * **A control plane on the launch codec** — [`server`] speaks
//!   `submit`/`status`/`cancel`/`drain` verbs as length-prefixed blobs
//!   (`dcuda_net::launch`), returning per-job reports plus an aggregate
//!   [`SchedStats`].
//!
//! Jobs are *named programs* ([`JobProgram`]) rather than closures so a
//! spec can cross the control plane; each is deterministic in
//! `(seed, world, iters, payload)` and publishes the same rank-salted
//! FNV checksums the conformance suite uses, which is what makes the
//! storm-vs-solo byte-identity tests in `tests/sched_conformance.rs`
//! possible.

#![warn(missing_docs)]

pub mod jobstate;
pub mod ledger;
pub mod programs;
pub mod scheduler;
pub mod server;

pub use dcuda_core::SchedStats;
pub use jobstate::{CancelVerdict, JobCell, JobEnd, TableState};
pub use ledger::{AdmissionQueue, Lease, Ledger, QueuedJob};
pub use scheduler::{run_solo, JobCounters, JobResult, JobStatus, Scheduler};
pub use server::{serve, spawn_server, CtrlClient, ServerHandle};

use dcuda_rt::{RtConfig, RtError, DEFAULT_COLL_SCRATCH, MAX_WORLD};
use std::fmt;

/// The named program a job runs. Specs must cross the control plane, so
/// jobs pick from this registry instead of shipping closures; every program
/// is deterministic in `(seed, world, iters, payload)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobProgram {
    /// Ring halo exchange: every rank puts to its right neighbor and
    /// consumes from its left each iteration (the paper's overlap shape).
    Ring,
    /// Even/odd rank pairs exchange the payload each iteration; the
    /// unpaired last rank of an odd world sits out.
    PingPong,
    /// Chunked ring allreduce over `u64` lanes each iteration.
    Allreduce,
    /// The fault-profile victim: runs `Ring` until the given iteration,
    /// then rank 0 panics — the seeded mid-stream kill the isolation suite
    /// injects to prove neighbors are untouched.
    Poison {
        /// Iteration at which rank 0 panics (clamped to the iter count).
        at_iter: u32,
    },
}

impl JobProgram {
    /// Canonical wire name (`poison:<n>` carries its trigger iteration).
    pub fn name(&self) -> String {
        match self {
            JobProgram::Ring => "ring".into(),
            JobProgram::PingPong => "pingpong".into(),
            JobProgram::Allreduce => "allreduce".into(),
            JobProgram::Poison { at_iter } => format!("poison:{at_iter}"),
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Result<JobProgram, String> {
        match s {
            "ring" => Ok(JobProgram::Ring),
            "pingpong" => Ok(JobProgram::PingPong),
            "allreduce" => Ok(JobProgram::Allreduce),
            other => {
                if let Some(n) = other.strip_prefix("poison:") {
                    let at_iter = n
                        .parse::<u32>()
                        .map_err(|_| format!("bad poison iteration {n:?}"))?;
                    Ok(JobProgram::Poison { at_iter })
                } else {
                    Err(format!(
                        "unknown program {other:?} (expected ring, pingpong, allreduce or poison:<n>)"
                    ))
                }
            }
        }
    }
}

/// One job submission: program, gang shape, window layout knobs and
/// priority. Serializable over the control plane via
/// [`to_kv`](JobSpec::to_kv)/[`parse_kv`](JobSpec::parse_kv).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Caller label (reported back verbatim; no whitespace or `=`).
    pub name: String,
    /// Which registry program every rank executes.
    pub program: JobProgram,
    /// Devices the gang spans.
    pub devices: u32,
    /// Ranks per device.
    pub ranks_per_device: u32,
    /// Communication rounds.
    pub iters: u32,
    /// Payload bytes per message.
    pub payload: usize,
    /// Extra window bytes the job reserves beyond the program's own layout
    /// (a quota surface: admission charges it against the window budget).
    pub extra_window: usize,
    /// Command/delivery ring capacity (power of two) — the per-job queue
    /// quota surface.
    pub ring_capacity: usize,
    /// Determinism seed for the program's data.
    pub seed: u64,
    /// Scheduling priority: higher admits earlier, equal stays FIFO.
    pub priority: u8,
}

impl JobSpec {
    /// A small job with conservative defaults, ready to customize.
    pub fn small(name: impl Into<String>, program: JobProgram) -> JobSpec {
        JobSpec {
            name: name.into(),
            program,
            devices: 1,
            ranks_per_device: 2,
            iters: 4,
            payload: 64,
            extra_window: 0,
            ring_capacity: 64,
            seed: 1,
            priority: 0,
        }
    }

    /// Gang size (`devices * ranks_per_device`).
    pub fn ranks(&self) -> u32 {
        self.devices * self.ranks_per_device
    }

    /// The window layout every rank of this job registers.
    pub fn windows(&self) -> Vec<usize> {
        let mut w = programs::windows(self);
        if self.extra_window > 0 {
            w.push(self.extra_window);
        }
        w
    }

    /// Collective scratch bytes this job needs.
    pub fn coll_scratch(&self) -> usize {
        programs::coll_scratch(self).max(DEFAULT_COLL_SCRATCH)
    }

    /// Total per-rank window footprint charged against the quota: the
    /// program layout, the extra reservation and the hidden scratch.
    pub fn window_bytes_total(&self) -> usize {
        self.windows().iter().sum::<usize>() + self.coll_scratch()
    }

    /// Validate against admission quotas — typed and deterministic: the
    /// same spec against the same limits always yields the same verdict.
    pub fn validate(&self, limits: &SchedLimits) -> Result<(), SchedError> {
        if self.name.is_empty() || self.name.contains(|c: char| c.is_whitespace() || c == '=') {
            return Err(SchedError::InvalidSpec(format!(
                "job name {:?} empty or contains whitespace/'='",
                self.name
            )));
        }
        if self.devices == 0 || self.ranks_per_device == 0 {
            return Err(SchedError::InvalidSpec("zero-rank gang".into()));
        }
        let ranks = u64::from(self.ranks());
        if ranks > u64::from(limits.max_ranks.min(MAX_WORLD)) {
            return Err(SchedError::Quota {
                what: "ranks",
                requested: ranks,
                limit: u64::from(limits.max_ranks.min(MAX_WORLD)),
            });
        }
        if !self.ring_capacity.is_power_of_two() || self.ring_capacity < 2 {
            return Err(SchedError::InvalidSpec(format!(
                "ring capacity {} is not a power of two >= 2",
                self.ring_capacity
            )));
        }
        if self.ring_capacity > limits.max_ring_capacity {
            return Err(SchedError::Quota {
                what: "ring capacity",
                requested: self.ring_capacity as u64,
                limit: limits.max_ring_capacity as u64,
            });
        }
        let window = self.window_bytes_total();
        if window > limits.max_window_bytes {
            return Err(SchedError::Quota {
                what: "window bytes",
                requested: window as u64,
                limit: limits.max_window_bytes as u64,
            });
        }
        Ok(())
    }

    /// The whole-world runtime configuration this job runs on.
    pub fn rt_config(&self) -> Result<RtConfig, RtError> {
        RtConfig::builder()
            .devices(self.devices)
            .ranks_per_device(self.ranks_per_device)
            .windows(self.windows())
            .ring_capacity(self.ring_capacity)
            .coll_scratch(self.coll_scratch())
            .build()
    }

    /// Serialize as the control plane's `key=value` line.
    pub fn to_kv(&self) -> String {
        format!(
            "name={} program={} devices={} rpd={} iters={} payload={} extra={} ring={} seed={} prio={}",
            self.name,
            self.program.name(),
            self.devices,
            self.ranks_per_device,
            self.iters,
            self.payload,
            self.extra_window,
            self.ring_capacity,
            self.seed,
            self.priority,
        )
    }

    /// Parse the `key=value` line [`to_kv`](JobSpec::to_kv) emits. Unknown
    /// keys are errors (the control plane is versioned by strictness).
    pub fn parse_kv(line: &str) -> Result<JobSpec, String> {
        let mut spec = JobSpec::small("job", JobProgram::Ring);
        let mut saw_name = false;
        for tok in line.split_whitespace() {
            let (k, v) = tok
                .split_once('=')
                .ok_or_else(|| format!("bad token {tok:?} (expected key=value)"))?;
            let num = |v: &str| {
                v.parse::<u64>()
                    .map_err(|_| format!("bad number {v:?} for {k}"))
            };
            match k {
                "name" => {
                    spec.name = v.to_string();
                    saw_name = true;
                }
                "program" => spec.program = JobProgram::parse(v)?,
                "devices" => spec.devices = num(v)? as u32,
                "rpd" => spec.ranks_per_device = num(v)? as u32,
                "iters" => spec.iters = num(v)? as u32,
                "payload" => spec.payload = num(v)? as usize,
                "extra" => spec.extra_window = num(v)? as usize,
                "ring" => spec.ring_capacity = num(v)? as usize,
                "seed" => spec.seed = num(v)?,
                "prio" => spec.priority = num(v)? as u8,
                other => return Err(format!("unknown job key {other:?}")),
            }
        }
        if !saw_name {
            return Err("job spec missing name=".into());
        }
        Ok(spec)
    }
}

/// Per-job admission quotas and queue policy of one scheduler instance.
#[derive(Debug, Clone, Copy)]
pub struct SchedLimits {
    /// Largest gang a single job may request.
    pub max_ranks: u32,
    /// Per-rank window footprint cap (program layout + extra + scratch).
    pub max_window_bytes: usize,
    /// Per-job command/delivery ring capacity cap.
    pub max_ring_capacity: usize,
    /// Submissions allowed to wait in the queue before `QueueFull`.
    pub max_queue_depth: usize,
    /// Jobs that may jump a capacity-blocked queue head before backfill
    /// stops (the starvation bound).
    pub backfill_limit: u32,
}

impl Default for SchedLimits {
    fn default() -> Self {
        SchedLimits {
            max_ranks: 256,
            max_window_bytes: 4 << 20,
            max_ring_capacity: 4096,
            max_queue_depth: 65_536,
            backfill_limit: 4,
        }
    }
}

/// Errors of the scheduler API and control plane. Admission rejections are
/// deterministic: the same spec against the same limits and capacity shape
/// always fails the same way.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedError {
    /// A per-job quota was exceeded at admission.
    Quota {
        /// Which quota (`ranks`, `window bytes`, `ring capacity`).
        what: &'static str,
        /// What the spec asked for.
        requested: u64,
        /// The configured cap.
        limit: u64,
    },
    /// The gang can never fit this cluster, even idle — rejected at submit
    /// instead of queueing forever.
    NeverFits {
        /// Devices the job asked for.
        devices: u32,
        /// Ranks per device the job asked for.
        ranks_per_device: u32,
        /// Devices the cluster has.
        cap_devices: u32,
        /// Slots per cluster device.
        cap_ranks_per_device: u32,
    },
    /// The submission queue is at its depth limit.
    QueueFull {
        /// The configured depth limit.
        limit: u64,
    },
    /// The scheduler is draining: no new submissions.
    Draining,
    /// No job with this id.
    NoSuchJob(u64),
    /// The spec is malformed (bad name, zero gang, non-power-of-two ring).
    InvalidSpec(String),
    /// The job's runtime failed with this typed error.
    Rt(RtError),
    /// A control-plane transport or protocol failure (client side).
    Control(String),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::Quota {
                what,
                requested,
                limit,
            } => write!(f, "quota exceeded: {requested} {what} over the {limit} cap"),
            SchedError::NeverFits {
                devices,
                ranks_per_device,
                cap_devices,
                cap_ranks_per_device,
            } => write!(
                f,
                "gang of {devices}x{ranks_per_device} can never fit a \
                 {cap_devices}x{cap_ranks_per_device} cluster"
            ),
            SchedError::QueueFull { limit } => {
                write!(f, "submission queue full ({limit} jobs waiting)")
            }
            SchedError::Draining => write!(f, "scheduler draining: no new submissions"),
            SchedError::NoSuchJob(id) => write!(f, "no job {id}"),
            SchedError::InvalidSpec(msg) => write!(f, "invalid job spec: {msg}"),
            SchedError::Rt(e) => write!(f, "job runtime failed: {e}"),
            SchedError::Control(msg) => write!(f, "control plane: {msg}"),
        }
    }
}

impl std::error::Error for SchedError {}

impl From<RtError> for SchedError {
    fn from(e: RtError) -> Self {
        SchedError::Rt(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_round_trips() {
        let mut spec = JobSpec::small("storm-17", JobProgram::Poison { at_iter: 3 });
        spec.devices = 2;
        spec.ranks_per_device = 3;
        spec.iters = 9;
        spec.payload = 192;
        spec.extra_window = 4096;
        spec.ring_capacity = 128;
        spec.seed = 0xFEED;
        spec.priority = 5;
        let line = spec.to_kv();
        assert_eq!(JobSpec::parse_kv(&line), Ok(spec));
    }

    #[test]
    fn quota_rejections_are_typed_and_deterministic() {
        let limits = SchedLimits::default();
        let mut spec = JobSpec::small("big", JobProgram::Ring);
        spec.devices = 300;
        let first = spec.validate(&limits);
        assert_eq!(first, spec.validate(&limits));
        assert!(matches!(
            first,
            Err(SchedError::Quota { what: "ranks", .. })
        ));

        let mut fat = JobSpec::small("fat", JobProgram::Ring);
        fat.extra_window = usize::MAX / 2;
        assert!(matches!(
            fat.validate(&limits),
            Err(SchedError::Quota {
                what: "window bytes",
                ..
            })
        ));

        let mut ring = JobSpec::small("ring", JobProgram::Ring);
        ring.ring_capacity = 3;
        assert!(matches!(
            ring.validate(&limits),
            Err(SchedError::InvalidSpec(_))
        ));
        ring.ring_capacity = 1 << 20;
        assert!(matches!(
            ring.validate(&limits),
            Err(SchedError::Quota {
                what: "ring capacity",
                ..
            })
        ));
    }
}
