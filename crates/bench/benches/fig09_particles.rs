//! Figure 9 bench: particle-simulation weak scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcuda_apps::particles::{run_dcuda, run_mpicuda, ParticleConfig};
use dcuda_core::SystemSpec;

fn bench(c: &mut Criterion) {
    let spec = SystemSpec::greina();
    println!("Figure 9 series (paper shape: dCUDA outperforms MPI-CUDA beyond ~3 nodes; MPI-CUDA scaling cost ~ halo time):");
    for nodes in [1u32, 2, 4, 8] {
        let mut cfg = ParticleConfig::paper(nodes);
        cfg.iters = 20;
        let (_, d) = run_dcuda(&spec, &cfg);
        let (_, m) = run_mpicuda(&spec, &cfg);
        println!(
            "  nodes={nodes}: dCUDA {:>7.2} ms, MPI-CUDA {:>7.2} ms, halo {:>6.2} ms",
            d.time_ms, m.time_ms, m.halo_ms
        );
    }
    let mut g = c.benchmark_group("fig09_particles");
    g.sample_size(10);
    for nodes in [1u32, 2] {
        let mut cfg = ParticleConfig::paper(nodes);
        cfg.iters = 5;
        g.bench_with_input(BenchmarkId::new("dcuda", nodes), &cfg, |b, cfg| {
            b.iter(|| run_dcuda(&spec, cfg))
        });
        g.bench_with_input(BenchmarkId::new("mpicuda", nodes), &cfg, |b, cfg| {
            b.iter(|| run_mpicuda(&spec, cfg))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
