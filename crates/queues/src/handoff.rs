//! Host ↔ progress-thread handoff ring: the SPSC channel a progress
//! engine uses to hand completed transport frames to the host rank that
//! owns them, plus the park/wake doorbell that lets the consumer sleep
//! without losing a publication.
//!
//! # Why not plain [`crate::spsc`]?
//!
//! The progress engine's producer (a socket reactor or a progress-pool
//! worker) publishes from a *different thread* than the host loop that
//! consumes, and the consumer may want to idle when the ring is empty.
//! A naive "check, then sleep" consumer loses the wakeup when the
//! producer publishes between the check and the sleep. The handoff ring
//! wraps the model-checked [`crate::spsc`] ring with the classic
//! waiting-flag protocol:
//!
//! * the consumer announces intent to park ([`HandoffReceiver::prepare_park`]:
//!   store `waiting = 1`, **then** re-check the ring — a publication that
//!   raced the announcement is caught by the re-check);
//! * the producer publishes, **then** reads `waiting`; if set, it rings
//!   the bell (clears the flag), which any parked consumer polls via
//!   [`HandoffReceiver::woken`] — a predicate that covers the bell *and*
//!   the ring, because under weak memory a store to one location never
//!   forces a load of another to be fresh (see `woken`'s docs).
//!
//! Either the producer's publication precedes the consumer's re-check
//! (the re-check finds the message) or the consumer's flag store precedes
//! the producer's flag read (the bell rings); and even when both the
//! re-check and the bell are observed stale, the parked consumer's poll
//! of the published sequence itself converges — there is no interleaving
//! in which a message is published and the consumer stays parked.
//! `verify/tests/handoff_model.rs` checks exactly this (publication
//! ordering, wakeup-loss, and that a seeded Release→Relaxed demotion of
//! the publication surfaces as a data race).
//!
//! All orderings are Release/Acquire pairs — the publication edge is also
//! the happens-before edge the notified-access race detector relies on
//! when a frame completes on a progress thread instead of the host loop.

use crate::plat::{PlatAtomicU64, Platform, StdPlatform};
use crate::spsc::{channel_on, Receiver, RecvError, Sender, TrySendError};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Doorbell state shared by the two endpoints.
struct DoorBell<P: Platform> {
    /// 1 while the consumer is parked (or deciding to park).
    waiting: P::AtomicU64,
    /// Set by the producer's drop so a parking consumer never sleeps on a
    /// dead channel.
    closed: P::AtomicU64,
}

/// Producer endpoint: the progress thread's side.
pub struct HandoffSender<T, P: Platform = StdPlatform> {
    tx: Sender<T, P>,
    bell: Arc<DoorBell<P>>,
    wakes: u64,
}

/// Consumer endpoint: the host loop's side.
pub struct HandoffReceiver<T, P: Platform = StdPlatform> {
    rx: Receiver<T, P>,
    bell: Arc<DoorBell<P>>,
}

/// Create a handoff ring with `capacity` slots on the standard platform.
///
/// # Panics
/// Panics if `capacity` is zero or not a power of two.
pub fn handoff<T>(capacity: usize) -> (HandoffSender<T>, HandoffReceiver<T>) {
    handoff_on::<T, StdPlatform>(capacity)
}

/// As [`handoff`], but over an explicit [`Platform`] — how `dcuda-verify`
/// runs the production protocol under its model-checking scheduler.
///
/// # Panics
/// Panics if `capacity` is zero or not a power of two.
pub fn handoff_on<T, P: Platform>(capacity: usize) -> (HandoffSender<T, P>, HandoffReceiver<T, P>) {
    let (tx, rx) = channel_on::<T, P>(capacity);
    let bell = Arc::new(DoorBell {
        waiting: P::AtomicU64::new(0),
        closed: P::AtomicU64::new(0),
    });
    (
        HandoffSender {
            tx,
            bell: Arc::clone(&bell),
            wakes: 0,
        },
        HandoffReceiver { rx, bell },
    )
}

impl<T, P: Platform> HandoffSender<T, P> {
    /// Publish one message (payload write + Release sequence store via the
    /// inner ring), then ring the bell if the consumer is parked.
    pub fn try_send(&mut self, value: T) -> Result<(), TrySendError<T>> {
        self.tx.try_send(value)?;
        if self.bell.waiting.load(Ordering::Acquire) != 0 {
            self.bell.waiting.store(0, Ordering::Release);
            self.wakes += 1;
        }
        Ok(())
    }

    /// Messages published so far.
    pub fn sent(&self) -> u64 {
        self.tx.sent()
    }

    /// Times the bell was rung for a parked consumer.
    pub fn wakes(&self) -> u64 {
        self.wakes
    }
}

impl<T, P: Platform> HandoffReceiver<T, P> {
    /// Attempt to dequeue the next message.
    pub fn try_recv(&mut self) -> Result<T, RecvError> {
        self.rx.try_recv()
    }

    /// Peek whether a message is available without consuming it.
    pub fn is_ready(&self) -> bool {
        self.rx.is_ready()
    }

    /// Messages consumed so far.
    pub fn consumed(&self) -> u64 {
        self.rx.consumed()
    }

    /// Announce intent to park. Returns `true` if the caller may sleep
    /// (poll [`woken`](Self::woken) while parked). Returns `false` — with
    /// the flag already cleared — when the re-check after the announcement
    /// finds a message or a dead producer; consume or bail instead of
    /// sleeping.
    pub fn prepare_park(&mut self) -> bool {
        self.bell.waiting.store(1, Ordering::Release);
        // The re-check closes the check-then-sleep window: a publication
        // ordered before our flag store is visible here, and one ordered
        // after it observes the flag and rings the bell.
        if self.rx.is_ready() || self.bell.closed.load(Ordering::Acquire) != 0 {
            self.bell.waiting.store(0, Ordering::Release);
            return false;
        }
        true
    }

    /// While parked: may the consumer stop sleeping? True when the
    /// producer rang the bell, when a publication is visible in the ring,
    /// or when the producer closed the channel.
    ///
    /// The ring re-poll is load-bearing, not belt-and-braces: the bell and
    /// the publication are distinct locations, and release/acquire alone
    /// never forces a load of one location to be fresh because of a store
    /// to another. A consumer that parked off a stale
    /// [`prepare_park`](Self::prepare_park) re-check and then spun on the
    /// flag only could be stranded forever — the flag's latest value *is*
    /// its own `waiting = 1`. Polling the published sequence directly
    /// makes the publication itself the forcing function (coherence
    /// delivers it after finitely many loads), which is exactly the
    /// property `verify/tests/handoff_model.rs` proves under bounded
    /// staleness.
    pub fn woken(&self) -> bool {
        self.bell.waiting.load(Ordering::Acquire) == 0
            || self.rx.is_ready()
            || self.bell.closed.load(Ordering::Acquire) != 0
    }

    /// Withdraw a park announcement (the consumer decided to keep
    /// spinning).
    pub fn unpark(&mut self) {
        self.bell.waiting.store(0, Ordering::Release);
    }
}

impl<T, P: Platform> Drop for HandoffSender<T, P> {
    fn drop(&mut self) {
        // Mark closed *before* ringing the bell: a consumer that parks
        // after the bell ring re-checks `closed` in `prepare_park` and
        // refuses to sleep; one already parked is woken by the ring. The
        // inner ring's own disconnect mark (its Drop) follows this body.
        self.bell.closed.store(1, Ordering::Release);
        self.bell.waiting.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_in_order() {
        let (mut tx, mut rx) = handoff::<u32>(4);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(RecvError::Empty));
    }

    #[test]
    fn publication_racing_park_is_caught_by_recheck() {
        let (mut tx, mut rx) = handoff::<u32>(4);
        tx.try_send(7).unwrap();
        // The message was published before the park announcement: the
        // re-check must refuse the park.
        assert!(!rx.prepare_park());
        assert_eq!(rx.try_recv(), Ok(7));
    }

    #[test]
    fn publication_after_park_rings_the_bell() {
        let (mut tx, mut rx) = handoff::<u32>(4);
        assert!(rx.prepare_park());
        assert!(!rx.woken());
        tx.try_send(9).unwrap();
        assert!(rx.woken(), "publish after park must ring the bell");
        assert_eq!(tx.wakes(), 1);
        assert_eq!(rx.try_recv(), Ok(9));
    }

    #[test]
    fn producer_drop_wakes_and_refuses_future_parks() {
        let (tx, mut rx) = handoff::<u32>(4);
        assert!(rx.prepare_park());
        drop(tx);
        assert!(rx.woken(), "producer drop must wake the parked consumer");
        assert!(!rx.prepare_park(), "parking on a dead channel is refused");
        assert_eq!(rx.try_recv(), Err(RecvError::Disconnected));
    }

    #[test]
    fn unpark_withdraws_the_flag() {
        let (mut tx, mut rx) = handoff::<u32>(4);
        assert!(rx.prepare_park());
        rx.unpark();
        tx.try_send(1).unwrap();
        // The flag was withdrawn before the publish: no wake was needed.
        assert_eq!(tx.wakes(), 0);
        assert_eq!(rx.try_recv(), Ok(1));
    }

    #[test]
    fn cross_thread_park_wake_stress() {
        let (mut tx, mut rx) = handoff::<u64>(8);
        const N: u64 = 5_000;
        let producer = std::thread::spawn(move || {
            let mut i = 0;
            while i < N {
                match tx.try_send(i) {
                    Ok(()) => i += 1,
                    Err(TrySendError::Full(_)) => std::thread::yield_now(),
                    Err(TrySendError::Disconnected(_)) => panic!("consumer died"),
                }
            }
            tx.wakes()
        });
        let mut expect = 0u64;
        while expect < N {
            match rx.try_recv() {
                Ok(v) => {
                    assert_eq!(v, expect);
                    expect += 1;
                }
                Err(RecvError::Empty) => {
                    if rx.prepare_park() {
                        while !rx.woken() {
                            std::thread::yield_now();
                        }
                    }
                }
                Err(RecvError::Disconnected) => panic!("producer died early"),
            }
        }
        let wakes = producer.join().unwrap();
        assert!(wakes <= N, "at most one wake per publication");
    }
}
