//! Full-system parameter set.

use dcuda_des::SimDuration;
use dcuda_device::{DeviceSpec, LaunchConfig};
use dcuda_fabric::{NetworkSpec, PcieSpec};

/// Host-runtime cost parameters (the event handler / block manager layer of
/// paper Figure 4, executed by a single worker thread per node).
#[derive(Debug, Clone)]
pub struct HostSpec {
    /// Pipeline latency of one block-manager action (process a command,
    /// handle a completion, post a receive).
    pub block_manager_cost: SimDuration,
    /// Pipeline latency of one event-handler dispatch (route an incoming
    /// message to the right block manager).
    pub dispatch_cost: SimDuration,
    /// Occupancy of the node's single worker thread per action — the
    /// *throughput* limit of the host runtime, far below the end-to-end
    /// action latency (the worker pipelines across block managers; paper
    /// §III-C optimizes for throughput per Little's law).
    pub worker_gap: SimDuration,
    /// Mean delay before the host worker notices newly arrived queue entries
    /// (progress-loop granularity; the worker polls mapped device memory).
    pub poll_delay: SimDuration,
    /// Size of the meta-information tuple shipped per remote access (data
    /// pointer, size, target rank/window/offset, tag, flush id — paper §III-B).
    pub meta_bytes: u64,
}

impl HostSpec {
    /// Defaults calibrated so the end-to-end notified-put pipeline matches
    /// the paper's measured latencies (7.8 µs shared / 19.4 µs distributed —
    /// see the calibration test in `dcuda-apps`).
    pub fn greina() -> Self {
        HostSpec {
            block_manager_cost: SimDuration::from_nanos(2_800),
            dispatch_cost: SimDuration::from_nanos(1_200),
            worker_gap: SimDuration::from_nanos(100),
            poll_delay: SimDuration::from_nanos(1_500),
            meta_bytes: 48,
        }
    }
}

impl Default for HostSpec {
    fn default() -> Self {
        Self::greina()
    }
}

/// Every hardware and runtime parameter of the simulated cluster.
#[derive(Debug, Clone, Default)]
pub struct SystemSpec {
    /// Per-node GPU parameters.
    pub device: DeviceSpec,
    /// Interconnect parameters.
    pub network: NetworkSpec,
    /// Host–device link parameters.
    pub pcie: PcieSpec,
    /// Host runtime parameters.
    pub host: HostSpec,
}

impl SystemSpec {
    /// The Greina testbed (paper §IV-A): K80 devices, 4x EDR InfiniBand.
    pub fn greina() -> Self {
        SystemSpec {
            device: DeviceSpec::k80(),
            network: NetworkSpec::greina(),
            pcie: PcieSpec::greina(),
            host: HostSpec::greina(),
        }
    }

    /// The paper's launch configuration (208 blocks × 128 threads, 26
    /// registers).
    pub fn paper_launch(&self) -> LaunchConfig {
        LaunchConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greina_spec_is_consistent() {
        let s = SystemSpec::greina();
        assert_eq!(s.device.max_resident_blocks(), 208);
        assert!(s.host.block_manager_cost > SimDuration::ZERO);
        assert!(s.host.meta_bytes > 0);
    }
}
