//! Fully connected cluster fabric with NIC egress serialization.
//!
//! The model follows LogGP: a message submitted at `t` occupies the sender's
//! NIC for `overhead + bytes / bandwidth` (serialization; the "g·k" term) and
//! is delivered `latency` after serialization completes. Concurrent messages
//! from one node share its NIC FIFO, which is what produces bandwidth
//! saturation and message-rate limits. Ingress contention is not modeled
//! (egress-only LogGP); the evaluation workloads are halo exchanges and tree
//! collectives where egress is the bottleneck.

use crate::spec::NetworkSpec;
use dcuda_des::stats::Counter;
use dcuda_des::{FifoResource, SimDuration, SimTime};

/// Index of a cluster node (one host + one device per node).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Which path a device-buffer transfer takes (paper §IV-C).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TransferPath {
    /// GPUDirect device-to-device: lower bandwidth, no staging latency.
    DeviceDirect,
    /// Staged through pinned host memory: higher bandwidth, extra latency.
    HostStaged,
    /// Payload already lives in host memory (MPI control messages).
    HostToHost,
    /// Same-node loopback (no NIC involvement).
    Loopback,
}

impl TransferPath {
    /// Short static label (trace/diagnostic output).
    pub fn label(self) -> &'static str {
        match self {
            TransferPath::DeviceDirect => "device-direct",
            TransferPath::HostStaged => "host-staged",
            TransferPath::HostToHost => "host-to-host",
            TransferPath::Loopback => "loopback",
        }
    }
}

/// Lifecycle record of one injected message (only collected while the
/// network log is enabled).
#[derive(Clone, Copy, Debug)]
pub struct MsgRecord {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Payload size.
    pub bytes: u64,
    /// Transfer path taken.
    pub path: TransferPath,
    /// Instant the message was handed to the NIC.
    pub inject: SimTime,
    /// Instant the NIC began serializing it (= `inject` when the NIC was
    /// idle; later under egress contention).
    pub egress_start: SimTime,
    /// Instant the sender's NIC released it.
    pub egress_free: SimTime,
    /// Instant it landed at the destination.
    pub arrival: SimTime,
}

/// Timing outcome of injecting one message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Delivery {
    /// Instant the sender's NIC releases the message (send buffer reusable —
    /// what MPI request completion means for the sender).
    pub egress_free: SimTime,
    /// Instant the payload lands at the destination.
    pub arrival: SimTime,
}

/// Per-node NIC state.
struct Nic {
    egress: FifoResource,
    bytes_sent: u64,
}

/// The cluster interconnect.
pub struct Network {
    spec: NetworkSpec,
    nics: Vec<Nic>,
    /// Total messages injected.
    pub messages: Counter,
    /// Messages that took the host-staged path.
    pub staged_messages: Counter,
    /// Message lifecycle log; `None` (the default) records nothing, so the
    /// hook in [`send`](Self::send) costs one branch.
    log: Option<Vec<MsgRecord>>,
}

impl Network {
    /// Create a fabric connecting `nodes` nodes.
    pub fn new(spec: NetworkSpec, nodes: usize) -> Self {
        Network {
            nics: (0..nodes)
                .map(|_| Nic {
                    egress: FifoResource::new(),
                    bytes_sent: 0,
                })
                .collect(),
            spec,
            messages: Counter::default(),
            staged_messages: Counter::default(),
            log: None,
        }
    }

    /// Start collecting per-message lifecycle records.
    pub fn enable_log(&mut self) {
        self.log.get_or_insert_with(Vec::new);
    }

    /// Drain the collected lifecycle records (empty if logging was never
    /// enabled). Logging stays enabled.
    pub fn take_log(&mut self) -> Vec<MsgRecord> {
        self.log.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nics.len()
    }

    /// The fabric parameters.
    pub fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    /// Decide the path for a device-resident payload of `bytes` between two
    /// nodes, applying the host-staging policy.
    pub fn device_path(&self, src: NodeId, dst: NodeId, bytes: u64) -> TransferPath {
        if src == dst {
            TransferPath::Loopback
        } else if bytes >= self.spec.stage_threshold {
            TransferPath::HostStaged
        } else {
            TransferPath::DeviceDirect
        }
    }

    /// Inject a message and return its timing.
    ///
    /// `path` selects bandwidth and extra latency; use
    /// [`device_path`](Self::device_path) for device payloads and
    /// [`TransferPath::HostToHost`] for control messages.
    ///
    /// # Panics
    /// Panics if `src`/`dst` are out of range, or if `path` is
    /// [`TransferPath::Loopback`] while `src != dst`.
    pub fn send(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        path: TransferPath,
    ) -> Delivery {
        self.messages.inc();
        if path == TransferPath::Loopback || src == dst {
            assert!(
                src == dst,
                "loopback path requires src == dst (got {src:?} -> {dst:?})"
            );
            let d = Delivery {
                egress_free: now,
                arrival: now + self.spec.loopback_latency,
            };
            if let Some(log) = &mut self.log {
                log.push(MsgRecord {
                    src,
                    dst,
                    bytes,
                    path: TransferPath::Loopback,
                    inject: now,
                    egress_start: now,
                    egress_free: d.egress_free,
                    arrival: d.arrival,
                });
            }
            return d;
        }
        assert!(src.index() < self.nics.len(), "src node out of range");
        assert!(dst.index() < self.nics.len(), "dst node out of range");

        let (bandwidth, extra_latency) = match path {
            TransferPath::DeviceDirect => (self.spec.device_bandwidth, SimDuration::ZERO),
            TransferPath::HostStaged => {
                self.staged_messages.inc();
                (self.spec.host_bandwidth, self.spec.stage_latency)
            }
            TransferPath::HostToHost => (self.spec.host_bandwidth, SimDuration::ZERO),
            TransferPath::Loopback => unreachable!(),
        };

        let serialization =
            self.spec.overhead + SimDuration::from_secs_f64(bytes as f64 / bandwidth);
        let nic = &mut self.nics[src.index()];
        nic.bytes_sent += bytes;
        let (_, egress_done) = nic.egress.submit(now, serialization);
        let d = Delivery {
            egress_free: egress_done,
            arrival: egress_done + self.spec.latency + extra_latency,
        };
        if let Some(log) = &mut self.log {
            log.push(MsgRecord {
                src,
                dst,
                bytes,
                path,
                inject: now,
                egress_start: SimTime::from_ps(
                    egress_done.as_ps().saturating_sub(serialization.as_ps()),
                ),
                egress_free: d.egress_free,
                arrival: d.arrival,
            });
        }
        d
    }

    /// Total bytes injected by `node`.
    pub fn bytes_sent(&self, node: NodeId) -> u64 {
        self.nics[node.index()].bytes_sent
    }

    /// Cumulative busy time of a node's egress NIC (for utilization checks).
    pub fn nic_busy(&self, node: NodeId) -> SimDuration {
        self.nics[node.index()].egress.busy_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(nodes: usize) -> Network {
        Network::new(NetworkSpec::greina(), nodes)
    }

    #[test]
    fn small_message_is_latency_bound() {
        let mut n = net(2);
        let d = n.send(
            SimTime::ZERO,
            NodeId(0),
            NodeId(1),
            0,
            TransferPath::DeviceDirect,
        );
        // overhead + latency = 0.3 + 1.7 us
        assert_eq!(d.arrival, SimTime::ZERO + SimDuration::from_micros(2));
        // The sender is free as soon as serialization (overhead) ends.
        assert_eq!(d.egress_free, SimTime::ZERO + SimDuration::from_nanos(300));
    }

    #[test]
    fn large_direct_message_is_bandwidth_bound() {
        let mut n = net(2);
        let bytes = 6_000_000; // 1 ms at 6 GB/s
        let d = n.send(
            SimTime::ZERO,
            NodeId(0),
            NodeId(1),
            bytes,
            TransferPath::DeviceDirect,
        );
        let expect_us = 1000.0 + 2.0;
        let t = d.arrival;
        assert!((t.as_micros_f64() - expect_us).abs() < 0.01, "got {t}");
    }

    #[test]
    fn staging_policy_thresholds() {
        let n = net(2);
        assert_eq!(
            n.device_path(NodeId(0), NodeId(1), 1024),
            TransferPath::DeviceDirect
        );
        assert_eq!(
            n.device_path(NodeId(0), NodeId(1), 16 * 1024),
            TransferPath::DeviceDirect,
            "paper: 16 kB halos go direct under the default config"
        );
        assert_eq!(
            n.device_path(NodeId(0), NodeId(1), 64 * 1024),
            TransferPath::HostStaged
        );
        assert_eq!(
            n.device_path(NodeId(0), NodeId(0), 1 << 30),
            TransferPath::Loopback
        );
    }

    #[test]
    fn staged_path_wins_for_large_messages() {
        // The whole point of the OpenMPI policy: above the threshold the
        // staged path must deliver earlier despite its extra latency.
        let bytes = 1 << 20; // 1 MB
        let mut a = net(2);
        let direct = a
            .send(
                SimTime::ZERO,
                NodeId(0),
                NodeId(1),
                bytes,
                TransferPath::DeviceDirect,
            )
            .arrival;
        let mut b = net(2);
        let staged = b
            .send(
                SimTime::ZERO,
                NodeId(0),
                NodeId(1),
                bytes,
                TransferPath::HostStaged,
            )
            .arrival;
        assert!(staged < direct, "staged {staged} vs direct {direct}");
        assert_eq!(b.staged_messages.get(), 1);
    }

    #[test]
    fn nic_serializes_concurrent_sends() {
        let mut n = net(3);
        let bytes = 600_000; // 100 us each at 6 GB/s
        let t1 = n
            .send(
                SimTime::ZERO,
                NodeId(0),
                NodeId(1),
                bytes,
                TransferPath::DeviceDirect,
            )
            .arrival;
        let t2 = n
            .send(
                SimTime::ZERO,
                NodeId(0),
                NodeId(2),
                bytes,
                TransferPath::DeviceDirect,
            )
            .arrival;
        // Second message waits for the first one's serialization.
        assert!(t2.since(t1) >= SimDuration::from_micros(100));
    }

    #[test]
    fn distinct_senders_do_not_contend() {
        let mut n = net(3);
        let bytes = 600_000;
        let t1 = n.send(
            SimTime::ZERO,
            NodeId(0),
            NodeId(2),
            bytes,
            TransferPath::DeviceDirect,
        );
        let t2 = n.send(
            SimTime::ZERO,
            NodeId(1),
            NodeId(2),
            bytes,
            TransferPath::DeviceDirect,
        );
        assert_eq!(t1.arrival, t2.arrival);
    }

    #[test]
    fn loopback_is_fast() {
        let mut n = net(2);
        let d = n.send(
            SimTime::ZERO,
            NodeId(1),
            NodeId(1),
            1 << 20,
            TransferPath::Loopback,
        );
        assert_eq!(
            d.arrival,
            SimTime::ZERO + NetworkSpec::greina().loopback_latency
        );
        assert_eq!(d.egress_free, SimTime::ZERO);
    }

    #[test]
    fn byte_accounting() {
        let mut n = net(2);
        n.send(
            SimTime::ZERO,
            NodeId(0),
            NodeId(1),
            123,
            TransferPath::DeviceDirect,
        );
        n.send(
            SimTime::ZERO,
            NodeId(0),
            NodeId(1),
            77,
            TransferPath::HostToHost,
        );
        assert_eq!(n.bytes_sent(NodeId(0)), 200);
        assert_eq!(n.messages.get(), 2);
    }
}
