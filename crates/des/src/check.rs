//! A minimal, dependency-free property-testing harness.
//!
//! The workspace must build and test in fully offline environments, so the
//! property tests that used to ride on `proptest` run on this harness
//! instead: deterministic [`SplitMix64`] case generation, per-case seeds
//! derived from a base seed, and failure reports that print the exact seed
//! needed to replay a failing case. There is no shrinking — generators are
//! written small-biased instead (sizes drawn from modest ranges), which in
//! practice keeps counterexamples readable.
//!
//! ```
//! use dcuda_des::check::{forall, Gen};
//!
//! forall("addition_commutes", 256, |g: &mut Gen| {
//!     let (a, b) = (g.u32_below(1000), g.u32_below(1000));
//!     assert_eq!(a + b, b + a);
//! });
//! ```
//!
//! Override the base seed with `DCUDA_CHECK_SEED=<u64>` to replay a failure
//! or to widen coverage in long-running CI jobs.

use crate::rng::SplitMix64;

/// Default base seed; chosen once and fixed so CI runs are reproducible.
const DEFAULT_BASE_SEED: u64 = 0x005E_EDD0_DCDA_2016;

/// Per-case random value source handed to properties.
pub struct Gen {
    rng: SplitMix64,
}

impl Gen {
    /// Seed a generator directly (for replaying a single reported case).
    pub fn from_seed(seed: u64) -> Self {
        Gen {
            rng: SplitMix64::new(seed),
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform `u64` in `[0, bound)`.
    #[inline]
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        self.rng.next_below(bound)
    }

    /// Uniform `u32` in `[0, bound)`.
    #[inline]
    pub fn u32_below(&mut self, bound: u32) -> u32 {
        self.rng.next_below(bound as u64) as u32
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn usize_below(&mut self, bound: usize) -> usize {
        self.rng.next_below(bound as u64) as usize
    }

    /// Uniform `usize` in `[lo, hi)`.
    #[inline]
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "usize_in: empty range {lo}..{hi}");
        lo + self.usize_below(hi - lo)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.rng.next_f64() * (hi - lo)
    }

    /// Fair coin.
    #[inline]
    pub fn bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// A vector of random length in `[0, max_len]`, elementwise generated.
    pub fn vec_with<T>(&mut self, max_len: usize, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let len = self.usize_below(max_len + 1);
        (0..len).map(|_| f(self)).collect()
    }

    /// Pick one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        assert!(!options.is_empty(), "choose: empty options");
        &options[self.usize_below(options.len())]
    }
}

fn base_seed() -> u64 {
    match std::env::var("DCUDA_CHECK_SEED") {
        Ok(s) => s
            .trim()
            .parse::<u64>()
            .or_else(|_| u64::from_str_radix(s.trim().trim_start_matches("0x"), 16))
            .unwrap_or_else(|_| panic!("DCUDA_CHECK_SEED must be a u64, got {s:?}")),
        Err(_) => DEFAULT_BASE_SEED,
    }
}

/// Run `prop` against `cases` independently seeded generators.
///
/// On a failing case the panic is re-raised after printing the property
/// name, the case number, and the per-case seed (replayable via
/// [`Gen::from_seed`] or by exporting `DCUDA_CHECK_SEED` with the base
/// seed).
pub fn forall(name: &str, cases: u64, mut prop: impl FnMut(&mut Gen)) {
    let base = base_seed();
    // Independent per-case streams: the SplitMix64 increment guarantees
    // distinct, well-mixed states for consecutive case indices.
    let mut seeder = SplitMix64::new(base);
    for case in 0..cases {
        let seed = seeder.next_u64();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            prop(&mut Gen::from_seed(seed))
        }));
        if let Err(payload) = outcome {
            eprintln!(
                "property {name:?} failed at case {case}/{cases} \
                 (case seed {seed:#018x}, base seed {base:#018x}); \
                 replay with Gen::from_seed({seed:#x}) or DCUDA_CHECK_SEED={base}"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Is the full (CI-scale) test tier enabled via `DCUDA_FULL_TESTS=1`?
///
/// The single gate every tiered test in the workspace shares. When the full
/// tier is off, a visible SKIP line names the cell that ran reduced — a
/// locally-skipped configuration should never look like a silent pass.
/// `cell` names the scaled-down part (a world size, a plane, a seed sweep),
/// not the whole test.
pub fn full_tier(cell: &str) -> bool {
    let full = std::env::var("DCUDA_FULL_TESTS").ok().as_deref() == Some("1");
    if !full {
        eprintln!("SKIP (quick tier) {cell}: set DCUDA_FULL_TESTS=1 to run");
    }
    full
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        forall("collect", 5, |g| first.push(g.u64()));
        let mut second = Vec::new();
        forall("collect", 5, |g| second.push(g.u64()));
        assert_eq!(first, second);
        assert_eq!(first.len(), 5);
    }

    #[test]
    fn ranges_respected() {
        forall("ranges", 200, |g| {
            assert!(g.u32_below(7) < 7);
            let x = g.usize_in(3, 9);
            assert!((3..9).contains(&x));
            let f = g.f64_in(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        });
    }

    #[test]
    fn failure_reports_and_propagates() {
        let caught = std::panic::catch_unwind(|| {
            forall("always_fails", 10, |_| panic!("expected failure"));
        });
        assert!(caught.is_err());
    }

    #[test]
    fn vec_with_bounds_length() {
        forall("vec_len", 100, |g| {
            let v = g.vec_with(17, |g| g.bool());
            assert!(v.len() <= 17);
        });
    }
}
