//! Model-checker regression suite: the corpus at `Quick` effort, plus
//! replay/shrink round-trips on the failures the checker must find.

use dcuda_verify::suite::{mk_handoff, mk_lost_wakeup, mutation_model, run_suite, SuiteEffort};
use dcuda_verify::{FailureKind, Model, Outcome, Schedule};

/// Every corpus entry must deliver its expected verdict: protocol programs
/// pass, the seeded mutation and the lost-wakeup demo fail with the right
/// failure kind.
#[test]
fn corpus_verdicts() {
    for r in run_suite(SuiteEffort::Quick) {
        assert!(
            r.ok(),
            "corpus entry {} delivered the wrong verdict: {:?}",
            r.name,
            r.outcome
        );
    }
}

/// The exhaustive cap-2 handoff — the acceptance-critical entry — must
/// complete its branch space, not merely hit the execution cap.
#[test]
fn exhaustive_handoff_completes() {
    let m = Model {
        preemption_bound: usize::MAX,
        max_executions: 150_000,
        ..Model::default()
    };
    match m.check(mk_handoff(2, 1)) {
        Outcome::Pass {
            truncated,
            executions,
        } => {
            assert!(!truncated, "exhaustive search hit the execution cap");
            assert!(executions > 100, "suspiciously small branch space");
        }
        Outcome::Fail(f) => panic!("exhaustive handoff failed: {f}"),
    }
}

/// The seeded Release→Relaxed mutation must surface as a data race, and the
/// reported schedule must reproduce the same failure under `replay`.
#[test]
fn mutation_caught_and_replays() {
    let m = mutation_model();
    let failure = m
        .check(mk_handoff(2, 1))
        .failure()
        .expect("mutation must be caught")
        .clone();
    assert_eq!(failure.kind, FailureKind::DataRace);

    let replayed = m.replay(mk_handoff(2, 1), &failure.schedule);
    let rf = replayed
        .failure()
        .expect("replay must reproduce the failure");
    assert_eq!(rf.kind, FailureKind::DataRace);
    assert_eq!(rf.message, failure.message);
}

/// Shrinking a failing schedule keeps the failure kind, never grows the
/// schedule, and the shrunk schedule still replays to the same failure.
#[test]
fn shrink_preserves_failure() {
    let m = mutation_model();
    let failure = m
        .check(mk_handoff(2, 1))
        .failure()
        .expect("mutation must be caught")
        .clone();
    let shrunk = m.shrink(mk_handoff(2, 1), &failure);
    assert_eq!(shrunk.kind, failure.kind);
    assert!(
        shrunk.schedule.0.len() <= failure.schedule.0.len(),
        "shrink grew the schedule"
    );
    let rf = m.replay(mk_handoff(2, 1), &shrunk.schedule);
    assert_eq!(
        rf.failure().expect("shrunk schedule must still fail").kind,
        failure.kind
    );
}

/// Seeded random exploration finds the mutation race too (any seed works —
/// the race is dense), and its failure carries a replayable schedule.
#[test]
fn random_exploration_finds_mutation() {
    let m = mutation_model();
    let outcome = m.explore_random(mk_handoff(2, 1), 0x5eed, 5_000);
    let f = outcome
        .failure()
        .expect("random exploration must find the dense race");
    assert_eq!(f.kind, FailureKind::DataRace);
    assert!(m.replay(mk_handoff(2, 1), &f.schedule).failure().is_some());
}

/// Livelock detection: the lost-wakeup program must report `Livelock`, not
/// hang the checker.
#[test]
fn lost_wakeup_reported_as_livelock() {
    let m = Model {
        preemption_bound: 1,
        max_steps: 2_000,
        ..Model::default()
    };
    let f = m
        .check(mk_lost_wakeup())
        .failure()
        .expect("lost wakeup must be detected")
        .clone();
    assert_eq!(f.kind, FailureKind::Livelock);
}

/// `Schedule` Display/parse round-trip — the replay recipe in
/// EXPERIMENTS.md depends on it.
#[test]
fn schedule_display_parse_roundtrip() {
    let s = Schedule(vec![0, 3, 1, 0, 2]);
    assert_eq!(Schedule::parse(&s.to_string()), Some(s));
    assert_eq!(Schedule::parse(""), Some(Schedule(Vec::new())));
    assert_eq!(Schedule::parse("1, 2, 3"), Some(Schedule(vec![1, 2, 3])));
    assert_eq!(Schedule::parse("1,x"), None);
}

/// A panic inside a model thread must surface as a `Panic` failure with the
/// panic message attached, not abort the test process.
#[test]
fn program_panic_becomes_failure() {
    let m = Model::default();
    let outcome = m.check(|| vec![Box::new(|| panic!("boom from model thread")) as _]);
    let f = outcome.failure().expect("panic must fail the execution");
    assert_eq!(f.kind, FailureKind::Panic);
    assert!(
        f.message.contains("boom from model thread"),
        "{}",
        f.message
    );
}
