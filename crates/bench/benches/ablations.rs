//! Ablation benches for the design choices DESIGN.md calls out:
//! occupancy (Little's law), host-staging threshold, and notification
//! matching cost.

use dcuda_bench::harness::bench;
use dcuda_bench::{ablation_match_cost, ablation_occupancy, ablation_staging};
use dcuda_core::SystemSpec;

fn main() {
    let spec = SystemSpec::greina();
    println!("Ablation: blocks/SM vs overlap efficiency (Little's law):");
    for (bps, eff) in ablation_occupancy(&spec) {
        println!("  blocks/SM {bps:>3}: efficiency {eff:.2}");
    }
    println!("Ablation: staging threshold vs 1 MiB put bandwidth:");
    for (thr, bw) in ablation_staging(&spec) {
        println!("  threshold {thr:>20}: {bw:.0} MB/s");
    }
    println!("Ablation: notification match cost vs Newton full time:");
    for (us, ms) in ablation_match_cost(&spec) {
        println!("  {us:.1} us/entry: {ms:.3} ms");
    }
    bench("ablations/occupancy_sweep", || ablation_occupancy(&spec));
}
