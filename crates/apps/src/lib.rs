//! Mini-applications and microbenchmarks from the dCUDA evaluation
//! (paper §IV).
//!
//! Every workload exists in two variants sharing one numerics core:
//!
//! * a **dCUDA** variant — rank kernels on [`dcuda_core::ClusterSim`], with
//!   device-side notified remote memory access and automatic overlap;
//! * an **MPI-CUDA** variant — host-driven kernel/exchange phases on
//!   [`dcuda_core::baseline::MpiCudaSim`], the traditional model the paper
//!   compares against.
//!
//! | Module | Paper experiment |
//! |---|---|
//! | [`micro::pingpong`] | Fig. 6 — put bandwidth, shared & distributed |
//! | [`micro::overlap`] | Fig. 7/8 — overlap for compute- and memory-bound work |
//! | [`stencil`] | Fig. 10 — COSMO horizontal-diffusion weak scaling |
//! | [`particles`] | Fig. 9 — particle simulation weak scaling |
//! | [`spmv`] | Fig. 11 — sparse matrix-vector weak scaling |

#![warn(missing_docs)]

pub mod micro;
pub mod particles;
pub mod spmv;
pub mod stencil;
