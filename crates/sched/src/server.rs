//! The scheduler control plane: length-prefixed verbs on the launch codec.
//!
//! One [`serve`]/[`spawn_server`] instance listens on TCP and answers
//! single-request connections: each connection carries one request blob
//! (`dcuda_net::launch::write_blob` framing, the same codec the remote
//! launch plane uses) and gets one reply blob. Verbs:
//!
//! | request               | reply                                         |
//! |-----------------------|-----------------------------------------------|
//! | `submit <spec kv>`    | `ok id=<n>` or `err <reason>`                 |
//! | `status <id>`         | `ok state=queued position=<p>` / `running` / a full result line |
//! | `wait <id>`           | blocks; `ok <result kv>`                      |
//! | `cancel <id>`         | `ok cancel=requested` or `ok cancel=already-done:<end>` |
//! | `stats`               | `ok <stats kv>`                               |
//! | `drain`               | blocks until idle; `ok <stats kv>`            |
//! | `shutdown`            | `ok bye` (drains first, then stops accepting) |
//!
//! Replies are `key=value` text; the `error=` field, when present, is
//! always last and its value runs to the end of the line (runtime error
//! strings contain spaces). [`CtrlClient`] wraps the verbs with typed
//! parsing so `dcuda-launch submit` and the tcp-plane conformance tests
//! share one client.

use crate::jobstate::{CancelVerdict, JobEnd};
use crate::scheduler::{JobCounters, JobResult, JobStatus, Scheduler};
use crate::{JobSpec, SchedError};
use dcuda_core::SchedStats;
use dcuda_net::launch::{ctrl_roundtrip, read_blob, write_blob};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Render a result as the control plane's reply line.
fn result_kv(r: &JobResult) -> String {
    let mut line = format!(
        "state=done id={} name={} end={} checksum={:016x} puts={} notifications={} matched={} \
         barriers={} retries={} dups={} wait_ms={:.3} run_ms={:.3}",
        r.id,
        r.name,
        r.end.name(),
        r.checksum,
        r.counters.puts,
        r.counters.notifications,
        r.counters.matched,
        r.counters.barriers,
        r.counters.retries,
        r.counters.dups_suppressed,
        r.wait_ms,
        r.run_ms,
    );
    if let Some(e) = &r.error {
        // Always last: the error display contains spaces.
        line.push_str(&format!(" error={e}"));
    }
    line
}

/// Parse a `result_kv` line back into a [`JobResult`] (client side). The
/// typed `RtError` does not survive the wire; it comes back as
/// [`SchedError::Control`] text in the `error` display slot.
fn parse_result_kv(line: &str) -> Result<JobResult, String> {
    let mut r = JobResult {
        id: 0,
        name: String::new(),
        end: JobEnd::Failed,
        checksum: 0,
        counters: JobCounters::default(),
        error: None,
        wait_ms: 0.0,
        run_ms: 0.0,
    };
    let mut rest = line.trim();
    let mut err_text: Option<String> = None;
    if let Some(at) = rest.find(" error=") {
        err_text = Some(rest[at + " error=".len()..].to_string());
        rest = &rest[..at];
    }
    for tok in rest.split_whitespace() {
        let (k, v) = tok
            .split_once('=')
            .ok_or_else(|| format!("bad token {tok:?}"))?;
        let num = |v: &str| {
            v.parse::<u64>()
                .map_err(|_| format!("bad number {v:?} for {k}"))
        };
        let flt = |v: &str| {
            v.parse::<f64>()
                .map_err(|_| format!("bad float {v:?} for {k}"))
        };
        match k {
            "state" => {}
            "id" => r.id = num(v)?,
            "name" => r.name = v.to_string(),
            "end" => {
                r.end = match v {
                    "completed" => JobEnd::Completed,
                    "failed" => JobEnd::Failed,
                    "cancelled" => JobEnd::Cancelled,
                    other => return Err(format!("unknown end {other:?}")),
                }
            }
            "checksum" => {
                r.checksum =
                    u64::from_str_radix(v, 16).map_err(|_| format!("bad checksum {v:?}"))?
            }
            "puts" => r.counters.puts = num(v)?,
            "notifications" => r.counters.notifications = num(v)?,
            "matched" => r.counters.matched = num(v)?,
            "barriers" => r.counters.barriers = num(v)?,
            "retries" => r.counters.retries = num(v)?,
            "dups" => r.counters.dups_suppressed = num(v)?,
            "wait_ms" => r.wait_ms = flt(v)?,
            "run_ms" => r.run_ms = flt(v)?,
            other => return Err(format!("unknown result key {other:?}")),
        }
    }
    if let Some(text) = err_text {
        // The wire flattens the typed error; keep its display for reports.
        r.error = Some(dcuda_rt::RtError::Transport { detail: text });
    }
    Ok(r)
}

/// Render aggregate stats as a reply line.
fn stats_kv(s: &SchedStats) -> String {
    format!(
        "submitted={} admitted={} completed={} failed={} cancelled={} rejected={} \
         queue_depth={} peak_queue_depth={} running={} slots_total={} slots_busy={} \
         peak_slots_busy={} busy_slot_nanos={}",
        s.submitted,
        s.admitted,
        s.completed,
        s.failed,
        s.cancelled,
        s.rejected,
        s.queue_depth,
        s.peak_queue_depth,
        s.running,
        s.slots_total,
        s.slots_busy,
        s.peak_slots_busy,
        s.busy_slot_nanos,
    )
}

/// Parse a `stats_kv` line (client side).
fn parse_stats_kv(line: &str) -> Result<SchedStats, String> {
    let mut s = SchedStats::default();
    for tok in line.split_whitespace() {
        let (k, v) = tok
            .split_once('=')
            .ok_or_else(|| format!("bad token {tok:?}"))?;
        let num = |v: &str| {
            v.parse::<u64>()
                .map_err(|_| format!("bad number {v:?} for {k}"))
        };
        match k {
            "submitted" => s.submitted = num(v)?,
            "admitted" => s.admitted = num(v)?,
            "completed" => s.completed = num(v)?,
            "failed" => s.failed = num(v)?,
            "cancelled" => s.cancelled = num(v)?,
            "rejected" => s.rejected = num(v)?,
            "queue_depth" => s.queue_depth = num(v)?,
            "peak_queue_depth" => s.peak_queue_depth = num(v)?,
            "running" => s.running = num(v)?,
            "slots_total" => s.slots_total = num(v)?,
            "slots_busy" => s.slots_busy = num(v)?,
            "peak_slots_busy" => s.peak_slots_busy = num(v)?,
            "busy_slot_nanos" => {
                s.busy_slot_nanos = v
                    .parse::<u128>()
                    .map_err(|_| format!("bad number {v:?} for {k}"))?
            }
            other => return Err(format!("unknown stats key {other:?}")),
        }
    }
    Ok(s)
}

/// Answer one request line against the scheduler. `stop` is raised by
/// `shutdown`.
fn answer(sched: &Scheduler, request: &str, stop: &AtomicBool) -> String {
    let request = request.trim();
    let (verb, rest) = request.split_once(' ').unwrap_or((request, ""));
    let parse_id = |rest: &str| -> Result<u64, String> {
        rest.trim()
            .parse::<u64>()
            .map_err(|_| format!("bad job id {rest:?}"))
    };
    match verb {
        "submit" => match JobSpec::parse_kv(rest) {
            Ok(spec) => match sched.submit(spec) {
                Ok(id) => format!("ok id={id}"),
                Err(e) => format!("err {e}"),
            },
            Err(e) => format!("err invalid job spec: {e}"),
        },
        "status" => match parse_id(rest) {
            Ok(id) => match sched.status(id) {
                Ok(JobStatus::Queued { position }) => {
                    format!("ok state=queued position={position}")
                }
                Ok(JobStatus::Running) => "ok state=running".into(),
                Ok(JobStatus::Done(r)) => format!("ok {}", result_kv(&r)),
                Err(e) => format!("err {e}"),
            },
            Err(e) => format!("err {e}"),
        },
        "wait" => match parse_id(rest) {
            Ok(id) => match sched.wait(id) {
                Ok(r) => format!("ok {}", result_kv(&r)),
                Err(e) => format!("err {e}"),
            },
            Err(e) => format!("err {e}"),
        },
        "cancel" => match parse_id(rest) {
            Ok(id) => match sched.cancel(id) {
                Ok(CancelVerdict::Requested) => "ok cancel=requested".into(),
                Ok(CancelVerdict::AlreadyDone(end)) => {
                    format!("ok cancel=already-done:{}", end.name())
                }
                Err(e) => format!("err {e}"),
            },
            Err(e) => format!("err {e}"),
        },
        "stats" => format!("ok {}", stats_kv(&sched.stats())),
        "drain" => format!("ok {}", stats_kv(&sched.drain())),
        "shutdown" => {
            sched.drain();
            stop.store(true, Ordering::Release);
            "ok bye".into()
        }
        other => format!("err unknown verb {other:?}"),
    }
}

fn handle_conn(sched: &Scheduler, mut stream: TcpStream, stop: &AtomicBool) {
    if let Ok(request) = read_blob(&mut stream) {
        let reply = answer(sched, &request, stop);
        let _ = write_blob(&mut stream, &reply);
    }
}

/// A running control-plane server. Dropping the handle does not stop the
/// server; send `shutdown` (or call [`ServerHandle::shutdown`]).
pub struct ServerHandle {
    addr: String,
    join: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound `host:port` to hand to clients.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// A client for this server.
    pub fn client(&self) -> CtrlClient {
        CtrlClient::new(self.addr.clone())
    }

    /// Drain the scheduler, stop the accept loop and join it.
    pub fn shutdown(mut self) -> Result<(), SchedError> {
        self.client().shutdown()?;
        if let Some(join) = self.join.take() {
            join.join()
                .map_err(|_| SchedError::Control("server accept loop panicked".into()))?;
        }
        Ok(())
    }

    /// Block until the accept loop exits on its own (a client sent
    /// `shutdown`). The foreground `dcuda-launch sched serve` mode.
    pub fn join(mut self) -> Result<(), SchedError> {
        if let Some(join) = self.join.take() {
            join.join()
                .map_err(|_| SchedError::Control("server accept loop panicked".into()))?;
        }
        Ok(())
    }
}

/// Serve the scheduler's control plane on an already-bound listener,
/// blocking until a `shutdown` verb arrives. Each connection is answered on
/// its own thread so a blocking `wait`/`drain` never stalls the accept
/// loop.
pub fn serve(sched: Scheduler, listener: TcpListener) -> std::io::Result<()> {
    let stop = Arc::new(AtomicBool::new(false));
    let addr = listener.local_addr()?;
    for stream in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let sched = sched.clone();
        let stop = stop.clone();
        std::thread::Builder::new()
            .name("dcuda-sched-conn".into())
            .spawn(move || {
                handle_conn(&sched, stream, &stop);
                if stop.load(Ordering::Acquire) {
                    // Unblock the accept loop so it observes the stop flag.
                    let _ = TcpStream::connect(addr);
                }
            })?;
    }
    Ok(())
}

/// Bind `bind` (e.g. `127.0.0.1:0`) and serve on a background thread.
pub fn spawn_server(sched: Scheduler, bind: &str) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(bind)?;
    let addr = listener.local_addr()?.to_string();
    let join = std::thread::Builder::new()
        .name("dcuda-sched-accept".into())
        .spawn(move || {
            let _ = serve(sched, listener);
        })?;
    Ok(ServerHandle {
        addr,
        join: Some(join),
    })
}

/// Typed client over the control-plane verbs (one connection per request).
#[derive(Debug, Clone)]
pub struct CtrlClient {
    addr: String,
}

impl CtrlClient {
    /// A client for the server at `addr`.
    pub fn new(addr: impl Into<String>) -> CtrlClient {
        CtrlClient { addr: addr.into() }
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn call(&self, request: &str) -> Result<String, SchedError> {
        let reply = ctrl_roundtrip(&self.addr, request)
            .map_err(|e| SchedError::Control(format!("{request:.16}...: {e}")))?;
        if let Some(ok) = reply.strip_prefix("ok") {
            Ok(ok.trim_start().to_string())
        } else if let Some(err) = reply.strip_prefix("err ") {
            Err(SchedError::Control(err.to_string()))
        } else {
            Err(SchedError::Control(format!("malformed reply {reply:?}")))
        }
    }

    /// Submit a job; returns its id.
    pub fn submit(&self, spec: &JobSpec) -> Result<u64, SchedError> {
        let ok = self.call(&format!("submit {}", spec.to_kv()))?;
        ok.strip_prefix("id=")
            .and_then(|v| v.parse::<u64>().ok())
            .ok_or_else(|| SchedError::Control(format!("malformed submit reply {ok:?}")))
    }

    /// Block until the job is terminal; returns its report.
    pub fn wait(&self, id: u64) -> Result<JobResult, SchedError> {
        let ok = self.call(&format!("wait {id}"))?;
        parse_result_kv(&ok).map_err(SchedError::Control)
    }

    /// Where is the job?
    pub fn status(&self, id: u64) -> Result<JobStatus, SchedError> {
        let ok = self.call(&format!("status {id}"))?;
        if let Some(rest) = ok.strip_prefix("state=queued position=") {
            let position = rest
                .trim()
                .parse::<usize>()
                .map_err(|_| SchedError::Control(format!("bad position {rest:?}")))?;
            Ok(JobStatus::Queued { position })
        } else if ok.trim() == "state=running" {
            Ok(JobStatus::Running)
        } else {
            Ok(JobStatus::Done(
                parse_result_kv(&ok).map_err(SchedError::Control)?,
            ))
        }
    }

    /// Request cancellation of a job.
    pub fn cancel(&self, id: u64) -> Result<CancelVerdict, SchedError> {
        let ok = self.call(&format!("cancel {id}"))?;
        match ok.trim() {
            "cancel=requested" => Ok(CancelVerdict::Requested),
            "cancel=already-done:completed" => Ok(CancelVerdict::AlreadyDone(JobEnd::Completed)),
            "cancel=already-done:failed" => Ok(CancelVerdict::AlreadyDone(JobEnd::Failed)),
            "cancel=already-done:cancelled" => Ok(CancelVerdict::AlreadyDone(JobEnd::Cancelled)),
            other => Err(SchedError::Control(format!(
                "malformed cancel reply {other:?}"
            ))),
        }
    }

    /// Aggregate stats snapshot.
    pub fn stats(&self) -> Result<SchedStats, SchedError> {
        let ok = self.call("stats")?;
        parse_stats_kv(&ok).map_err(SchedError::Control)
    }

    /// Drain the scheduler; returns the final stats.
    pub fn drain(&self) -> Result<SchedStats, SchedError> {
        let ok = self.call("drain")?;
        parse_stats_kv(&ok).map_err(SchedError::Control)
    }

    /// Drain and stop the server.
    pub fn shutdown(&self) -> Result<(), SchedError> {
        let ok = self.call("shutdown")?;
        if ok.trim() == "bye" {
            Ok(())
        } else {
            Err(SchedError::Control(format!(
                "malformed shutdown reply {ok:?}"
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JobProgram;

    #[test]
    fn result_kv_round_trips() {
        let r = JobResult {
            id: 7,
            name: "storm-7".into(),
            end: JobEnd::Completed,
            checksum: 0xDEAD_BEEF_0BAD_F00D,
            counters: JobCounters {
                puts: 1,
                notifications: 2,
                matched: 3,
                barriers: 4,
                retries: 5,
                dups_suppressed: 6,
            },
            error: None,
            wait_ms: 1.5,
            run_ms: 2.25,
        };
        let parsed = parse_result_kv(&result_kv(&r)).expect("parses");
        assert_eq!(parsed.id, r.id);
        assert_eq!(parsed.end, r.end);
        assert_eq!(parsed.checksum, r.checksum);
        assert_eq!(parsed.counters, r.counters);
    }

    #[test]
    fn stats_kv_round_trips() {
        let s = SchedStats {
            submitted: 10,
            admitted: 9,
            completed: 7,
            failed: 1,
            cancelled: 1,
            rejected: 1,
            queue_depth: 0,
            peak_queue_depth: 5,
            running: 0,
            slots_total: 16,
            slots_busy: 0,
            peak_slots_busy: 16,
            busy_slot_nanos: 123_456_789_012,
        };
        assert_eq!(parse_stats_kv(&stats_kv(&s)), Ok(s));
    }

    #[test]
    fn unknown_verb_is_typed() {
        let sched = Scheduler::new(1, 2, crate::SchedLimits::default());
        let stop = AtomicBool::new(false);
        assert!(answer(&sched, "frobnicate 1", &stop).starts_with("err unknown verb"));
        let _ = JobProgram::parse("ring");
    }
}
