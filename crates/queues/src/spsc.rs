//! Single-producer single-consumer ring with embedded sequence numbers and
//! credit-based flow control.
//!
//! # Protocol (paper §III-C, "Queue Design")
//!
//! The ring holds `capacity` slots, each tagged with an atomic sequence
//! number. Message `i` (0-based) goes into slot `i % capacity` and is
//! published by storing sequence `i + 1` with release ordering *after* the
//! payload write — mirroring the single PCIe vector transaction that writes
//! entry + sequence number atomically on the real hardware. The consumer
//! recognizes slot validity by comparing the stored sequence against the
//! message index it expects; no head pointer crosses the link.
//!
//! The consumer publishes its progress in a `tail` counter (the number of
//! messages consumed). The producer keeps a local `credits` count,
//! decremented per send; only when it hits zero does the producer read
//! `tail` (the "occasional PCI-Express transaction to update the free
//! counter"). The consumer-side read of each slot is safe because a slot is
//! never rewritten until the consumer has advanced `tail` past it and the
//! producer has observed that.
//!
//! # Memory ordering
//!
//! * producer payload write → `seq.store(Release)` pairs with consumer
//!   `seq.load(Acquire)` → payload read;
//! * consumer payload read → `tail.store(Release)` pairs with producer
//!   `tail.load(Acquire)` → slot reuse.
//!
//! # Platform genericity
//!
//! The ring is generic over [`Platform`], which supplies the atomic counter
//! and payload-cell types. Production code uses the default
//! [`StdPlatform`] (real atomics — identical code to a non-generic ring);
//! `dcuda-verify` instantiates the very same functions over a virtual
//! platform whose atomics are scheduled by a bounded model checker. Use
//! [`channel`] for the standard ring and [`channel_on`] to pick a platform.

use crate::depth::DepthStats;
use crate::plat::{PlatAtomicU64, PlatCell, Platform, StdPlatform};
use std::sync::atomic::Ordering;
use std::sync::Arc;

#[repr(align(64))]
struct CachePadded<T>(T);

struct Slot<T, P: Platform> {
    seq: P::AtomicU64,
    value: P::Cell<T>,
}

struct Ring<T, P: Platform> {
    slots: Box<[Slot<T, P>]>,
    /// Messages consumed, published by the consumer (receiver memory).
    tail: CachePadded<P::AtomicU64>,
    /// Set when either endpoint drops, so the peer can observe disconnect.
    disconnected: P::AtomicU64,
}

// SAFETY: the SPSC protocol guarantees exclusive access to each slot's
// payload between the seq/tail synchronization points; T crossing threads
// requires T: Send. Platform implementations promise thread-safe primitives
// (see the `plat` module's safety contract).
unsafe impl<T: Send, P: Platform> Sync for Ring<T, P> {}
unsafe impl<T: Send, P: Platform> Send for Ring<T, P> {}

/// Error returned by [`Sender::try_send`].
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The ring is full (no credits and the tail confirms no space).
    Full(T),
    /// The receiver was dropped.
    Disconnected(T),
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvError {
    /// No message is currently available.
    Empty,
    /// The sender was dropped and the ring is drained.
    Disconnected,
}

/// Producer endpoint.
pub struct Sender<T, P: Platform = StdPlatform> {
    ring: Arc<Ring<T, P>>,
    /// Next message index to write.
    head: u64,
    /// Local credit count (free slots known without reading `tail`).
    credits: u64,
    /// Number of times the credit counter was refreshed from `tail` —
    /// observable cost metric matching the paper's "occasional transaction".
    pub credit_refreshes: u64,
    /// Ring occupancy as known to the producer (`capacity - credits`),
    /// sampled after every successful send. Credits are refreshed lazily, so
    /// this is an upper bound on true occupancy.
    depth: DepthStats,
}

/// Consumer endpoint.
pub struct Receiver<T, P: Platform = StdPlatform> {
    ring: Arc<Ring<T, P>>,
    /// Next message index to read.
    next: u64,
    /// Length of the current drain burst (consecutive successful receives).
    burst: u64,
    /// Backlog drained per consumer wakeup: each time the ring runs empty,
    /// the length of the burst of messages consumed since the previous empty
    /// poll is recorded as one sample.
    depth: DepthStats,
}

/// Create a ring with `capacity` slots (must be a power of two for cheap
/// index masking; the paper's queues are sized likewise).
///
/// # Panics
/// Panics if `capacity` is zero or not a power of two.
pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    channel_on::<T, StdPlatform>(capacity)
}

/// As [`channel`], but over an explicit [`Platform`]. This is how
/// `dcuda-verify` runs the production ring under its model-checking
/// scheduler; production code should keep using [`channel`].
///
/// # Panics
/// Panics if `capacity` is zero or not a power of two.
pub fn channel_on<T, P: Platform>(capacity: usize) -> (Sender<T, P>, Receiver<T, P>) {
    assert!(
        capacity.is_power_of_two() && capacity > 0,
        "capacity must be a nonzero power of two, got {capacity}"
    );
    let slots = (0..capacity)
        .map(|_| Slot {
            seq: P::AtomicU64::new(0),
            value: P::Cell::<T>::empty(),
        })
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let ring = Arc::new(Ring {
        slots,
        tail: CachePadded(P::AtomicU64::new(0)),
        disconnected: P::AtomicU64::new(0),
    });
    (
        Sender {
            ring: ring.clone(),
            head: 0,
            credits: capacity as u64,
            credit_refreshes: 0,
            depth: DepthStats::new(),
        },
        Receiver {
            ring,
            next: 0,
            burst: 0,
            depth: DepthStats::new(),
        },
    )
}

impl<T, P: Platform> Sender<T, P> {
    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.ring.slots.len()
    }

    /// Attempt to enqueue. On success this costs one "transaction" (slot
    /// write + sequence publish); when credits are exhausted it additionally
    /// reads the consumer tail once.
    pub fn try_send(&mut self, value: T) -> Result<(), TrySendError<T>> {
        if self.ring.disconnected.load(Ordering::Acquire) != 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if self.credits == 0 {
            // Credit refresh: one read of the receiver-published tail.
            let tail = self.ring.tail.0.load(Ordering::Acquire);
            self.credit_refreshes += 1;
            let in_flight = self.head - tail;
            self.credits = self.ring.slots.len() as u64 - in_flight;
            if self.credits == 0 {
                return Err(TrySendError::Full(value));
            }
        }
        let cap = self.ring.slots.len() as u64;
        let slot = &self.ring.slots[(self.head % cap) as usize];
        // SAFETY: credits > 0 guarantees the consumer has finished with this
        // slot (tail >= head - cap + 1), so we have exclusive access.
        unsafe {
            slot.value.write(value);
        }
        slot.seq.store(self.head + 1, Ordering::Release);
        self.head += 1;
        self.credits -= 1;
        self.depth.sample(cap - self.credits);
        Ok(())
    }

    /// Messages sent so far.
    pub fn sent(&self) -> u64 {
        self.head
    }

    /// Producer's current view of ring occupancy: messages sent minus
    /// consumed progress as of the last credit refresh (`capacity -
    /// credits`). The invariant monitor checks this never exceeds
    /// [`capacity`](Self::capacity) — credit flow control must bound
    /// in-flight messages without reading the tail on every send.
    pub fn in_flight_upper_bound(&self) -> u64 {
        self.ring.slots.len() as u64 - self.credits
    }

    /// Producer-side occupancy statistics (see the field docs for the
    /// sampling convention).
    pub fn depth_stats(&self) -> &DepthStats {
        &self.depth
    }
}

impl<T, P: Platform> Receiver<T, P> {
    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.ring.slots.len()
    }

    /// Attempt to dequeue the next message.
    pub fn try_recv(&mut self) -> Result<T, RecvError> {
        let cap = self.ring.slots.len() as u64;
        let slot = &self.ring.slots[(self.next % cap) as usize];
        let mut seq = slot.seq.load(Ordering::Acquire);
        if seq != self.next + 1 {
            // Not yet published (or a stale earlier round).
            if self.ring.disconnected.load(Ordering::Acquire) == 0 {
                if self.burst > 0 {
                    self.depth.sample(self.burst);
                    self.burst = 0;
                }
                return Err(RecvError::Empty);
            }
            // Disconnect observed. The sender's disconnect store releases
            // everything it published, and our acquire load synchronized
            // with it — so a *re-read* of seq now sees any publication that
            // preceded the drop. Without this re-check, a stale first seq
            // read paired with a fresh disconnected read would drop the
            // ring's tail messages (found by the dcuda-verify model
            // checker: two independent loads may read from different
            // moments on weakly-ordered hardware).
            seq = slot.seq.load(Ordering::Acquire);
            if seq != self.next + 1 {
                if self.burst > 0 {
                    self.depth.sample(self.burst);
                    self.burst = 0;
                }
                return Err(RecvError::Disconnected);
            }
        }
        // SAFETY: the release store of seq happened after the payload write;
        // our acquire load synchronizes with it, and only we read this slot.
        let value = unsafe { slot.value.read() };
        self.next += 1;
        self.burst += 1;
        // Publish progress for the producer's credit refresh.
        self.ring.tail.0.store(self.next, Ordering::Release);
        Ok(value)
    }

    /// Consumer-side drain-burst statistics (see the field docs for the
    /// sampling convention).
    pub fn depth_stats(&self) -> &DepthStats {
        &self.depth
    }

    /// Peek whether a message is available without consuming it.
    pub fn is_ready(&self) -> bool {
        let cap = self.ring.slots.len() as u64;
        let slot = &self.ring.slots[(self.next % cap) as usize];
        slot.seq.load(Ordering::Acquire) == self.next + 1
    }

    /// Messages consumed so far.
    pub fn consumed(&self) -> u64 {
        self.next
    }
}

impl<T, P: Platform> Drop for Sender<T, P> {
    fn drop(&mut self) {
        self.ring.disconnected.store(1, Ordering::Release);
    }
}

impl<T, P: Platform> Drop for Receiver<T, P> {
    fn drop(&mut self) {
        self.ring.disconnected.store(1, Ordering::Release);
        // Drain remaining messages so their destructors run.
        while let Ok(v) = self.try_recv_ignore_disconnect() {
            drop(v);
        }
    }
}

impl<T, P: Platform> Receiver<T, P> {
    fn try_recv_ignore_disconnect(&mut self) -> Result<T, ()> {
        let cap = self.ring.slots.len() as u64;
        let slot = &self.ring.slots[(self.next % cap) as usize];
        if slot.seq.load(Ordering::Acquire) != self.next + 1 {
            return Err(());
        }
        // SAFETY: same argument as `try_recv` — seq publication guards the
        // payload read.
        let value = unsafe { slot.value.read() };
        self.next += 1;
        self.ring.tail.0.store(self.next, Ordering::Release);
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn send_recv_roundtrip() {
        let (mut tx, mut rx) = channel::<u32>(4);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(RecvError::Empty));
    }

    #[test]
    fn fills_at_capacity() {
        let (mut tx, mut rx) = channel::<u32>(4);
        for i in 0..4 {
            tx.try_send(i).unwrap();
        }
        assert_eq!(tx.try_send(99), Err(TrySendError::Full(99)));
        assert_eq!(rx.try_recv(), Ok(0));
        // After the consumer advances, the refreshed credits admit one more.
        tx.try_send(4).unwrap();
    }

    #[test]
    fn credit_refresh_is_occasional() {
        // Paper: one PCIe transaction per enqueue plus an *occasional* tail
        // read. With a consumer that keeps pace, refreshes happen at most
        // once per `capacity` sends.
        let (mut tx, mut rx) = channel::<u64>(8);
        for i in 0..1000u64 {
            tx.try_send(i).unwrap();
            assert_eq!(rx.try_recv(), Ok(i));
        }
        assert!(
            tx.credit_refreshes <= 1000 / 8 + 1,
            "got {} refreshes",
            tx.credit_refreshes
        );
    }

    #[test]
    fn in_flight_never_exceeds_capacity() {
        let (mut tx, mut rx) = channel::<u64>(4);
        for round in 0..100u64 {
            while tx.try_send(round).is_ok() {
                assert!(tx.in_flight_upper_bound() <= 4);
            }
            while rx.try_recv().is_ok() {}
        }
    }

    #[test]
    fn wraparound_many_rounds() {
        let (mut tx, mut rx) = channel::<u64>(2);
        for i in 0..10_000u64 {
            tx.try_send(i).unwrap();
            assert_eq!(rx.try_recv(), Ok(i));
        }
        assert_eq!(tx.sent(), 10_000);
        assert_eq!(rx.consumed(), 10_000);
    }

    #[test]
    fn is_ready_reflects_state() {
        let (mut tx, mut rx) = channel::<u8>(2);
        assert!(!rx.is_ready());
        tx.try_send(7).unwrap();
        assert!(rx.is_ready());
        rx.try_recv().unwrap();
        assert!(!rx.is_ready());
    }

    #[test]
    fn sender_drop_observed_after_drain() {
        let (mut tx, mut rx) = channel::<u8>(4);
        tx.try_send(1).unwrap();
        drop(tx);
        // Buffered message still readable...
        assert_eq!(rx.try_recv(), Ok(1));
        // ...then disconnect is reported.
        assert_eq!(rx.try_recv(), Err(RecvError::Disconnected));
    }

    #[test]
    fn receiver_drop_fails_send() {
        let (mut tx, rx) = channel::<u8>(4);
        drop(rx);
        assert_eq!(tx.try_send(1), Err(TrySendError::Disconnected(1)));
    }

    #[test]
    fn drops_buffered_values() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut tx, rx) = channel::<D>(4);
        tx.try_send(D).unwrap();
        tx.try_send(D).unwrap();
        drop(rx);
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = channel::<u8>(3);
    }

    #[test]
    fn cross_thread_stress() {
        // A producer and a consumer hammer the ring; every message must
        // arrive exactly once, in order.
        let (mut tx, mut rx) = channel::<u64>(64);
        const N: u64 = 20_000;
        let producer = std::thread::spawn(move || {
            let mut i = 0u64;
            while i < N {
                match tx.try_send(i) {
                    Ok(()) => i += 1,
                    Err(TrySendError::Full(_)) => std::thread::yield_now(),
                    Err(TrySendError::Disconnected(_)) => panic!("consumer died"),
                }
            }
            tx
        });
        let mut expect = 0u64;
        while expect < N {
            match rx.try_recv() {
                Ok(v) => {
                    assert_eq!(v, expect);
                    expect += 1;
                }
                Err(RecvError::Empty) => std::thread::yield_now(),
                Err(RecvError::Disconnected) => panic!("producer died early"),
            }
        }
        let tx = producer.join().unwrap();
        assert_eq!(tx.sent(), N);
    }

    #[test]
    fn cross_thread_stress_large_payload() {
        // Payloads wider than a word exercise the payload-write / seq-publish
        // ordering.
        let (mut tx, mut rx) = channel::<[u64; 8]>(16);
        const N: u64 = 10_000;
        let producer = std::thread::spawn(move || {
            let mut i = 0u64;
            while i < N {
                let v = [i; 8];
                match tx.try_send(v) {
                    Ok(()) => i += 1,
                    Err(TrySendError::Full(_)) => std::thread::yield_now(),
                    Err(TrySendError::Disconnected(_)) => panic!("consumer died"),
                }
            }
        });
        let mut expect = 0u64;
        while expect < N {
            match rx.try_recv() {
                Ok(v) => {
                    assert_eq!(v, [expect; 8], "torn or reordered entry");
                    expect += 1;
                }
                Err(RecvError::Empty) => std::thread::yield_now(),
                Err(RecvError::Disconnected) => panic!("producer died early"),
            }
        }
        producer.join().unwrap();
    }
}
