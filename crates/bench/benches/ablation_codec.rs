//! Ablation: allocating vs buffer-reusing wire-codec encode, across payload
//! sizes straddling the eager/rendezvous threshold.
//!
//! The socket plane encodes every outbound [`WireMsg`] into a frame before
//! it hits the stream. The naive path allocates a fresh `Vec` per message
//! (`encode`); the plane's hot path reuses one scratch buffer per
//! connection (`encode_into`), which matters exactly where dCUDA lives —
//! thousands of small eager messages per flush window, where the allocation
//! dominates the memcpy. Large rendezvous payloads amortize the allocation,
//! so the gap should shrink past [`EAGER_MAX`]; the table makes that
//! visible.
//!
//! Like `ablation_matcher`, this doubles as a correctness gate: every
//! encoded message must decode back to itself on both paths before any
//! timing runs.

use dcuda_bench::harness::bench;
use dcuda_net::wire::{WireMsg, EAGER_MAX};

const MSGS_PER_ROUND: usize = 64;

/// A representative eager-path message mix: mostly payload-bearing
/// deliveries with the control messages that ride the same stream.
fn corpus(payload: usize) -> Vec<WireMsg> {
    (0..MSGS_PER_ROUND)
        .map(|i| match i % 8 {
            5 => WireMsg::Ack {
                origin_local: (i % 13) as u32,
                flush_id: i as u64,
            },
            6 => WireMsg::BarrierToken {
                device: (i % 3) as u32,
            },
            7 => WireMsg::Finished {
                device: (i % 3) as u32,
                ranks: 1,
            },
            _ => WireMsg::Deliver {
                dst_local: (i % 26) as u32,
                win: 0,
                dst_off: (i * payload) as u64,
                source: (i % 208) as u32,
                tag: (i % 32) as u32,
                notify: true,
                seq: i as u64,
                origin_device: (i % 3) as u32,
                origin_local: (i % 26) as u32,
                flush_id: (i / 8) as u64,
                data: vec![(i % 251) as u8; payload],
            },
        })
        .collect()
}

/// Encode each message into a fresh allocation (the naive path).
fn run_alloc(msgs: &[WireMsg]) -> u64 {
    let mut bytes = 0u64;
    for m in msgs {
        let buf = m.encode();
        bytes += buf.len() as u64;
    }
    bytes
}

/// Encode each message into one reused scratch buffer (the plane's path).
fn run_reuse(msgs: &[WireMsg], scratch: &mut Vec<u8>) -> u64 {
    let mut bytes = 0u64;
    for m in msgs {
        scratch.clear();
        m.encode_into(scratch);
        bytes += scratch.len() as u64;
    }
    bytes
}

fn main() {
    println!(
        "Ablation: allocating vs reused-buffer encode ({MSGS_PER_ROUND} messages per round, per payload size)"
    );
    // Correctness gate: both paths produce identical decodable bytes.
    for payload in [0usize, 64, EAGER_MAX, 16 << 10] {
        let msgs = corpus(payload);
        let mut scratch = Vec::new();
        for m in &msgs {
            let fresh = m.encode();
            scratch.clear();
            m.encode_into(&mut scratch);
            assert_eq!(fresh, scratch, "encode paths diverge at payload {payload}");
            let back = WireMsg::decode(&fresh).expect("roundtrip decode");
            assert_eq!(&back, m, "roundtrip diverges at payload {payload}");
        }
    }

    for payload in [0usize, 64, 512, EAGER_MAX, 16 << 10] {
        let msgs = corpus(payload);
        let alloc = bench(&format!("codec/encode_alloc/payload_{payload}"), || {
            run_alloc(&msgs)
        });
        let mut scratch = Vec::with_capacity(payload + 128);
        let reuse = bench(&format!("codec/encode_reuse/payload_{payload}"), || {
            run_reuse(&msgs, &mut scratch)
        });
        let speedup = alloc.mean_ns / reuse.mean_ns;
        let side = if payload <= EAGER_MAX {
            "eager"
        } else {
            "rndz "
        };
        println!("  payload {payload:>6} ({side}): reuse speedup {speedup:>5.2}x");
    }
}
