//! The per-rank blocking API.

use crate::msg::{Cmd, Delivery, RtQuery};
use dcuda_queues::{match_in_order, Notification, Receiver, RecvError, Sender, TrySendError};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The device-side library handle of one rank (paper: the `dcuda_context`).
///
/// All methods block the calling rank thread, exactly like the paper's
/// device-side calls block the calling block.
pub struct RtCtx {
    pub(crate) rank: u32,
    pub(crate) world: u32,
    pub(crate) device: u32,
    pub(crate) local: u32,
    pub(crate) ranks_per_device: u32,
    /// Rank-private window memory.
    pub(crate) windows: Vec<Vec<u8>>,
    /// Command ring to the block manager.
    pub(crate) cmd: Sender<Cmd>,
    /// Delivery ring from the block manager.
    pub(crate) delivery: Receiver<Delivery>,
    /// Buffered notifications not yet matched.
    pub(crate) pending: VecDeque<Notification>,
    /// Operations issued (flush ids are sequential from 1).
    pub(crate) flush_sent: u64,
    /// Highest prefix-complete flush id, published by the host.
    pub(crate) flush_done: Arc<AtomicU64>,
    /// Barrier epoch of this device, bumped by the host on release.
    pub(crate) barrier_epoch: Arc<AtomicU64>,
    /// Barriers this rank has entered.
    pub(crate) barriers_entered: u64,
    /// Notifications matched (stat).
    pub(crate) matched: u64,
}

impl RtCtx {
    /// World-communicator rank (`dcuda_comm_rank(DCUDA_COMM_WORLD)`).
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// World-communicator size.
    pub fn world_size(&self) -> u32 {
        self.world
    }

    /// Device-communicator rank.
    pub fn device_rank(&self) -> u32 {
        self.local
    }

    /// Device-communicator size.
    pub fn device_size(&self) -> u32 {
        self.ranks_per_device
    }

    /// The device this rank runs on.
    pub fn device(&self) -> u32 {
        self.device
    }

    /// This rank's window memory.
    pub fn win(&self, win: u32) -> &[u8] {
        &self.windows[win as usize]
    }

    /// This rank's window memory, mutable.
    pub fn win_mut(&mut self, win: u32) -> &mut [u8] {
        &mut self.windows[win as usize]
    }

    fn send_cmd(&mut self, mut cmd: Cmd) {
        loop {
            match self.cmd.try_send(cmd) {
                Ok(()) => return,
                Err(TrySendError::Full(c)) => {
                    cmd = c;
                    std::thread::yield_now();
                }
                Err(TrySendError::Disconnected(_)) => {
                    panic!("rank {}: block manager vanished", self.rank)
                }
            }
        }
    }

    /// `dcuda_put_notify`: copy window bytes to the target rank and enqueue
    /// a notification there.
    ///
    /// # Panics
    /// Panics if the source range exceeds this rank's window.
    #[allow(clippy::too_many_arguments)]
    pub fn put_notify(
        &mut self,
        win: u32,
        dst: u32,
        dst_off: usize,
        src_off: usize,
        len: usize,
        tag: u32,
    ) {
        self.put_inner(win, dst, dst_off, src_off, len, tag, true);
    }

    /// `dcuda_put`: as [`put_notify`](Self::put_notify) without the target
    /// notification (completion observable through [`flush`](Self::flush)).
    pub fn put(&mut self, win: u32, dst: u32, dst_off: usize, src_off: usize, len: usize) {
        self.put_inner(win, dst, dst_off, src_off, len, 0, false);
    }

    #[allow(clippy::too_many_arguments)]
    fn put_inner(
        &mut self,
        win: u32,
        dst: u32,
        dst_off: usize,
        src_off: usize,
        len: usize,
        tag: u32,
        notify: bool,
    ) {
        assert!(dst < self.world, "put to rank {dst} outside the world");
        let data = self.windows[win as usize][src_off..src_off + len].to_vec();
        self.flush_sent += 1;
        let flush_id = self.flush_sent;
        self.send_cmd(Cmd::Put {
            dst,
            win,
            dst_off,
            data,
            tag,
            notify,
            flush_id,
        });
    }

    /// Drain the delivery ring: land payloads in window memory and buffer
    /// notifications.
    fn drain_deliveries(&mut self) {
        loop {
            match self.delivery.try_recv() {
                Ok(d) => {
                    let w = &mut self.windows[d.win as usize];
                    assert!(
                        d.dst_off + d.data.len() <= w.len(),
                        "rank {}: delivery overflows window {} ({} + {} > {})",
                        self.rank,
                        d.win,
                        d.dst_off,
                        d.data.len(),
                        w.len()
                    );
                    w[d.dst_off..d.dst_off + d.data.len()].copy_from_slice(&d.data);
                    if d.notify {
                        self.pending.push_back(d.notif);
                    }
                }
                Err(RecvError::Empty) => return,
                Err(RecvError::Disconnected) => {
                    panic!("rank {}: delivery ring vanished", self.rank)
                }
            }
        }
    }

    /// `dcuda_test_notifications`: non-blocking match attempt.
    pub fn test_notifications(&mut self, query: RtQuery, count: usize) -> bool {
        self.drain_deliveries();
        match match_in_order(&mut self.pending, query, count) {
            Some((m, _)) => {
                self.matched += m.len() as u64;
                true
            }
            None => false,
        }
    }

    /// `dcuda_wait_notifications`: block until `count` notifications
    /// matching `query` have been matched (in arrival order, with
    /// compaction).
    pub fn wait_notifications(&mut self, query: RtQuery, count: usize) {
        while !self.test_notifications(query, count) {
            std::thread::yield_now();
        }
    }

    /// `dcuda_win_flush`: block until every operation this rank issued has
    /// been processed end-to-end.
    pub fn flush(&mut self) {
        let want = self.flush_sent;
        while self.flush_done.load(Ordering::Acquire) < want {
            self.drain_deliveries();
            std::thread::yield_now();
        }
    }

    /// `dcuda_barrier(DCUDA_COMM_WORLD)`: block in the world barrier.
    pub fn barrier(&mut self) {
        self.barriers_entered += 1;
        let want = self.barriers_entered;
        self.send_cmd(Cmd::Barrier);
        while self.barrier_epoch.load(Ordering::Acquire) < want {
            self.drain_deliveries();
            std::thread::yield_now();
        }
    }

    pub(crate) fn finish(&mut self) {
        self.send_cmd(Cmd::Finish);
    }
}
