//! Regenerate the dCUDA paper's evaluation figures as printed series.
//!
//! ```text
//! figures [--fig 6|7|8|9|10|11|ablations|faults|coll|busyhost|all[,..]] [--full]
//!         [--serial] [--json [PATH]] [--trace PATH] [--verify]
//!         [--faults PROFILE]
//! ```
//!
//! Default: all figures at `--quick` effort, rows fanned out over all
//! cores. `--full` uses the paper's iteration counts (slower). `--serial`
//! disables the parallel driver (the simulated series are identical either
//! way — diffing the two outputs is the determinism check). `--json`
//! additionally writes the machine-readable series to `BENCH_figures.json`
//! (or PATH); the schema is documented in EXPERIMENTS.md. `--trace PATH`
//! runs one representative traced simulation for the selected figure and
//! writes a Chrome-trace / Perfetto JSON timeline to PATH (see
//! EXPERIMENTS.md for the walkthrough). `--verify` attaches the
//! `dcuda-verify` invariant monitor to every simulation: the run aborts
//! loudly on any conservation/delivery violation, and the printed series
//! are byte-identical to a verify-off run (the monitor observes, it never
//! schedules). `--fig` accepts a comma list (`--fig 6,7,8`).
//!
//! `--fig faults` renders the overlap-under-faults figure; `--faults
//! PROFILE` selects its fault profile (default `lossy` — see
//! `dcuda_fabric::FaultSpec::parse` for the `name[@seed][,key=val...]`
//! grammar, e.g. `drop@7,drop=0.02`).

use dcuda_apps::micro::overlap::{OverlapPoint, Workload};
use dcuda_bench::json::Json;
use dcuda_bench::{
    ablation_bcast_put, ablation_match_cost, ablation_occupancy, ablation_staging,
    ablation_vertical_levels, fig10, fig11, fig6, fig7_8, fig9, fig_busyhost, fig_coll, fig_faults,
    fig_jobstorm, set_serial, Effort, ScalingRow,
};
use dcuda_core::SystemSpec;
use dcuda_fabric::FaultSpec;

fn print_scaling(name: &str, rows: &[ScalingRow]) {
    println!("\n== {name} ==");
    println!(
        "{:>6} {:>14} {:>14} {:>20}",
        "nodes", "dCUDA [ms]", "MPI-CUDA [ms]", "halo/comm [ms]"
    );
    for r in rows {
        println!(
            "{:>6} {:>14.2} {:>14.2} {:>20.2}",
            r.nodes, r.dcuda_ms, r.mpicuda_ms, r.halo_ms
        );
    }
}

fn scaling_json(rows: &[ScalingRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj()
                    .field("nodes", Json::from(r.nodes))
                    .field("dcuda_ms", Json::from(r.dcuda_ms))
                    .field("mpicuda_ms", Json::from(r.mpicuda_ms))
                    .field("halo_ms", Json::from(r.halo_ms))
            })
            .collect(),
    )
}

fn overlap_json(points: &[OverlapPoint]) -> Json {
    Json::Arr(
        points
            .iter()
            .map(|p| {
                Json::obj()
                    .field("work_iters", Json::from(p.work_iters))
                    .field("full_ms", Json::from(p.full_ms))
                    .field("compute_ms", Json::from(p.compute_ms))
                    .field("exchange_ms", Json::from(p.exchange_ms))
                    .field("overlap_efficiency", Json::from(p.overlap_efficiency()))
            })
            .collect(),
    )
}

const USAGE: &str = "usage: figures [--fig 6|7|8|9|10|11|ablations|faults|coll|busyhost|jobstorm|all[,..]] [--full] [--serial] [--json [PATH]] [--trace PATH] [--verify [race]] [--faults PROFILE]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Values consumed by --fig / --json; everything else must be a known flag.
    let mut value_slots = Vec::new();
    let effort = if args.iter().any(|a| a == "--full") {
        Effort::Full
    } else {
        Effort::Quick
    };
    if args.iter().any(|a| a == "--serial") || std::env::var_os("DCUDA_FIGURES_SERIAL").is_some() {
        set_serial(true);
    }
    let verify_pos = args.iter().position(|a| a == "--verify");
    let verify = verify_pos.is_some();
    let verify_race = match verify_pos {
        Some(i) => match args.get(i + 1).filter(|p| !p.starts_with("--")) {
            Some(v) if v == "race" => {
                value_slots.push(i + 1);
                true
            }
            Some(v) => {
                eprintln!("figures: unknown --verify value {v:?} (expected race)");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
            None => false,
        },
        None => false,
    };
    if verify {
        // Every ClusterSim built from here on carries the invariant
        // monitor; a violation panics the run. Stdout stays byte-identical.
        dcuda_core::verify_mode::enable();
    }
    if verify_race {
        // ... and the happens-before race detector; races are tallied
        // process-wide and reported (as a failing exit) after the runs.
        dcuda_core::verify_mode::enable_races();
    }
    let json_path: Option<String> = args.iter().position(|a| a == "--json").map(|i| {
        match args.get(i + 1).filter(|p| !p.starts_with("--")) {
            Some(p) => {
                value_slots.push(i + 1);
                p.clone()
            }
            None => "BENCH_figures.json".to_string(),
        }
    });
    let trace_path: Option<String> = args.iter().position(|a| a == "--trace").map(|i| {
        match args.get(i + 1).filter(|p| !p.starts_with("--")) {
            Some(p) => {
                value_slots.push(i + 1);
                p.clone()
            }
            None => {
                eprintln!("figures: --trace needs a PATH");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    });
    let which = match args.iter().position(|a| a == "--fig") {
        Some(i) => {
            value_slots.push(i + 1);
            args.get(i + 1).cloned().unwrap_or_default()
        }
        None => "all".to_string(),
    };
    const FIGS: [&str; 12] = [
        "6",
        "7",
        "8",
        "9",
        "10",
        "11",
        "ablations",
        "faults",
        "coll",
        "busyhost",
        "jobstorm",
        "all",
    ];
    let selected: Vec<&str> = which.split(',').map(str::trim).collect();
    for part in &selected {
        if !FIGS.contains(part) {
            eprintln!("figures: unknown --fig value {part:?} (expected a comma list of {FIGS:?})");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
    if verify_race && (selected.contains(&"faults") || selected.contains(&"all")) {
        // The detector's channel edges assume FIFO delivery; retries break
        // that, so the faulted figure cannot run under race detection.
        eprintln!("figures: --verify race is incompatible with the faults figure; pick --fig without faults/all");
        std::process::exit(2);
    }
    let fault_profile: String = match args.iter().position(|a| a == "--faults") {
        Some(i) => match args.get(i + 1).filter(|p| !p.starts_with("--")) {
            Some(p) => {
                value_slots.push(i + 1);
                p.clone()
            }
            None => {
                eprintln!("figures: --faults needs a PROFILE (e.g. lossy, drop@7,drop=0.02)");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        },
        None => "lossy".to_string(),
    };
    let fault_spec = match FaultSpec::parse(&fault_profile) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("figures: bad --faults profile: {e}");
            std::process::exit(2);
        }
    };
    for (i, a) in args.iter().enumerate() {
        if !value_slots.contains(&i)
            && ![
                "--fig", "--full", "--serial", "--json", "--trace", "--verify", "--faults",
            ]
            .contains(&a.as_str())
        {
            eprintln!("figures: unknown argument {a:?}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
    let spec = SystemSpec::greina();
    let all = selected.contains(&"all");
    let started = std::time::Instant::now();
    let mut out = Json::obj()
        .field("schema", Json::str("dcuda-figures-v1"))
        .field(
            "effort",
            Json::str(if effort == Effort::Full {
                "full"
            } else {
                "quick"
            }),
        )
        .field("serial", Json::from(dcuda_bench::is_serial()));

    if all || selected.contains(&"6") {
        println!("== Figure 6: put bandwidth (paper: saturates ~5757.6 MB/s distributed, ~1057.9 MB/s shared; 19.4 us / 7.8 us empty-packet latency) ==");
        println!(
            "{:>12} {:>14} {:>16} {:>18}",
            "placement", "packet [B]", "latency [us]", "bandwidth [MB/s]"
        );
        let rows = fig6(&spec, effort);
        for row in &rows {
            println!(
                "{:>12} {:>14} {:>16.2} {:>18.1}",
                format!("{:?}", row.placement),
                row.result.bytes,
                row.result.latency_us,
                row.result.bandwidth_mbs
            );
        }
        out = out.field(
            "fig6",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj()
                            .field("placement", Json::str(format!("{:?}", r.placement)))
                            .field("bytes", Json::from(r.result.bytes))
                            .field("latency_us", Json::from(r.result.latency_us))
                            .field("bandwidth_mbs", Json::from(r.result.bandwidth_mbs))
                    })
                    .collect(),
            ),
        );
    }
    for (fig, workload) in [("7", Workload::Newton), ("8", Workload::Copy)] {
        if all || selected.contains(&fig) {
            let label = match workload {
                Workload::Newton => "Figure 7: overlap, Newton-Raphson (compute-bound)",
                Workload::Copy => "Figure 8: overlap, memory-to-memory copy (bandwidth-bound)",
            };
            println!("\n== {label} ==");
            println!(
                "{:>8} {:>20} {:>16} {:>16} {:>10}",
                "iters/x", "compute&exch [ms]", "compute [ms]", "exchange [ms]", "overlap"
            );
            let points = fig7_8(&spec, workload, effort);
            for p in &points {
                println!(
                    "{:>8} {:>20.3} {:>16.3} {:>16.3} {:>10.2}",
                    p.work_iters,
                    p.full_ms,
                    p.compute_ms,
                    p.exchange_ms,
                    p.overlap_efficiency()
                );
            }
            out = out.field(&format!("fig{fig}"), overlap_json(&points));
        }
    }
    if all || selected.contains(&"9") {
        let rows = fig9(&spec, effort);
        print_scaling(
            "Figure 9: particle simulation weak scaling (paper: dCUDA wins beyond ~3 nodes; MPI-CUDA scaling cost ~ halo time)",
            &rows,
        );
        out = out.field("fig9", scaling_json(&rows));
    }
    if all || selected.contains(&"10") {
        let rows = fig10(&spec, effort);
        print_scaling(
            "Figure 10: stencil weak scaling (paper: dCUDA flat, fully overlapped; MPI-CUDA pays the halo)",
            &rows,
        );
        out = out.field("fig10", scaling_json(&rows));
    }
    if all || selected.contains(&"11") {
        let rows = fig11(&spec, effort);
        print_scaling(
            "Figure 11: SpMV weak scaling (paper: no overlap; dCUDA comparable, catching up at 9 nodes)",
            &rows,
        );
        out = out.field("fig11", scaling_json(&rows));
    }
    if all || selected.contains(&"ablations") {
        let occupancy = ablation_occupancy(&spec);
        println!("\n== Ablation: occupancy vs overlap efficiency (Little's law) ==");
        for (blocks_per_sm, eff) in &occupancy {
            println!("blocks/SM = {blocks_per_sm:>3}: overlap efficiency {eff:.2}");
        }
        let staging = ablation_staging(&spec);
        println!("\n== Ablation: host-staging threshold vs 1 MiB put bandwidth ==");
        for &(threshold, bw) in &staging {
            let t = if threshold == u64::MAX {
                "never".to_string()
            } else {
                format!("{} kB", threshold / 1024)
            };
            println!("stage >= {t:>8}: {bw:.0} MB/s");
        }
        let match_cost = ablation_match_cost(&spec);
        println!("\n== Ablation: notification matching cost vs Newton overlap ==");
        for &(us, full) in &match_cost {
            println!("match cost {us:.1} us/entry: compute&exchange {full:.3} ms");
        }
        let bcast = ablation_bcast_put(&spec);
        println!(
            "\n== Ablation: SpMV x fan-out — notification tree vs broadcast-put (paper SV) =="
        );
        for &(nodes, tree, bput) in &bcast {
            println!("nodes={nodes}: tree {tree:.2} ms, put_notify_all {bput:.2} ms");
        }
        let vertical = ablation_vertical_levels(&spec);
        println!(
            "\n== Ablation: vertical levels vs stencil variants (paper SIV-C staging claim) =="
        );
        for &(k, d, m) in &vertical {
            println!(
                "ksize={k:>3} (MPI halo {:>3} kB): dCUDA {d:.2} ms, MPI-CUDA {m:.2} ms, ratio {:.2}",
                k, m / d
            );
        }
        out = out.field(
            "ablations",
            Json::obj()
                .field(
                    "occupancy",
                    Json::Arr(
                        occupancy
                            .iter()
                            .map(|&(bps, eff)| {
                                Json::obj()
                                    .field("blocks_per_sm", Json::from(bps))
                                    .field("overlap_efficiency", Json::from(eff))
                            })
                            .collect(),
                    ),
                )
                .field(
                    "staging",
                    Json::Arr(
                        staging
                            .iter()
                            .map(|&(thr, bw)| {
                                Json::obj()
                                    .field(
                                        "threshold_bytes",
                                        if thr == u64::MAX {
                                            Json::Null
                                        } else {
                                            Json::from(thr)
                                        },
                                    )
                                    .field("bandwidth_mbs", Json::from(bw))
                            })
                            .collect(),
                    ),
                )
                .field(
                    "match_cost",
                    Json::Arr(
                        match_cost
                            .iter()
                            .map(|&(us, ms)| {
                                Json::obj()
                                    .field("us_per_entry", Json::from(us))
                                    .field("full_ms", Json::from(ms))
                            })
                            .collect(),
                    ),
                )
                .field(
                    "bcast_put",
                    Json::Arr(
                        bcast
                            .iter()
                            .map(|&(nodes, tree, bput)| {
                                Json::obj()
                                    .field("nodes", Json::from(nodes))
                                    .field("tree_ms", Json::from(tree))
                                    .field("bcast_ms", Json::from(bput))
                            })
                            .collect(),
                    ),
                )
                .field(
                    "vertical_levels",
                    Json::Arr(
                        vertical
                            .iter()
                            .map(|&(k, d, m)| {
                                Json::obj()
                                    .field("ksize", Json::from(k))
                                    .field("dcuda_ms", Json::from(d))
                                    .field("mpicuda_ms", Json::from(m))
                            })
                            .collect(),
                    ),
                ),
        );
    }
    if all || selected.contains(&"faults") {
        println!(
            "\n== Overlap under faults: Newton overlap vs fault intensity (profile {fault_profile:?}) =="
        );
        println!(
            "{:>7} {:>12} {:>12} {:>13} {:>8} {:>7} {:>9} {:>7} {:>9} {:>8}",
            "factor",
            "full [ms]",
            "comp [ms]",
            "exch [ms]",
            "overlap",
            "drops",
            "retries",
            "dups",
            "deduped",
            "demoted"
        );
        let rows = fig_faults(&spec, &fault_spec, effort);
        for r in &rows {
            println!(
                "{:>7.2} {:>12.3} {:>12.3} {:>13.3} {:>8.2} {:>7} {:>9} {:>7} {:>9} {:>8}",
                r.factor,
                r.full_ms,
                r.compute_ms,
                r.exchange_ms,
                r.overlap_efficiency,
                r.fault_drops,
                r.retries,
                r.fault_dups,
                r.dups_suppressed,
                r.demotions
            );
        }
        out = out.field(
            "faults",
            Json::obj()
                .field("profile", Json::str(fault_profile.clone()))
                .field(
                    "rows",
                    Json::Arr(
                        rows.iter()
                            .map(|r| {
                                Json::obj()
                                    .field("factor", Json::from(r.factor))
                                    .field("full_ms", Json::from(r.full_ms))
                                    .field("compute_ms", Json::from(r.compute_ms))
                                    .field("exchange_ms", Json::from(r.exchange_ms))
                                    .field("overlap_efficiency", Json::from(r.overlap_efficiency))
                                    .field("fault_drops", Json::from(r.fault_drops))
                                    .field("fault_dups", Json::from(r.fault_dups))
                                    .field("retries", Json::from(r.retries))
                                    .field("timeouts", Json::from(r.timeouts))
                                    .field("dups_suppressed", Json::from(r.dups_suppressed))
                                    .field("demotions", Json::from(r.demotions))
                            })
                            .collect(),
                    ),
                ),
        );
    }

    if all || selected.contains(&"coll") {
        println!(
            "\n== Collectives: chunked ring allreduce on the threaded runtime (hidden fraction = chunk waits already satisfied when first polled) =="
        );
        println!(
            "{:>10} {:>7} {:>12} {:>8} {:>12} {:>14}",
            "backend", "ranks", "wall [ms]", "hidden", "coll puts", "coll bytes"
        );
        let rows = fig_coll(effort);
        for r in &rows {
            println!(
                "{:>10} {:>7} {:>12.1} {:>8.2} {:>12} {:>14}",
                r.backend, r.ranks, r.wall_ms, r.hidden_frac, r.coll_puts, r.coll_bytes
            );
        }
        out = out.field(
            "coll",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj()
                            .field("backend", Json::str(r.backend))
                            .field("ranks", Json::from(r.ranks))
                            .field("wall_ms", Json::from(r.wall_ms))
                            .field("hidden_frac", Json::from(r.hidden_frac))
                            .field("coll_puts", Json::from(r.coll_puts))
                            .field("coll_bytes", Json::from(r.coll_bytes))
                    })
                    .collect(),
            ),
        );
    }

    if all || selected.contains(&"busyhost") {
        println!(
            "\n== Busy host: latency-ladder wall time vs host busy-work, inline engine vs progress pool =="
        );
        println!(
            "{:>10} {:>12} {:>12} {:>16} {:>8}",
            "mode", "busy spin", "wall [ms]", "progress frames", "steals"
        );
        let fig = fig_busyhost(effort);
        for r in &fig.rows {
            println!(
                "{:>10} {:>12} {:>12.1} {:>16} {:>8}",
                r.mode, r.busy_spin, r.wall_ms, r.progress_frames, r.steals
            );
        }
        println!(
            "  recovered overlap at peak busy: threads1 {:.2}, threads2 {:.2}",
            fig.recovered_threads1, fig.recovered_threads2
        );
        out = out.field(
            "busyhost",
            Json::obj()
                .field(
                    "rows",
                    Json::Arr(
                        fig.rows
                            .iter()
                            .map(|r| {
                                Json::obj()
                                    .field("mode", Json::str(r.mode))
                                    .field("busy_spin", Json::from(r.busy_spin))
                                    .field("wall_ms", Json::from(r.wall_ms))
                                    .field("progress_frames", Json::from(r.progress_frames))
                                    .field("steals", Json::from(r.steals))
                            })
                            .collect(),
                    ),
                )
                .field("recovered_threads1", Json::from(fig.recovered_threads1))
                .field("recovered_threads2", Json::from(fig.recovered_threads2)),
        );
    }

    if all || selected.contains(&"jobstorm") {
        println!(
            "\n== Job storm: multi-tenant scheduler throughput and completion-latency tail =="
        );
        let fig = fig_jobstorm(effort);
        println!(
            "  {} jobs in {:.1} ms: {:.0} jobs/s, p50 {:.2} ms, p99 {:.2} ms, \
             utilization {:.2}, peak queue {}",
            fig.jobs,
            fig.wall_ms,
            fig.jobs_per_sec,
            fig.p50_ms,
            fig.p99_ms,
            fig.util_frac,
            fig.peak_queue_depth
        );
        assert_eq!(
            fig.completed, fig.jobs,
            "storm lost jobs: {} of {} completed, {} failed",
            fig.completed, fig.jobs, fig.failed
        );
        out = out.field(
            "jobstorm",
            Json::obj()
                .field("jobs", Json::from(fig.jobs))
                .field("completed", Json::from(fig.completed))
                .field("failed", Json::from(fig.failed))
                .field("wall_ms", Json::from(fig.wall_ms))
                .field("jobs_per_sec", Json::from(fig.jobs_per_sec))
                .field("p50_ms", Json::from(fig.p50_ms))
                .field("p99_ms", Json::from(fig.p99_ms))
                .field("util_frac", Json::from(fig.util_frac))
                .field("peak_queue_depth", Json::from(fig.peak_queue_depth)),
        );
    }

    if let Some(path) = &trace_path {
        // One traced run of the figure's representative workload (Copy for
        // the bandwidth-bound Figure 8, Newton otherwise).
        let workload = if selected.contains(&"8") {
            Workload::Copy
        } else {
            Workload::Newton
        };
        // When the faults figure is selected, trace under the same fault
        // profile so the timeline shows fault_drop/fault_dup/retry/demote
        // instants alongside the rank spans.
        let traced_faults = (all || selected.contains(&"faults")).then_some(&fault_spec);
        let (chrome_json, summary) = dcuda_bench::trace_run(&spec, workload, traced_faults);
        if let Err(e) = std::fs::write(path, &chrome_json) {
            eprintln!("figures: cannot write trace {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("figures: wrote Chrome trace {path} (load in https://ui.perfetto.dev)");
        match summary.overlap_efficiency {
            Some(eff) => eprintln!("figures: traced overlap efficiency {eff:.3}"),
            None => eprintln!("figures: traced run recorded no rank waits"),
        }
        eprintln!(
            "figures: traced wait spans {}, network messages {}",
            summary.wait_hist.summary().count(),
            summary.net_hist.summary().count()
        );
    }

    let wall = started.elapsed().as_secs_f64();
    eprintln!("\nfigures: {wall:.2} s wall clock");
    if verify {
        // Reaching here means no simulation panicked on a violation.
        eprintln!("figures: invariant monitor clean on every simulation");
    }
    if verify_race {
        let n = dcuda_core::verify_mode::races_found();
        if n > 0 {
            eprintln!("figures: race detector found {n} race(s) — see RunReport.races");
            std::process::exit(1);
        }
        eprintln!("figures: race detector clean on every simulation");
    }
    if let Some(path) = json_path {
        out = out.field("wall_seconds", Json::from(wall));
        if let Err(e) = std::fs::write(&path, format!("{out}\n")) {
            eprintln!("figures: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("figures: wrote {path}");
    }
}
