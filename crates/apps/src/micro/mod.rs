//! Microbenchmarks (paper §IV-B).

pub mod overlap;
pub mod pingpong;
