//! Reliable-delivery primitives: receiver-side duplicate suppression and the
//! origin-side retry state machine.
//!
//! These are the protocol-agnostic halves of the self-healing RMA layer.
//! Senders stamp every message with a per-origin sequence number; a
//! [`DedupWindow`] at the receiver accepts each sequence number exactly once
//! (an anti-replay sliding window, RFC 4302 style), which keeps notification
//! delivery exactly-once when the fabric duplicates or retransmits packets.
//! A [`RetryTimer`] tracks one in-flight transfer at the origin: every
//! timeout yields a capped-exponential backoff (and, periodically, a path
//! demotion), every acknowledgement is idempotent, and a hard attempt cap
//! turns silent livelock into a loud failure.
//!
//! Both types are plain sequential state machines — the surrounding runtime
//! (host thread, simulator event loop) provides the clock and the transport.
//! `dcuda-verify` model-checks their concurrent composition (timeout racing
//! ack, duplicate acks, retry after demotion).

/// Size of the replay window in sequence numbers.
pub const DEDUP_WINDOW: u64 = 64;

/// Sliding-window duplicate suppressor over per-origin sequence numbers.
///
/// Sequence numbers may arrive out of order; each is accepted at most once.
/// Numbers older than [`DEDUP_WINDOW`] behind the newest accepted one are
/// conservatively treated as duplicates (retransmits always carry the
/// original number, so a number that old has either been seen or its
/// transfer has been retried since).
#[derive(Debug, Default, Clone)]
pub struct DedupWindow {
    highest: u64,
    /// Bit `j` set means `highest - 1 - j` was accepted.
    mask: u64,
    seen_any: bool,
    /// Duplicates suppressed so far.
    suppressed: u64,
}

impl DedupWindow {
    /// An empty window: every sequence number is still fresh.
    pub fn new() -> Self {
        DedupWindow::default()
    }

    /// Accept or reject one sequence number. Returns `true` exactly once per
    /// number (within the window's memory).
    pub fn accept(&mut self, seq: u64) -> bool {
        if !self.seen_any {
            self.seen_any = true;
            self.highest = seq;
            self.mask = 0;
            return true;
        }
        if seq > self.highest {
            let diff = seq - self.highest;
            self.mask = if diff >= DEDUP_WINDOW {
                0
            } else {
                (self.mask << diff) | (1u64 << (diff - 1))
            };
            self.highest = seq;
            return true;
        }
        if seq == self.highest {
            self.suppressed += 1;
            return false;
        }
        let dist = self.highest - seq;
        if dist > DEDUP_WINDOW {
            self.suppressed += 1;
            return false;
        }
        let bit = 1u64 << (dist - 1);
        if self.mask & bit != 0 {
            self.suppressed += 1;
            false
        } else {
            self.mask |= bit;
            true
        }
    }

    /// Number of duplicates rejected so far.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }
}

/// Retry parameters in abstract clock ticks (the embedding runtime decides
/// what a tick is — the simulator uses its ack-timeout, the threaded runtime
/// uses poll iterations).
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Backoff after the first timeout.
    pub base_ticks: u64,
    /// Upper bound on the exponential backoff.
    pub cap_ticks: u64,
    /// Timeouts between successive path demotions.
    pub demote_after: u32,
    /// Maximum delivery attempts before giving up loudly.
    pub max_attempts: u32,
    /// Deepest reachable demotion level.
    pub max_level: u8,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_ticks: 1,
            cap_ticks: 16,
            demote_after: 3,
            max_attempts: 30,
            max_level: 2,
        }
    }
}

/// What the origin should do after a timeout fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryDecision {
    /// Retransmit after `backoff_ticks`; `demote` asks the origin to step
    /// the link one level down the path ladder first.
    Resend {
        /// Capped-exponential backoff before the retransmit.
        backoff_ticks: u64,
        /// Step the path ladder down before resending.
        demote: bool,
    },
    /// The attempt cap is exhausted — abort loudly, never spin silently.
    GiveUp,
    /// The ack won the race with the timer; no retransmit needed.
    AlreadyAcked,
}

/// Origin-side state for one in-flight sequence-numbered transfer.
#[derive(Debug, Clone)]
pub struct RetryTimer {
    policy: RetryPolicy,
    attempts: u32,
    level: u8,
    acked: bool,
}

impl RetryTimer {
    /// Fresh timer for a transfer whose first copy was just sent.
    pub fn new(policy: RetryPolicy) -> Self {
        RetryTimer {
            policy,
            attempts: 1,
            level: 0,
            acked: false,
        }
    }

    /// The timeout for the current attempt expired.
    pub fn on_timeout(&mut self) -> RetryDecision {
        if self.acked {
            return RetryDecision::AlreadyAcked;
        }
        if self.attempts >= self.policy.max_attempts {
            return RetryDecision::GiveUp;
        }
        self.attempts += 1;
        let timeouts = self.attempts - 1;
        let demote = self.policy.demote_after > 0
            && timeouts.is_multiple_of(self.policy.demote_after)
            && self.level < self.policy.max_level;
        if demote {
            self.level += 1;
        }
        let shift = timeouts.saturating_sub(1).min(20);
        let backoff = (self.policy.base_ticks << shift).min(self.policy.cap_ticks);
        RetryDecision::Resend {
            backoff_ticks: backoff,
            demote,
        }
    }

    /// An acknowledgement arrived. Returns `true` only for the first ack;
    /// duplicate acks are absorbed.
    pub fn on_ack(&mut self) -> bool {
        if self.acked {
            false
        } else {
            self.acked = true;
            true
        }
    }

    /// Whether the transfer has been acknowledged.
    pub fn acked(&self) -> bool {
        self.acked
    }

    /// Delivery attempts so far (the original send counts as one).
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Current demotion level requested by this timer.
    pub fn level(&self) -> u8 {
        self.level
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_sequences_all_accepted() {
        let mut w = DedupWindow::new();
        for s in 0..1000 {
            assert!(w.accept(s));
        }
        assert_eq!(w.suppressed(), 0);
    }

    #[test]
    fn duplicates_rejected_in_any_order() {
        let mut w = DedupWindow::new();
        for s in [3u64, 1, 2, 0, 5, 4] {
            assert!(w.accept(s), "first sight of {s}");
        }
        for s in [0u64, 1, 2, 3, 4, 5] {
            assert!(!w.accept(s), "duplicate of {s}");
        }
        assert_eq!(w.suppressed(), 6);
    }

    #[test]
    fn ancient_sequence_is_treated_as_duplicate() {
        let mut w = DedupWindow::new();
        assert!(w.accept(0));
        assert!(w.accept(1000));
        assert!(!w.accept(1), "older than the window: suppressed");
        assert!(w.accept(999), "within the window and unseen: accepted");
    }

    #[test]
    fn window_boundary_is_exact() {
        let mut w = DedupWindow::new();
        assert!(w.accept(DEDUP_WINDOW + 5));
        assert!(w.accept(5), "exactly at distance DEDUP_WINDOW");
        assert!(!w.accept(4), "one past the window");
    }

    #[test]
    fn retry_backs_off_demotes_and_gives_up() {
        let mut t = RetryTimer::new(RetryPolicy {
            base_ticks: 2,
            cap_ticks: 8,
            demote_after: 2,
            max_attempts: 6,
            max_level: 2,
        });
        let mut backoffs = vec![];
        let mut demotions = 0;
        loop {
            match t.on_timeout() {
                RetryDecision::Resend {
                    backoff_ticks,
                    demote,
                } => {
                    backoffs.push(backoff_ticks);
                    demotions += u32::from(demote);
                }
                RetryDecision::GiveUp => break,
                RetryDecision::AlreadyAcked => unreachable!(),
            }
        }
        assert_eq!(backoffs, vec![2, 4, 8, 8, 8], "capped exponential");
        assert_eq!(demotions, 2, "demoted at the 2nd and 4th timeout");
        assert_eq!(t.level(), 2);
        assert_eq!(t.attempts(), 6);
    }

    #[test]
    fn ack_is_idempotent_and_stops_retries() {
        let mut t = RetryTimer::new(RetryPolicy::default());
        assert!(t.on_ack(), "first ack completes");
        assert!(!t.on_ack(), "duplicate ack absorbed");
        assert_eq!(t.on_timeout(), RetryDecision::AlreadyAcked);
    }
}
