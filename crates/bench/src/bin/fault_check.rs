//! Fault-soak gate for CI: run the overlap workload across the whole fault
//! profile matrix (drop / duplication / reorder / brownout / NIC stalls /
//! the combined lossy profile) under the `dcuda-verify` invariant monitor,
//! and check seed-reproducibility of every faulted run.
//!
//! ```text
//! fault_check [--seeds N] [--profiles a,b,c]
//! ```
//!
//! Each (profile, seed) cell runs twice: both runs must finish with clean
//! invariants (conservation, exactly-once delivery — a violation panics)
//! and produce byte-identical `RunReport`s. A 208-rank run of the issue's
//! acceptance profile (1% drop + 0.5% duplication) rides along, and a
//! transport soak streams sequence-tagged messages over real tcp and shm
//! endpoint pairs under the same `FaultSpec::stream_rates()` profile —
//! both planes must absorb injected drops/dups below the protocol (FIFO,
//! exactly-once) while proving the injection actually fired. Exits
//! nonzero if any cell fails.

use dcuda_apps::micro::overlap::{run_faulted, OverlapConfig, Workload};
use dcuda_bench::par_map;
use dcuda_core::SystemSpec;
use dcuda_fabric::FaultSpec;
use dcuda_net::wire::WireMsg;
use dcuda_net::{
    shm_supported, MeshOpts, NetConfig, NetEndpoint, NetFaults, SocketPlane, Transport,
};
use std::net::TcpListener;
use std::time::{Duration, Instant};

const DEFAULT_PROFILES: &str = "drop,dup,reorder,brownout,stall,lossy";

fn soak_config(ranks_per_node: u32) -> OverlapConfig {
    let mut c = OverlapConfig::paper(Workload::Newton, 64, 40);
    c.nodes = 2;
    c.ranks_per_node = ranks_per_node;
    c
}

/// The ring only crosses the fabric at node boundaries, so the soak scales
/// each preset's loss probabilities up to make every cell statistically
/// certain to inject (the acceptance cell below runs the issue's exact
/// 1% + 0.5% profile unscaled).
const SOAK_INTENSITY: f64 = 5.0;

struct Cell {
    label: String,
    spec: FaultSpec,
    ranks_per_node: u32,
}

/// Establish a two-process-shaped mesh in this process (partner on a
/// helper thread); `shm_dir` switches the pair onto the shared-memory
/// plane via equal host fingerprints.
fn mesh_pair(
    faults: Option<NetFaults>,
    shm_dir: Option<&std::path::Path>,
) -> (NetEndpoint, NetEndpoint) {
    let l0 = TcpListener::bind("127.0.0.1:0").expect("bind");
    let l1 = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addrs = vec![
        l0.local_addr().expect("addr").to_string(),
        l1.local_addr().expect("addr").to_string(),
    ];
    let hosts = if shm_dir.is_some() {
        vec!["soak-host".to_string(), "soak-host".to_string()]
    } else {
        Vec::new()
    };
    let dir = shm_dir.map(std::path::Path::to_path_buf);
    let config = NetConfig {
        faults,
        ..NetConfig::default()
    };
    let opts = |my_proc, listener| MeshOpts {
        my_proc,
        procs: 2,
        devices_per_proc: 1,
        peer_addrs: addrs.clone(),
        peer_hosts: hosts.clone(),
        shm_dir: dir.clone(),
        listener,
        config: config.clone(),
    };
    let o1 = opts(1, l1);
    let t = std::thread::spawn(move || SocketPlane::establish(o1).expect("establish proc 1"));
    let mut a = SocketPlane::establish(opts(0, l0)).expect("establish proc 0");
    let mut b = t.join().expect("partner thread");
    (a.pop().expect("endpoint 0"), b.pop().expect("endpoint 1"))
}

/// Stream `msgs` sequence-tagged messages (alternating eager/rendezvous
/// sizes) over a lossy endpoint pair and return
/// `(injected_events, error)` — FIFO exactly-once is asserted inline.
fn lossy_stream(a: &mut NetEndpoint, b: &mut NetEndpoint, msgs: u64) -> Result<u64, String> {
    fn drain(b: &mut NetEndpoint, expect: &mut u64) -> Result<(), String> {
        while let Some(m) = b.try_recv().map_err(|e| e.to_string())? {
            let WireMsg::Deliver { data, .. } = m else {
                return Err("unexpected control message".into());
            };
            let mut tag = [0u8; 8];
            tag.copy_from_slice(&data[..8]);
            let got = u64::from_le_bytes(tag);
            if got != *expect {
                return Err(format!("FIFO broken: expected {expect}, got {got}"));
            }
            *expect += 1;
        }
        Ok(())
    }
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut expect = 0u64;
    for i in 0..msgs {
        // Odd messages ride the rendezvous/jumbo path, even ones eager.
        let len = if i % 2 == 0 { 256 } else { 8 << 10 };
        let mut data = vec![(i % 251) as u8; len];
        data[..8].copy_from_slice(&i.to_le_bytes());
        a.send(
            1,
            WireMsg::Deliver {
                dst_local: 0,
                win: 0,
                dst_off: 0,
                source: 1,
                tag: 3,
                notify: true,
                seq: 0,
                origin_device: 0,
                origin_local: 0,
                flush_id: 1,
                data,
            },
        )
        .map_err(|e| e.to_string())?;
        a.pump().map_err(|e| e.to_string())?;
        drain(b, &mut expect)?;
    }
    while expect < msgs {
        a.pump().map_err(|e| e.to_string())?;
        b.pump().map_err(|e| e.to_string())?;
        drain(b, &mut expect)?;
        if Instant::now() > deadline {
            return Err(format!("stalled at {expect}/{msgs} messages"));
        }
    }
    // Drops surface as retries on the sender; duplicates as suppressions
    // on the receiver — evidence of injection lives on both endpoints.
    let (sa, sb) = (a.stats(), b.stats());
    Ok(sa.net_retries + sb.net_dups_suppressed)
}

/// Soak both transport planes under the stream-level lossy profile: the
/// injection must fire (nonzero retries+dups) and must stay invisible to
/// the message layer (FIFO, exactly-once, nothing lost).
fn transport_soak(seeds: u64) -> u32 {
    const MSGS: u64 = 200;
    let mut failures = 0u32;
    println!(
        "\n{:<22} {:>9} {:>9}  verdict",
        "transport soak", "msgs", "injected"
    );
    for seed in 1..=seeds {
        let spec = match FaultSpec::parse(&format!("lossy@{seed}")) {
            Ok(s) => s.scaled(SOAK_INTENSITY),
            Err(e) => {
                eprintln!("fault_check: lossy profile: {e}");
                std::process::exit(2);
            }
        };
        let Some(r) = spec.stream_rates() else {
            eprintln!("fault_check: lossy profile lacks stream rates");
            std::process::exit(2);
        };
        let faults = Some(NetFaults {
            seed: r.seed,
            drop_p: r.drop_p,
            dup_p: r.dup_p,
        });
        let shm_dir =
            std::env::temp_dir().join(format!("dcuda-fault-shm-{}-{seed}", std::process::id()));
        let planes: Vec<(&str, Option<std::path::PathBuf>)> = if shm_supported() {
            std::fs::create_dir_all(&shm_dir).expect("shm dir");
            vec![("tcp", None), ("shm", Some(shm_dir.clone()))]
        } else {
            vec![("tcp", None)]
        };
        for (plane, dir) in &planes {
            let (mut a, mut b) = mesh_pair(faults, dir.as_deref());
            let label = format!("lossy@{seed} {plane}");
            match lossy_stream(&mut a, &mut b, MSGS) {
                Ok(injected) => {
                    let ok = injected > 0;
                    if !ok {
                        failures += 1;
                    }
                    println!(
                        "{label:<22} {MSGS:>9} {injected:>9}  {}",
                        if ok { "ok" } else { "FAIL (no injection)" }
                    );
                }
                Err(e) => {
                    failures += 1;
                    println!("{label:<22} {MSGS:>9} {:>9}  FAIL ({e})", "-");
                }
            }
        }
        let _ = std::fs::remove_dir_all(&shm_dir);
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seeds = 3u64;
    let mut profiles = DEFAULT_PROFILES.to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                i += 1;
                seeds = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("fault_check: --seeds needs a positive integer");
                    std::process::exit(2);
                });
            }
            "--profiles" => {
                i += 1;
                profiles = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("fault_check: --profiles needs a comma list");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("fault_check: unknown argument {other:?}");
                eprintln!("usage: fault_check [--seeds N] [--profiles a,b,c]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // Every simulation from here on carries the invariant monitor; any
    // conservation or exactly-once violation panics the run.
    dcuda_core::verify_mode::enable();

    let mut cells = Vec::new();
    for name in profiles.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        for seed in 1..=seeds {
            let profile = format!("{name}@{seed}");
            match FaultSpec::parse(&profile) {
                Ok(spec) => cells.push(Cell {
                    label: profile,
                    spec: spec.scaled(SOAK_INTENSITY),
                    ranks_per_node: 26,
                }),
                Err(e) => {
                    eprintln!("fault_check: bad profile {profile:?}: {e}");
                    std::process::exit(2);
                }
            }
        }
    }
    // Acceptance scale: 208 ranks on the issue's 1% drop + 0.5% dup profile.
    cells.push(Cell {
        label: "lossy@1 (208 ranks)".to_string(),
        spec: FaultSpec::lossy(1),
        ranks_per_node: 104,
    });

    let system = SystemSpec::greina();
    let started = std::time::Instant::now();
    let verdicts = par_map(cells, |cell| {
        let cfg = soak_config(cell.ranks_per_node);
        let (ms_a, report_a) = run_faulted(&system, &cfg, &cell.spec);
        let (_, report_b) = run_faulted(&system, &cfg, &cell.spec);
        let a = format!("{report_a:?}");
        let b = format!("{report_b:?}");
        let reproducible = a == b;
        let clean = report_a.verify.as_ref().is_none_or(|v| v.is_clean());
        (cell.label, ms_a, report_a, reproducible, clean)
    });

    let mut failures = 0u32;
    println!(
        "{:<22} {:>10} {:>7} {:>9} {:>9} {:>9} {:>9}  verdict",
        "profile", "full [ms]", "drops", "retries", "deduped", "demoted", "replayed"
    );
    for (label, ms, report, reproducible, clean) in verdicts {
        let ok = reproducible && clean;
        if !ok {
            failures += 1;
        }
        println!(
            "{:<22} {:>10.3} {:>7} {:>9} {:>9} {:>9} {:>9}  {}",
            label,
            ms,
            report.fault_drops,
            report.retries,
            report.dups_suppressed,
            report.demotions,
            if reproducible { "yes" } else { "NO" },
            if ok { "ok" } else { "FAIL" }
        );
    }
    failures += transport_soak(seeds);
    eprintln!(
        "fault_check: {:.2} s wall clock, {} failure(s)",
        started.elapsed().as_secs_f64(),
        failures
    );
    if failures > 0 {
        std::process::exit(1);
    }
    println!("fault_check: all profiles clean, exactly-once, and seed-reproducible");
}
