//! Cluster-wide tracing and metrics for the dCUDA reproduction.
//!
//! The paper's whole argument is about *where time goes*: waits on remote
//! memory access hidden by over-subscription. This crate provides the
//! always-compiled, zero-cost-when-disabled instrumentation layer that makes
//! that visible:
//!
//! * [`Tracer`] — a deterministic span/instant recorder stamped exclusively
//!   with simulated time (picoseconds). A disabled tracer costs one branch
//!   per hook and allocates nothing, so trace-disabled runs are bit-identical
//!   to untraced builds;
//! * [`Track`] — the timeline taxonomy: one track per rank, one per device
//!   event handler (host worker), one per network link (egress NIC), one per
//!   PCIe link;
//! * [`chrome`] — Chrome-trace / Perfetto JSON export (`chrome://tracing`,
//!   <https://ui.perfetto.dev>);
//! * [`metrics`] — post-run aggregates built on [`dcuda_des::stats`]:
//!   wait-latency histograms, resource occupancy, and the *overlap
//!   efficiency* (the fraction of rank wait-time covered by other runnable
//!   ranks on the same device — the quantity Figures 7/8 of the paper
//!   visualize).
//!
//! Determinism contract: every timestamp entering the tracer is a
//! [`dcuda_des::SimTime`]-derived picosecond count (or a per-track logical
//! sequence number for the threaded runtime). Wall-clock never appears in a
//! trace, so identical simulations produce identical traces.

#![warn(missing_docs)]

pub mod chrome;
pub mod metrics;

pub use metrics::{coll_overlap_summary, CollOverlapSummary, IntervalSet, TraceSummary};

/// A timeline in the cluster-wide trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// One dCUDA rank (CUDA block). The per-rank timeline of compute, put,
    /// wait, flush and barrier spans.
    Rank(u32),
    /// The device event handler / block manager worker of one node
    /// (paper Figure 4's single host worker thread).
    Host(u32),
    /// The egress NIC of one node (network message lifecycle).
    NetLink(u32),
    /// The host-device PCIe link of one node (DMA and queue-transaction
    /// traffic).
    Pcie(u32),
    /// The socket transport endpoint of one device in the multi-process
    /// runtime (`dcuda-net` send/recv/coalesce instants).
    Net(u32),
    /// One worker of the asynchronous progress pool (`ProgressMode::Threads`):
    /// per-thread drain/steal timeline of the progress engine.
    Progress(u32),
}

impl Track {
    /// Chrome-trace process id grouping for this track.
    pub fn pid(self) -> u32 {
        match self {
            Track::Rank(_) => 0,
            Track::Host(_) => 1,
            Track::NetLink(_) => 2,
            Track::Pcie(_) => 3,
            Track::Net(_) => 4,
            Track::Progress(_) => 5,
        }
    }

    /// Chrome-trace thread id within the process group.
    pub fn tid(self) -> u32 {
        match self {
            Track::Rank(i)
            | Track::Host(i)
            | Track::NetLink(i)
            | Track::Pcie(i)
            | Track::Net(i)
            | Track::Progress(i) => i,
        }
    }

    /// Human-readable name of the process group.
    pub fn process_name(self) -> &'static str {
        match self {
            Track::Rank(_) => "ranks",
            Track::Host(_) => "device event handlers",
            Track::NetLink(_) => "network links",
            Track::Pcie(_) => "pcie links",
            Track::Net(_) => "socket transport",
            Track::Progress(_) => "progress threads",
        }
    }

    /// Human-readable track (thread) name.
    pub fn track_name(self) -> String {
        match self {
            Track::Rank(i) => format!("rank {i}"),
            Track::Host(i) => format!("host {i}"),
            Track::NetLink(i) => format!("nic {i}"),
            Track::Pcie(i) => format!("pcie {i}"),
            Track::Net(i) => format!("net dev {i}"),
            Track::Progress(i) => format!("progress {i}"),
        }
    }
}

/// A typed argument value attached to a span or instant.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer (counts, bytes, ranks, tags).
    U64(u64),
    /// Float (rates, fractions).
    F64(f64),
    /// Short label (transfer path, op kind).
    Str(&'static str),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<&'static str> for ArgValue {
    fn from(v: &'static str) -> Self {
        ArgValue::Str(v)
    }
}

/// A completed span on a track: `[start_ps, end_ps)` in simulated time.
#[derive(Debug, Clone)]
pub struct Span {
    /// Timeline the span belongs to.
    pub track: Track,
    /// Span label (e.g. `"wait"`, `"put_notify"`, `"msg"`).
    pub name: &'static str,
    /// Start instant, picoseconds of simulated time.
    pub start_ps: u64,
    /// End instant, picoseconds of simulated time (`>= start_ps`).
    pub end_ps: u64,
    /// Typed key/value details.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// A zero-duration event on a track.
#[derive(Debug, Clone)]
pub struct Instant {
    /// Timeline the instant belongs to.
    pub track: Track,
    /// Instant label (e.g. `"notify"`).
    pub name: &'static str,
    /// Picoseconds of simulated time.
    pub ts_ps: u64,
    /// Typed key/value details.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// The span/instant recorder.
///
/// Constructed [`disabled`](Tracer::disabled) by default: every hook is a
/// single branch and the recorder owns no allocations, so instrumented code
/// paths are byte-identical to uninstrumented ones when tracing is off.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    spans: Vec<Span>,
    instants: Vec<Instant>,
}

impl Tracer {
    /// A recorder that drops everything (the default).
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// A recording tracer.
    pub fn enabled() -> Self {
        Tracer {
            enabled: true,
            spans: Vec::new(),
            instants: Vec::new(),
        }
    }

    /// Is this tracer recording?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a completed span. No-op when disabled.
    #[inline]
    pub fn span(
        &mut self,
        track: Track,
        name: &'static str,
        start_ps: u64,
        end_ps: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if !self.enabled {
            return;
        }
        debug_assert!(end_ps >= start_ps, "span {name} ends before it starts");
        self.spans.push(Span {
            track,
            name,
            start_ps,
            end_ps,
            args,
        });
    }

    /// Record an instant event. No-op when disabled.
    #[inline]
    pub fn instant(
        &mut self,
        track: Track,
        name: &'static str,
        ts_ps: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if !self.enabled {
            return;
        }
        self.instants.push(Instant {
            track,
            name,
            ts_ps,
            args,
        });
    }

    /// Recorded spans.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Recorded instants.
    pub fn instants(&self) -> &[Instant] {
        &self.instants
    }

    /// Merge another tracer's records into this one (component-local
    /// recorders are collected into the cluster trace after a run).
    pub fn absorb(&mut self, other: Tracer) {
        if !self.enabled {
            return;
        }
        self.spans.extend(other.spans);
        self.instants.extend(other.instants);
    }

    /// Number of recorded events (spans + instants).
    pub fn len(&self) -> usize {
        self.spans.len() + self.instants.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.instants.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        t.span(Track::Rank(0), "wait", 0, 10, vec![]);
        t.instant(Track::Rank(0), "notify", 5, vec![]);
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_tracer_records() {
        let mut t = Tracer::enabled();
        t.span(Track::Rank(1), "wait", 3, 9, vec![("count", 2u64.into())]);
        t.instant(Track::Host(0), "cmd", 4, vec![]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.spans()[0].track, Track::Rank(1));
        assert_eq!(t.spans()[0].end_ps, 9);
    }

    #[test]
    fn absorb_merges() {
        let mut a = Tracer::enabled();
        let mut b = Tracer::enabled();
        b.span(Track::NetLink(0), "msg", 0, 1, vec![]);
        a.absorb(b);
        assert_eq!(a.spans().len(), 1);
    }

    #[test]
    fn track_taxonomy() {
        assert_eq!(Track::Rank(7).pid(), 0);
        assert_eq!(Track::Host(2).pid(), 1);
        assert_eq!(Track::NetLink(2).tid(), 2);
        assert_eq!(Track::Pcie(1).track_name(), "pcie 1");
        assert_eq!(Track::Net(3).pid(), 4);
        assert_eq!(Track::Net(3).track_name(), "net dev 3");
        assert_eq!(Track::Progress(1).pid(), 5);
        assert_eq!(Track::Progress(1).tid(), 1);
        assert_eq!(Track::Progress(1).track_name(), "progress 1");
    }
}
