//! Backend-conformance suite for `dcuda-launch`: the same world, workload
//! and seed must produce byte-identical protocol counters and window
//! checksums whether the cluster runs in one OS process (`--backend
//! inprocess`) or is split across a socket mesh (`--backend multiprocess`).
//!
//! The quick tier keeps `cargo test` fast; `DCUDA_FULL_TESTS=1` (set in CI)
//! grows the worlds and pushes payloads past the eager/rendezvous threshold
//! so the large-message path is covered too.

use dcuda::bench::json::Json;
use std::process::Command;
use std::time::Instant;

/// Protocol counters that must agree exactly across backends. Transport
/// counters (`net.*`) legitimately differ — sockets move frames, the
/// in-process plane does not — so they are deliberately not in this list.
const COUNTERS: &[&str] = &[
    "puts",
    "notifications",
    "matched",
    "barriers",
    "retries",
    "dups_suppressed",
];

fn full_tier() -> bool {
    std::env::var("DCUDA_FULL_TESTS").ok().as_deref() == Some("1")
}

/// Run `dcuda-launch` with the given arguments and parse the report it
/// prints to stdout.
fn run_report(argv: &[&str]) -> Json {
    let out = Command::new(env!("CARGO_BIN_EXE_dcuda-launch"))
        .args(argv)
        .output()
        .expect("spawn dcuda-launch");
    assert!(
        out.status.success(),
        "dcuda-launch {argv:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).expect("utf-8 report");
    Json::parse(text.trim()).expect("report JSON")
}

fn counter(report: &Json, key: &str) -> u64 {
    report
        .get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("report missing counter {key:?}"))
}

/// Run one workload shape on both backends and assert the RunReports agree.
fn assert_backends_agree(workload: &str, iters: u32, payload: usize, ranks_per_device: u32) {
    let iters = iters.to_string();
    let payload = payload.to_string();
    let rpd = ranks_per_device.to_string();
    let base = [
        "--procs",
        "2",
        "--devices-per-proc",
        "1",
        "--ranks-per-device",
        rpd.as_str(),
        "--workload",
        workload,
        "--iters",
        iters.as_str(),
        "--payload",
        payload.as_str(),
    ];
    let mut inproc_args = vec!["--backend", "inprocess"];
    inproc_args.extend_from_slice(&base);
    let mut multi_args = vec!["--backend", "multiprocess"];
    multi_args.extend_from_slice(&base);

    let inproc = run_report(&inproc_args);
    let multi = run_report(&multi_args);

    for &key in COUNTERS {
        assert_eq!(
            counter(&inproc, key),
            counter(&multi, key),
            "{workload}: counter {key:?} diverges between backends"
        );
    }
    let sum_in = inproc.get("checksum").and_then(Json::as_str);
    let sum_mp = multi.get("checksum").and_then(Json::as_str);
    assert!(
        sum_in.is_some(),
        "{workload}: inprocess report lacks checksum"
    );
    assert_eq!(sum_in, sum_mp, "{workload}: window checksum diverges");

    // Guard against a vacuous pass: the workload must actually communicate,
    // and the multi-process run must actually have crossed sockets.
    assert!(
        counter(&inproc, "notifications") > 0,
        "{workload} is vacuous"
    );
    let frames = multi
        .get("net")
        .and_then(|n| n.get("frames_sent"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    assert!(frames > 0, "{workload}: no frames crossed the socket mesh");
}

/// Golden conformance: the pingpong microbenchmark (paper Figure 6 shape).
/// Full tier pushes the payload past EAGER_MAX so rendezvous is exercised.
#[test]
fn conformance_pingpong_backends_agree() {
    if full_tier() {
        assert_backends_agree("pingpong", 20, 4096, 8);
    } else {
        assert_backends_agree("pingpong", 5, 512, 4);
    }
}

/// Golden conformance: one stencil configuration with per-iteration world
/// barriers, so barrier tokens cross the mesh every round.
#[test]
fn conformance_stencil_backends_agree() {
    if full_tier() {
        assert_backends_agree("stencil", 10, 4096, 8);
    } else {
        assert_backends_agree("stencil", 4, 384, 3);
    }
}

/// The overlap microbenchmark — the headline workload `xtask launch` runs.
#[test]
fn conformance_overlap_backends_agree() {
    if full_tier() {
        assert_backends_agree("overlap", 20, 4096, 8);
    } else {
        assert_backends_agree("overlap", 6, 1024, 4);
    }
}

/// Orphan-cleanup regression: when a worker dies mid-run the coordinator
/// must fail fast (nonzero exit, bounded time) and reap the surviving
/// worker rather than hanging on a half-dead mesh.
#[test]
fn killed_worker_fails_fast_without_orphans() {
    let start = Instant::now();
    let out = Command::new(env!("CARGO_BIN_EXE_dcuda-launch"))
        .args([
            "--backend",
            "multiprocess",
            "--procs",
            "2",
            "--ranks-per-device",
            "4",
            "--workload",
            "overlap",
            "--iters",
            "5000",
            "--payload",
            "1024",
            "--die-proc",
            "1",
            "--timeout-secs",
            "30",
        ])
        .output()
        .expect("spawn dcuda-launch");
    let elapsed = start.elapsed();
    assert!(
        !out.status.success(),
        "a run with a dead worker must not report success: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(
        elapsed.as_secs() < 60,
        "coordinator took {elapsed:?} to notice the dead worker"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("worker"),
        "failure should name the dead worker, got: {stderr}"
    );
}
