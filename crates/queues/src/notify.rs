//! Device-side notification matching (paper §III-C, "Notification Matching").
//!
//! Remote memory accesses with target notification enqueue a
//! [`Notification`] at the target rank. The target waits (or tests) for a
//! given number of notifications matching a (window, source rank, tag) query
//! where each position may be a wildcard. Matching is performed **in order of
//! arrival**; matched notifications are removed and the queue is compacted so
//! mismatched notifications keep their arrival order for later queries —
//! exactly the behaviour of the paper's eight-thread shuffle-reduction
//! matcher, minus the hardware.

use crate::spsc::Receiver;
use std::collections::VecDeque;

/// Wildcard value usable in any [`Query`] position (`DCUDA_ANY_SOURCE`,
/// `DCUDA_ANY_TAG`, `DCUDA_ANY_WIN` in the paper's API).
pub const ANY: u32 = u32::MAX;

/// A notification enqueued at the target of a notified put/get.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Notification {
    /// Window the remote access targeted.
    pub win: u32,
    /// Origin rank of the access.
    pub source: u32,
    /// User tag carried by the access.
    pub tag: u32,
}

/// A matching query; `ANY` in a position matches every value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Query {
    /// Window filter.
    pub win: u32,
    /// Source-rank filter.
    pub source: u32,
    /// Tag filter.
    pub tag: u32,
}

impl Query {
    /// A query matching every notification.
    pub const WILDCARD: Query = Query {
        win: ANY,
        source: ANY,
        tag: ANY,
    };

    /// Does `n` satisfy this query?
    #[inline]
    pub fn matches(&self, n: &Notification) -> bool {
        (self.win == ANY || self.win == n.win)
            && (self.source == ANY || self.source == n.source)
            && (self.tag == ANY || self.tag == n.tag)
    }
}

/// In-order wildcard matching over a pending buffer — the semantic core of
/// the device-side matcher, shared with the discrete-event simulation (which
/// models the queue's *timing* separately).
///
/// If at least `count` notifications match `query`, removes exactly the
/// first `count` matches (arrival order), compacts the rest in place, and
/// returns the matches together with the number of entries scanned.
/// Otherwise consumes nothing and returns `None` (the scan count is lost to
/// the caller on failure by design: the paper's matcher re-scans on every
/// poll).
pub fn match_in_order(
    pending: &mut VecDeque<Notification>,
    query: Query,
    count: usize,
) -> Option<(Vec<Notification>, usize)> {
    if count == 0 {
        return Some((Vec::new(), 0));
    }
    let mut found = 0usize;
    let mut last_idx = 0usize;
    let mut scanned = 0usize;
    for (i, n) in pending.iter().enumerate() {
        scanned += 1;
        if query.matches(n) {
            found += 1;
            if found == count {
                last_idx = i;
                break;
            }
        }
    }
    if found < count {
        return None;
    }
    let mut matched = Vec::with_capacity(count);
    let mut keep = VecDeque::with_capacity(pending.len() - count);
    for (i, n) in pending.drain(..).enumerate() {
        if i <= last_idx && query.matches(&n) && matched.len() < count {
            matched.push(n);
        } else {
            keep.push_back(n);
        }
    }
    *pending = keep;
    Some((matched, scanned))
}

/// Consumer-side matcher over a notification ring.
///
/// Owns the ring's receive endpoint plus the buffer of notifications that
/// arrived but did not match past queries. Matching is served by the
/// [`IndexedMatcher`](crate::IndexedMatcher) — O(matches) host cost — while
/// `scanned_total` still reports the *modeled* linear-scan work, exactly as
/// the paper's re-scanning matcher would incur it.
pub struct NotificationMatcher {
    rx: Receiver<Notification>,
    pending: crate::IndexedMatcher,
    /// Notifications matched over the matcher's lifetime.
    pub matched_total: u64,
    /// Notifications scanned (including mismatches re-buffered) — the
    /// paper's matching cost is proportional to this.
    pub scanned_total: u64,
}

impl NotificationMatcher {
    /// Wrap the receive endpoint of a notification ring.
    pub fn new(rx: Receiver<Notification>) -> Self {
        NotificationMatcher {
            rx,
            pending: crate::IndexedMatcher::new(),
            matched_total: 0,
            scanned_total: 0,
        }
    }

    /// Pull everything currently published in the ring into the local
    /// buffer. Returns how many were drained.
    pub fn drain_ring(&mut self) -> usize {
        let mut n = 0;
        while let Ok(notif) = self.rx.try_recv() {
            self.pending.insert(notif);
            n += 1;
        }
        n
    }

    /// Test for `count` notifications matching `query`
    /// (`dcuda_test_notifications`). If at least `count` matches are
    /// buffered, removes exactly the first `count` of them (in arrival
    /// order), compacts the rest, and returns them. Otherwise consumes
    /// nothing and returns `None`.
    pub fn try_match(&mut self, query: Query, count: usize) -> Option<Vec<Notification>> {
        self.drain_ring();
        match self.pending.try_match(query, count) {
            Some((matched, scanned)) => {
                self.scanned_total += scanned as u64;
                self.matched_total += matched.len() as u64;
                Some(matched)
            }
            None => {
                // The scan work accrues even when the match fails (the
                // paper's matcher re-reads the queue on every poll).
                self.scanned_total += self.pending.failed_scan_cost() as u64;
                None
            }
        }
    }

    /// Number of notifications buffered but not yet matched.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spsc::channel;

    fn notif(win: u32, source: u32, tag: u32) -> Notification {
        Notification { win, source, tag }
    }

    fn setup(notifs: &[Notification]) -> NotificationMatcher {
        let (mut tx, rx) = channel(64);
        for &n in notifs {
            tx.try_send(n).unwrap();
        }
        // Keep the sender alive past setup by leaking into the matcher's
        // tests? Dropping is fine: buffered entries remain readable.
        std::mem::forget(tx);
        NotificationMatcher::new(rx)
    }

    #[test]
    fn exact_match_consumes() {
        let mut m = setup(&[notif(1, 2, 3)]);
        let got = m.try_match(
            Query {
                win: 1,
                source: 2,
                tag: 3,
            },
            1,
        );
        assert_eq!(got.unwrap(), vec![notif(1, 2, 3)]);
        assert_eq!(m.pending_len(), 0);
        assert_eq!(m.matched_total, 1);
    }

    #[test]
    fn insufficient_matches_consume_nothing() {
        let mut m = setup(&[notif(1, 2, 3)]);
        let got = m.try_match(Query::WILDCARD, 2);
        assert!(got.is_none());
        assert_eq!(m.pending_len(), 1, "nothing consumed on failure");
    }

    #[test]
    fn wildcard_source_matches_any() {
        let mut m = setup(&[notif(1, 5, 3), notif(1, 9, 3)]);
        let q = Query {
            win: 1,
            source: ANY,
            tag: 3,
        };
        let got = m.try_match(q, 2).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].source, 5, "arrival order preserved");
        assert_eq!(got[1].source, 9);
    }

    #[test]
    fn mismatches_are_compacted_in_order() {
        let mut m = setup(&[
            notif(1, 0, 7), // mismatch (tag)
            notif(1, 0, 9), // match
            notif(2, 0, 9), // mismatch (win)
            notif(1, 1, 9), // match
            notif(1, 2, 9), // would match but beyond count
        ]);
        let q = Query {
            win: 1,
            source: ANY,
            tag: 9,
        };
        let got = m.try_match(q, 2).unwrap();
        assert_eq!(got, vec![notif(1, 0, 9), notif(1, 1, 9)]);
        // Compaction keeps the rest in arrival order.
        assert_eq!(m.pending_len(), 3);
        let rest = m.try_match(Query::WILDCARD, 3).unwrap();
        assert_eq!(rest, vec![notif(1, 0, 7), notif(2, 0, 9), notif(1, 2, 9)]);
    }

    #[test]
    fn zero_count_always_succeeds() {
        let mut m = setup(&[]);
        assert_eq!(m.try_match(Query::WILDCARD, 0), Some(Vec::new()));
    }

    #[test]
    fn matching_across_multiple_queries() {
        // The stencil pattern: wait for left+right neighbors by tag.
        let mut m = setup(&[notif(0, 3, 42), notif(0, 5, 42)]);
        let q = Query {
            win: 0,
            source: ANY,
            tag: 42,
        };
        assert!(m.try_match(q, 2).is_some());
        assert!(m.try_match(q, 1).is_none(), "queue drained");
    }

    #[test]
    fn drain_picks_up_late_arrivals() {
        let (mut tx, rx) = channel(8);
        let mut m = NotificationMatcher::new(rx);
        assert!(m.try_match(Query::WILDCARD, 1).is_none());
        tx.try_send(notif(0, 0, 0)).unwrap();
        assert!(m.try_match(Query::WILDCARD, 1).is_some());
    }

    #[test]
    fn scanned_counter_tracks_work() {
        let mut m = setup(&[notif(9, 9, 9), notif(1, 1, 1)]);
        let q = Query {
            win: 1,
            source: 1,
            tag: 1,
        };
        m.try_match(q, 1).unwrap();
        assert_eq!(m.scanned_total, 2, "scanned the mismatch then the match");
    }
}
