//! Deadlock and lost-wakeup detection: a wait-for graph over blocked ranks.
//!
//! When the simulator's event loop quiesces with unfinished ranks (or a
//! diagnostic pass inspects a stuck threaded cluster), each blocked rank
//! contributes a node with *wildcard-aware* wait edges:
//!
//! * a rank in `wait_notifications` with a concrete `source` waits on
//!   exactly that rank; with the `ANY` wildcard it waits on *every* other
//!   rank (any of them could still send a matching notification — the
//!   window and tag never narrow the candidate set, since any rank may
//!   target any window/tag);
//! * a rank in a barrier waits on the ranks that have not yet entered;
//! * a rank draining a flush waits on the host/network, not on ranks
//!   (recorded for the report, contributes no rank edges).
//!
//! [`WaitForGraph::analyze`] computes the *hopeless set* — the greatest set
//! of blocked ranks none of whose candidates can ever unblock them (every
//! candidate is finished or itself hopeless) — plus presentation-friendly
//! cycles inside that set and the "no matching sender exists" liveness
//! lint (all candidates already finished).

use dcuda_queues::{Query, ANY};

/// Bit 31 of a notification tag marks the runtime's reserved collective
/// tag space (`dcuda_rt::COLL_TAG_BIT`; mirrored here because the analyzer
/// must not depend on the runtime crate). A wait on such a tag is an
/// internal step of a collective schedule — e.g. a dissemination-barrier
/// round — not an application-level wait, and the report labels it so.
const COLL_TAG_BIT: u32 = 1 << 31;

/// Why a rank is blocked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaitReason {
    /// Blocked in `wait_notifications` for `want` more notifications
    /// matching `query`.
    Notification {
        /// The (possibly wildcarded) query.
        query: Query,
        /// Outstanding match count.
        want: u64,
    },
    /// Blocked in a barrier; `missing` ranks have not entered.
    Barrier {
        /// Ranks not yet at the barrier.
        missing: Vec<u32>,
    },
    /// Blocked draining a flush (waits on the host, not on ranks).
    Flush,
}

impl std::fmt::Display for WaitReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaitReason::Notification { query, want } => {
                let field = |v: u32| -> String {
                    if v == ANY {
                        "*".into()
                    } else {
                        v.to_string()
                    }
                };
                if query.tag != ANY && query.tag & COLL_TAG_BIT != 0 {
                    write!(
                        f,
                        "internal collective step {} (win {}, source {}, {want} outstanding)",
                        query.tag & !COLL_TAG_BIT,
                        field(query.win),
                        field(query.source),
                    )
                } else {
                    write!(
                        f,
                        "wait_notifications(win {}, source {}, tag {}, {want} outstanding)",
                        field(query.win),
                        field(query.source),
                        field(query.tag),
                    )
                }
            }
            WaitReason::Barrier { missing } => write!(f, "barrier (missing {missing:?})"),
            WaitReason::Flush => write!(f, "flush drain"),
        }
    }
}

#[derive(Debug, Clone)]
struct Waiter {
    rank: u32,
    reason: WaitReason,
}

/// Wait-for graph builder; populate with one entry per non-finished rank.
#[derive(Debug, Clone, Default)]
pub struct WaitForGraph {
    world: u32,
    waiters: Vec<Waiter>,
    done: Vec<u32>,
}

/// Analysis result.
#[derive(Debug, Clone, Default)]
pub struct DeadlockReport {
    /// Ranks that can never be unblocked (every candidate sender is
    /// finished or itself hopeless).
    pub hopeless: Vec<u32>,
    /// Ranks whose candidate senders are *all finished* — the
    /// "no matching sender exists" liveness lint; paired with the
    /// candidates that are gone.
    pub no_sender: Vec<(u32, Vec<u32>)>,
    /// Wait cycles inside the hopeless set (each a closed walk
    /// `r0 -> r1 -> ... -> r0`), for presentation.
    pub cycles: Vec<Vec<u32>>,
    /// Ranks blocked on a flush at quiescence (diagnostic).
    pub flush_blocked: Vec<u32>,
    /// Human-readable wait description per blocked rank (collective-tag
    /// aware: waits in the reserved bit-31 tag space render as
    /// "internal collective step N").
    pub waits: Vec<(u32, String)>,
}

impl DeadlockReport {
    /// True when at least one rank can provably never make progress.
    pub fn is_deadlock(&self) -> bool {
        !self.hopeless.is_empty()
    }
}

impl std::fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.is_deadlock() && self.flush_blocked.is_empty() {
            return write!(f, "no deadlock detected");
        }
        writeln!(f, "deadlock analysis:")?;
        if !self.hopeless.is_empty() {
            writeln!(f, "  hopeless ranks: {:?}", self.hopeless)?;
        }
        for (rank, wait) in &self.waits {
            if self.hopeless.contains(rank) {
                writeln!(f, "  rank {rank} blocked in {wait}")?;
            }
        }
        for (rank, gone) in &self.no_sender {
            writeln!(
                f,
                "  rank {rank}: no matching sender exists (candidates {gone:?} all finished)"
            )?;
        }
        for cycle in &self.cycles {
            let mut walk: Vec<String> = cycle.iter().map(|r| r.to_string()).collect();
            if let Some(first) = walk.first().cloned() {
                walk.push(first);
            }
            writeln!(f, "  wait cycle: {}", walk.join(" -> "))?;
        }
        if !self.flush_blocked.is_empty() {
            writeln!(f, "  blocked on flush: {:?}", self.flush_blocked)?;
        }
        Ok(())
    }
}

impl WaitForGraph {
    /// Graph over a world of `world` ranks.
    pub fn new(world: u32) -> Self {
        WaitForGraph {
            world,
            waiters: Vec::new(),
            done: Vec::new(),
        }
    }

    /// Record a blocked rank.
    pub fn add_waiter(&mut self, rank: u32, reason: WaitReason) {
        self.waiters.push(Waiter { rank, reason });
    }

    /// Record a finished rank (can never send again).
    pub fn set_done(&mut self, rank: u32) {
        self.done.push(rank);
    }

    /// Candidate senders that could unblock `rank` given `reason` —
    /// wildcard-aware: a concrete source narrows to one rank, `ANY` means
    /// every other rank is a candidate.
    fn candidates(&self, rank: u32, reason: &WaitReason) -> Option<Vec<u32>> {
        match reason {
            WaitReason::Notification { query, .. } => {
                if query.source == ANY {
                    Some((0..self.world).filter(|&r| r != rank).collect())
                } else {
                    Some(vec![query.source])
                }
            }
            WaitReason::Barrier { missing } => Some(missing.clone()),
            WaitReason::Flush => None,
        }
    }

    /// Run the analysis. See the module docs for semantics.
    pub fn analyze(&self) -> DeadlockReport {
        let mut report = DeadlockReport {
            waits: self
                .waiters
                .iter()
                .map(|w| (w.rank, w.reason.to_string()))
                .collect(),
            ..DeadlockReport::default()
        };
        let done = |r: u32| self.done.contains(&r);
        let blocked: Vec<(u32, Vec<u32>)> = self
            .waiters
            .iter()
            .filter_map(|w| {
                self.candidates(w.rank, &w.reason)
                    .map(|c| (w.rank, c))
                    .or_else(|| {
                        report.flush_blocked.push(w.rank);
                        None
                    })
            })
            .collect();

        // No-sender lint: every candidate finished.
        for (rank, cands) in &blocked {
            if !cands.is_empty() && cands.iter().all(|&c| done(c)) {
                report.no_sender.push((*rank, cands.clone()));
            }
        }

        // Hopeless set: greatest fixpoint — start from all blocked ranks,
        // evict anyone with a candidate that is neither done nor hopeless
        // (that candidate is running and might still send).
        let mut hopeless: Vec<u32> = blocked.iter().map(|(r, _)| *r).collect();
        loop {
            let before = hopeless.len();
            hopeless = blocked
                .iter()
                .filter(|(r, cands)| {
                    hopeless.contains(r) && cands.iter().all(|&c| done(c) || hopeless.contains(&c))
                })
                .map(|(r, _)| *r)
                .collect();
            if hopeless.len() == before {
                break;
            }
        }
        report.hopeless = hopeless;

        // Presentation cycles inside the hopeless set: follow the first
        // hopeless candidate from each rank until a node repeats.
        let in_set = |r: u32| report.hopeless.contains(&r);
        let next_of = |r: u32| -> Option<u32> {
            blocked
                .iter()
                .find(|(b, _)| *b == r)
                .and_then(|(_, cands)| cands.iter().copied().find(|&c| in_set(c)))
        };
        let mut seen_in_cycles: Vec<u32> = Vec::new();
        for &start in &report.hopeless {
            if seen_in_cycles.contains(&start) {
                continue;
            }
            let mut walk = vec![start];
            let mut cur = start;
            while let Some(nxt) = next_of(cur) {
                if let Some(pos) = walk.iter().position(|&r| r == nxt) {
                    let cycle: Vec<u32> = walk[pos..].to_vec();
                    seen_in_cycles.extend_from_slice(&cycle);
                    report.cycles.push(cycle);
                    break;
                }
                walk.push(nxt);
                cur = nxt;
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(source: u32) -> Query {
        Query {
            win: 0,
            source,
            tag: ANY,
        }
    }

    #[test]
    fn mutual_wait_is_a_cycle() {
        let mut g = WaitForGraph::new(2);
        g.add_waiter(
            0,
            WaitReason::Notification {
                query: q(1),
                want: 1,
            },
        );
        g.add_waiter(
            1,
            WaitReason::Notification {
                query: q(0),
                want: 1,
            },
        );
        let r = g.analyze();
        assert!(r.is_deadlock());
        assert_eq!(r.hopeless, vec![0, 1]);
        assert_eq!(r.cycles.len(), 1);
    }

    #[test]
    fn running_sender_means_no_deadlock() {
        // Rank 0 waits on rank 1, which is neither blocked nor done.
        let mut g = WaitForGraph::new(3);
        g.add_waiter(
            0,
            WaitReason::Notification {
                query: q(1),
                want: 1,
            },
        );
        let r = g.analyze();
        assert!(!r.is_deadlock());
    }

    #[test]
    fn finished_sender_is_no_sender_lint() {
        let mut g = WaitForGraph::new(2);
        g.add_waiter(
            0,
            WaitReason::Notification {
                query: q(1),
                want: 1,
            },
        );
        g.set_done(1);
        let r = g.analyze();
        assert!(r.is_deadlock());
        assert_eq!(r.no_sender, vec![(0, vec![1])]);
    }

    #[test]
    fn wildcard_waits_on_everyone() {
        // Rank 0 waits with ANY; rank 1 finished but rank 2 still runs —
        // not hopeless. Once rank 2 is also done, hopeless + no-sender.
        let mut g = WaitForGraph::new(3);
        g.add_waiter(
            0,
            WaitReason::Notification {
                query: q(ANY),
                want: 1,
            },
        );
        g.set_done(1);
        assert!(!g.analyze().is_deadlock());
        g.set_done(2);
        let r = g.analyze();
        assert!(r.is_deadlock());
        assert_eq!(r.no_sender, vec![(0, vec![1, 2])]);
    }

    #[test]
    fn barrier_missing_rank_edges() {
        let mut g = WaitForGraph::new(3);
        g.add_waiter(0, WaitReason::Barrier { missing: vec![2] });
        g.add_waiter(1, WaitReason::Barrier { missing: vec![2] });
        g.add_waiter(
            2,
            WaitReason::Notification {
                query: q(ANY),
                want: 1,
            },
        );
        let r = g.analyze();
        // 2 waits on 0 and 1 (wildcard), both of which wait on 2: all hopeless.
        assert!(r.is_deadlock());
        assert_eq!(r.hopeless, vec![0, 1, 2]);
    }

    #[test]
    fn collective_tag_waits_are_labeled_as_internal_steps() {
        // A mutual wait where both tags sit in the reserved bit-31 space
        // (e.g. a stuck dissemination-barrier round): the report must call
        // them internal collective steps, with the step number decoded.
        let mut g = WaitForGraph::new(2);
        let coll_q = |source: u32, step: u32| Query {
            win: 3,
            source,
            tag: COLL_TAG_BIT | step,
        };
        g.add_waiter(
            0,
            WaitReason::Notification {
                query: coll_q(1, 2),
                want: 1,
            },
        );
        g.add_waiter(
            1,
            WaitReason::Notification {
                query: coll_q(0, 2),
                want: 1,
            },
        );
        let r = g.analyze();
        assert!(r.is_deadlock());
        let text = r.to_string();
        assert!(
            text.contains("rank 0 blocked in internal collective step 2"),
            "missing collective label:\n{text}"
        );
        assert!(
            !text.contains("wait_notifications"),
            "raw tag leaked:\n{text}"
        );
        // An application-space tag keeps the plain rendering.
        let plain = WaitReason::Notification {
            query: Query {
                win: 0,
                source: ANY,
                tag: 7,
            },
            want: 2,
        };
        assert_eq!(
            plain.to_string(),
            "wait_notifications(win 0, source *, tag 7, 2 outstanding)"
        );
    }

    #[test]
    fn flush_blocked_is_reported_not_deadlocked() {
        let mut g = WaitForGraph::new(2);
        g.add_waiter(0, WaitReason::Flush);
        let r = g.analyze();
        assert!(!r.is_deadlock());
        assert_eq!(r.flush_blocked, vec![0]);
    }
}
