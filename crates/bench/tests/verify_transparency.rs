//! Golden transparency test: attaching the invariant monitor (`figures
//! --verify`) must leave every reported series byte-identical — the
//! monitor observes the simulation, it never schedules events or alters
//! timing. A run with a violation panics instead, so a passing identical
//! series also certifies the figure workload monitor-clean.

use dcuda_bench::{fig6, Effort};
use dcuda_core::SystemSpec;

fn series() -> String {
    let spec = SystemSpec::greina();
    fig6(&spec, Effort::Quick)
        .iter()
        .map(|r| {
            format!(
                "{:?} {} {} {}\n",
                r.placement, r.result.bytes, r.result.latency_us, r.result.bandwidth_mbs
            )
        })
        .collect()
}

#[test]
fn fig6_series_identical_with_monitor_attached() {
    // Both runs live in one test so the process-global flag cannot leak
    // into unrelated tests.
    let plain = series();
    dcuda_core::verify_mode::enable();
    let verified = series();
    dcuda_core::verify_mode::disable();
    assert_eq!(plain, verified, "verify mode changed a reported series");
}
