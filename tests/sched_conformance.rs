//! Scheduler conformance: a multi-tenant storm must be invisible to each
//! job.
//!
//! The contract under test is the tentpole isolation property of
//! `dcuda-sched`: a job admitted to the shared server — queued behind
//! strangers, gang-scheduled onto whatever devices were free, racing
//! dozens of neighbor worlds — must produce the *byte-identical* checksum
//! and protocol counters it produces when run alone on a fresh cluster.
//! Three suites pin it:
//!
//! * **Storm vs solo** — a seeded storm of mixed jobs on the shared
//!   scheduler, each compared field-for-field against its solo golden,
//!   through both the direct API and the TCP control plane.
//! * **Fault isolation** — `dcuda_fabric::storm_victims` picks seeded
//!   victims that panic mid-stream (`poison:<iter>`); every victim must
//!   fail typed, and every survivor's report must still match its golden
//!   exactly, across seeds and on both planes.
//! * **Cancel/drain hygiene** — random cancel storms followed by `drain`
//!   leave the ledger fully free, every job terminal, and the stats ledger
//!   balanced (`completed + failed + cancelled = submitted - rejected`):
//!   cancel and drain never leak slots, windows or scratch.

use dcuda::des::check::{forall, full_tier, Gen};
use dcuda::fabric::storm_victims;
use dcuda::sched::{
    run_solo, spawn_server, CancelVerdict, JobEnd, JobProgram, JobResult, JobSpec, JobStatus,
    SchedError, SchedLimits, Scheduler,
};

/// The seeded storm population: program, gang shape, payload and data seed
/// all derived from `(storm_seed, index)` so every run of a given seed
/// builds the identical job list.
fn storm_spec(storm_seed: u64, i: u64) -> JobSpec {
    let mut g = Gen::from_seed(storm_seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let program = *g.choose(&[
        JobProgram::Ring,
        JobProgram::PingPong,
        JobProgram::Allreduce,
    ]);
    let mut spec = JobSpec::small(format!("storm-{i}"), program);
    spec.devices = 1 + g.u32_below(2);
    spec.ranks_per_device = 1 + g.u32_below(3);
    spec.iters = 2 + g.u32_below(4);
    spec.payload = 32 + 8 * g.usize_below(12);
    spec.seed = g.u64();
    spec.priority = g.u32_below(3) as u8;
    spec
}

/// Assert a scheduler-run report is byte-identical to the job's solo
/// golden: same end, same checksum, same protocol counters (`net.*` is the
/// only exempt family, and [`dcuda::sched::JobCounters`] excludes it by
/// construction).
fn assert_matches_solo(shared: &JobResult, spec: &JobSpec) {
    let solo = run_solo(spec).expect("solo golden runs");
    assert_eq!(
        solo.end,
        JobEnd::Completed,
        "{}: solo golden failed: {:?}",
        spec.name,
        solo.error
    );
    assert_eq!(
        shared.end,
        JobEnd::Completed,
        "{}: storm run failed: {:?}",
        spec.name,
        shared.error
    );
    assert_eq!(
        shared.checksum, solo.checksum,
        "{}: storm checksum diverged from solo golden",
        spec.name
    );
    assert_eq!(
        shared.counters, solo.counters,
        "{}: storm protocol counters diverged from solo golden",
        spec.name
    );
}

#[test]
fn storm_matches_solo_inprocess() {
    let jobs: u64 = if full_tier("120-job inprocess storm") {
        120
    } else {
        24
    };
    let sched = Scheduler::new(2, 4, SchedLimits::default());
    let specs: Vec<JobSpec> = (0..jobs).map(|i| storm_spec(0xA11CE, i)).collect();
    let ids: Vec<u64> = specs
        .iter()
        .map(|s| sched.submit(s.clone()).expect("spec within quotas"))
        .collect();
    for (id, spec) in ids.iter().zip(&specs) {
        let shared = sched.wait(*id).expect("job exists");
        assert_matches_solo(&shared, spec);
    }
    let stats = sched.drain();
    assert_eq!(stats.completed, jobs);
    assert_eq!(stats.failed + stats.cancelled + stats.rejected, 0);
    assert_eq!(stats.running, 0);
    assert_eq!(stats.slots_busy, 0);
    assert!(
        stats.peak_slots_busy <= stats.slots_total,
        "ledger oversubscribed: {} busy of {}",
        stats.peak_slots_busy,
        stats.slots_total
    );
}

#[test]
fn storm_matches_solo_over_tcp() {
    let jobs: u64 = if full_tier("60-job tcp storm") {
        60
    } else {
        12
    };
    let sched = Scheduler::new(2, 4, SchedLimits::default());
    let handle = spawn_server(sched, "127.0.0.1:0").expect("bind control plane");
    let client = handle.client();
    let specs: Vec<JobSpec> = (0..jobs).map(|i| storm_spec(0xBEEF, i)).collect();
    let ids: Vec<u64> = specs
        .iter()
        .map(|s| client.submit(s).expect("spec within quotas"))
        .collect();
    for (id, spec) in ids.iter().zip(&specs) {
        let shared = client.wait(*id).expect("wait over the wire");
        assert_matches_solo(&shared, spec);
    }
    let stats = client.drain().expect("drain over the wire");
    assert_eq!(stats.completed, jobs);
    assert_eq!(stats.slots_busy, 0);
    handle.shutdown().expect("server stops");
}

/// Run a storm where `storm_victims(seed, ..)` picks jobs that panic
/// mid-stream; assert victims fail typed and every survivor is
/// byte-identical to its solo golden.
fn isolation_storm(seed: u64, jobs: u64, kills: usize, tcp: bool) {
    let victims = storm_victims(seed, jobs as usize, kills);
    let specs: Vec<JobSpec> = (0..jobs)
        .map(|i| {
            let mut s = storm_spec(seed, i);
            if victims.contains(&(i as usize)) {
                s.name = format!("victim-{i}");
                s.program = JobProgram::Poison { at_iter: 1 };
            }
            s
        })
        .collect();
    let sched = Scheduler::new(2, 4, SchedLimits::default());
    let results: Vec<JobResult> = if tcp {
        let handle = spawn_server(sched, "127.0.0.1:0").expect("bind control plane");
        let client = handle.client();
        let ids: Vec<u64> = specs
            .iter()
            .map(|s| client.submit(s).expect("within quotas"))
            .collect();
        let out = ids
            .iter()
            .map(|id| client.wait(*id).expect("wait over the wire"))
            .collect();
        handle.shutdown().expect("server stops");
        out
    } else {
        let ids: Vec<u64> = specs
            .iter()
            .map(|s| sched.submit(s.clone()).expect("within quotas"))
            .collect();
        let out = ids
            .iter()
            .map(|id| sched.wait(*id).expect("job exists"))
            .collect();
        let stats = sched.drain();
        assert_eq!(
            stats.failed, kills as u64,
            "every victim fails, nothing else"
        );
        assert_eq!(stats.slots_busy, 0, "failed jobs leak no capacity");
        out
    };
    for (i, (r, spec)) in results.iter().zip(&specs).enumerate() {
        if victims.contains(&i) {
            assert_eq!(r.end, JobEnd::Failed, "victim {i} must fail");
            assert!(
                r.error.is_some(),
                "victim {i} must carry a typed error, got {r:?}"
            );
        } else {
            assert_matches_solo(r, spec);
        }
    }
}

#[test]
fn seeded_faults_leave_neighbors_untouched_inprocess() {
    let seeds: &[u64] = if full_tier("isolation sweep over 5 seeds") {
        &[1, 2, 3, 4, 5]
    } else {
        &[1, 2]
    };
    for &seed in seeds {
        isolation_storm(seed, 24, 4, false);
    }
}

#[test]
fn seeded_faults_leave_neighbors_untouched_over_tcp() {
    let (jobs, kills) = if full_tier("24-job tcp isolation storm") {
        (24, 4)
    } else {
        (12, 2)
    };
    isolation_storm(7, jobs, kills, true);
}

#[test]
fn cancel_tears_down_only_the_cancelled_job() {
    let sched = Scheduler::new(1, 4, SchedLimits::default());
    // A long-running victim next to a short neighbor on the same device.
    let mut long = JobSpec::small("long", JobProgram::Ring);
    long.ranks_per_device = 2;
    long.iters = 200_000;
    let neighbor = storm_spec(0xCAFE, 0);
    let mut neighbor = JobSpec {
        devices: 1,
        ranks_per_device: 2,
        ..neighbor
    };
    neighbor.name = "neighbor".into();
    let long_id = sched.submit(long).expect("admits");
    let neighbor_id = sched.submit(neighbor.clone()).expect("admits");
    // Let the victim reach Running before cancelling mid-stream.
    loop {
        match sched.status(long_id).expect("known job") {
            JobStatus::Running => break,
            JobStatus::Done(r) => panic!("200k-iter job finished before cancel: {r:?}"),
            JobStatus::Queued { .. } => std::thread::yield_now(),
        }
    }
    let verdict = sched.cancel(long_id).expect("known job");
    let r = sched.wait(long_id).expect("known job");
    match verdict {
        CancelVerdict::Requested => {
            // The runner arbitrates; mid-stream at 200k iterations the
            // cancel wins in practice, but either way the job is terminal
            // and a cancelled job reports no checksum.
            if r.end == JobEnd::Cancelled {
                assert_eq!(r.checksum, 0);
                assert!(r.error.is_none(), "cancellation is not an error: {r:?}");
            }
        }
        CancelVerdict::AlreadyDone(end) => assert_eq!(r.end, end),
    }
    // The neighbor world never noticed.
    let n = sched.wait(neighbor_id).expect("known job");
    assert_matches_solo(&n, &neighbor);
    let stats = sched.drain();
    assert_eq!(stats.running, 0);
    assert_eq!(stats.slots_busy, 0, "cancel leaked leased slots");
}

#[test]
fn cancel_and_drain_never_leak() {
    let cases = if full_tier("20-case cancel/drain sweep") {
        20
    } else {
        6
    };
    forall("cancel_drain_ledger", cases, |g| {
        let sched = Scheduler::new(1, 2, SchedLimits::default());
        let storm_seed = g.u64();
        let jobs = 6 + g.usize_below(6);
        let ids: Vec<u64> = (0..jobs)
            .map(|i| {
                let mut s = storm_spec(storm_seed, i as u64);
                s.devices = 1;
                s.ranks_per_device = 1 + g.u32_below(2);
                sched.submit(s).expect("fits the 1x2 cluster")
            })
            .collect();
        for &id in &ids {
            if g.bool() {
                sched.cancel(id).expect("known job");
            }
        }
        let stats = sched.drain();
        assert_eq!(stats.running, 0);
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.slots_busy, 0, "drain left leased slots behind");
        assert!(stats.peak_slots_busy <= stats.slots_total, "oversubscribed");
        assert_eq!(
            stats.completed + stats.failed + stats.cancelled,
            stats.submitted - stats.rejected,
            "every accepted job must end terminal"
        );
        for &id in &ids {
            match sched.status(id).expect("known job") {
                JobStatus::Done(_) => {}
                other => panic!("job {id} not terminal after drain: {other:?}"),
            }
        }
        // Draining schedulers refuse new work, typed.
        let late = sched.submit(JobSpec::small("late", JobProgram::Ring));
        assert!(matches!(late, Err(SchedError::Draining)));
    });
}

#[test]
fn quota_rejections_are_typed_on_both_paths() {
    let sched = Scheduler::new(1, 2, SchedLimits::default());
    let mut wide = JobSpec::small("wide", JobProgram::Ring);
    wide.devices = 4;
    let direct = sched.submit(wide.clone());
    assert!(
        matches!(direct, Err(SchedError::NeverFits { cap_devices: 1, .. })),
        "impossible gangs reject at submit, not queue forever: {direct:?}"
    );

    let handle = spawn_server(sched, "127.0.0.1:0").expect("bind control plane");
    let client = handle.client();
    let first = client.submit(&wide).expect_err("rejected over the wire");
    let second = client.submit(&wide).expect_err("rejected over the wire");
    assert_eq!(
        first.to_string(),
        second.to_string(),
        "rejections must be deterministic"
    );
    assert!(matches!(first, SchedError::Control(ref msg) if msg.contains("never fit")));

    let mut fat = JobSpec::small("fat", JobProgram::Ring);
    fat.extra_window = usize::MAX / 2;
    let fat_err = client.submit(&fat).expect_err("window quota rejects");
    assert!(matches!(fat_err, SchedError::Control(ref msg) if msg.contains("window bytes")));

    // Rejections counted, nothing admitted, nothing leaked.
    let stats = client.stats().expect("stats over the wire");
    assert_eq!(stats.rejected, 4);
    assert_eq!(stats.admitted, 0);
    assert_eq!(stats.slots_busy, 0);
    handle.shutdown().expect("server stops");
}
