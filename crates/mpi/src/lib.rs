//! An MPI subset over the simulated fabric.
//!
//! The dCUDA runtime is "connected via MPI: the runtime system instances
//! control data movement and synchronization of any two ranks in the system"
//! (paper §III-A), and the paper's baselines are MPI-CUDA programs. This
//! crate provides the pieces both need:
//!
//! * [`plane::MessagePlane`] — nonblocking point-to-point with MPI envelope
//!   semantics: `(source, tag)` matching with wildcards, FIFO non-overtaking
//!   order, an unexpected-message queue, and delivery times supplied by the
//!   [`dcuda_fabric::Network`] model. The payload type is generic: the dCUDA
//!   runtime ships typed meta-information and raw data buffers; baselines
//!   ship bytes.
//! * [`collective`] — analytic timing models for binomial-tree barrier,
//!   broadcast and reduction (the paper's mini-apps "manually implement the
//!   broadcast and reduction collectives using a binary tree communication
//!   pattern", §IV-C).
//!
//! The model is *eager*: a message's delivery instant is fixed when it is
//! injected (send side serializes on the NIC immediately). OpenMPI's
//! rendezvous path for very large messages is not modeled; the evaluation
//! workloads exchange 1–16 kB messages, all far below rendezvous thresholds.
//!
//! # The executable plane
//!
//! The simulated [`MessagePlane`] answers *when* a message arrives in
//! virtual time. Its executable counterpart — the inter-host plane the
//! threaded runtime actually moves bytes over — lives in `dcuda-net` and is
//! re-exported here as [`Transport`] with its two backends:
//! [`InProcessPlane`] (shared-memory channels, one OS process) and
//! [`SocketPlane`] (a TCP mesh across the worker processes of a
//! `dcuda-launch` run, with real eager/rendezvous selection and credit
//! flow control — the mechanisms this crate only models analytically).

#![warn(missing_docs)]

pub mod collective;
pub mod plane;

pub use collective::{
    allgather_exit_times, allreduce_exit_times, barrier_exit_times, bcast_exit_times,
    reduce_exit_times, scatter_exit_times, HopCost,
};
pub use dcuda_net::{InProcessPlane, NetStats, SocketPlane, Transport};
pub use plane::{MessagePlane, MpiRank, RecvHandle, RecvOutcome, Tag};
