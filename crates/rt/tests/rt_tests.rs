//! End-to-end tests of the threaded runtime: the blocking API of the
//! paper's Figure 2 listing running on real threads and real lock-free
//! queues.

use dcuda_rt::{
    run_cluster, run_cluster_traced, try_run_cluster, Rank, RtConfig, RtError, RtQuery, Tag,
    WindowId,
};

fn cfg(devices: u32, ranks: u32) -> RtConfig {
    RtConfig {
        devices,
        ranks_per_device: ranks,
        windows: vec![4096],
        ring_capacity: 16,
        ..RtConfig::default()
    }
}

const W0: WindowId = WindowId(0);

#[test]
fn put_notify_wait_roundtrip_same_device() {
    let report = run_cluster(
        &cfg(1, 2),
        vec![
            Box::new(|ctx| {
                ctx.win_mut(W0)[0..4].copy_from_slice(&[1, 2, 3, 4]);
                ctx.put_notify(W0, Rank(1), 100, 0, 4, Tag(7));
                ctx.flush();
            }),
            Box::new(|ctx| {
                ctx.wait_notifications(RtQuery::exact(W0, Rank(0), Tag(7)), 1);
                assert_eq!(&ctx.win(W0)[100..104], &[1, 2, 3, 4]);
            }),
        ],
    );
    assert_eq!(report.puts, 1);
    assert_eq!(report.notifications, 1);
    assert_eq!(report.matched, 1);
}

#[test]
fn put_notify_crosses_devices() {
    run_cluster(
        &cfg(2, 1),
        vec![
            Box::new(|ctx| {
                ctx.win_mut(W0)[0] = 42;
                ctx.put_notify(W0, Rank(1), 0, 0, 1, Tag(3));
                ctx.flush();
            }),
            Box::new(|ctx| {
                ctx.wait_notifications(RtQuery::exact(W0, Rank(0), Tag(3)), 1);
                assert_eq!(ctx.win(W0)[0], 42);
            }),
        ],
    );
}

#[test]
fn pingpong_many_iterations() {
    const ITERS: u32 = 200;
    run_cluster(
        &cfg(2, 1),
        vec![
            Box::new(|ctx| {
                for i in 0..ITERS {
                    ctx.win_mut(W0)[0] = i as u8;
                    ctx.put_notify(W0, Rank(1), 0, 0, 1, Tag(1));
                    ctx.wait_notifications(RtQuery::exact(W0, Rank(1), Tag(2)), 1);
                    assert_eq!(ctx.win(W0)[1], i as u8, "echo mismatch at {i}");
                }
            }),
            Box::new(|ctx| {
                for _ in 0..ITERS {
                    ctx.wait_notifications(RtQuery::exact(W0, Rank(0), Tag(1)), 1);
                    let v = ctx.win(W0)[0];
                    ctx.win_mut(W0)[1] = v;
                    ctx.put_notify(W0, Rank(0), 1, 1, 1, Tag(2));
                }
            }),
        ],
    );
}

#[test]
fn barrier_orders_writes() {
    // Every rank writes a value, barriers, then puts it to rank 0, which
    // waits for all and checks. The barrier guarantees all are running.
    let devices = 2;
    let ranks = 3;
    let world = devices * ranks;
    let mut programs: Vec<dcuda_rt::cluster::RankProgram> = Vec::new();
    for r in 0..world {
        programs.push(Box::new(move |ctx| {
            ctx.barrier();
            if r != 0 {
                ctx.win_mut(W0)[0] = r as u8;
                ctx.put_notify(W0, Rank(0), r as usize, 0, 1, Tag(9));
            } else {
                ctx.wait_notifications(RtQuery::exact(W0, Rank::ANY, Tag(9)), (world - 1) as usize);
                for s in 1..world {
                    assert_eq!(ctx.win(W0)[s as usize], s as u8);
                }
            }
            ctx.barrier();
        }));
    }
    let report = run_cluster(&cfg(devices, ranks), programs);
    assert_eq!(report.barriers, 2);
}

#[test]
fn repeated_barriers_stay_in_step() {
    const ROUNDS: usize = 25;
    let devices = 2;
    let ranks = 2;
    let world = devices * ranks;
    let mut programs: Vec<dcuda_rt::cluster::RankProgram> = Vec::new();
    for r in 0..world {
        programs.push(Box::new(move |ctx| {
            for round in 0..ROUNDS {
                // Ring put: each rank tags with the round number.
                let dst = (r + 1) % world;
                ctx.win_mut(W0)[0] = round as u8;
                ctx.put_notify(W0, Rank(dst), 1, 0, 1, Tag(round as u32));
                ctx.wait_notifications(
                    RtQuery::exact(W0, Rank((r + world - 1) % world), Tag(round as u32)),
                    1,
                );
                assert_eq!(ctx.win(W0)[1], round as u8);
                ctx.barrier();
            }
        }));
    }
    run_cluster(&cfg(devices, ranks), programs);
}

#[test]
fn flush_makes_plain_puts_visible() {
    run_cluster(
        &cfg(2, 1),
        vec![
            Box::new(|ctx| {
                // Many un-notified puts, then one notified marker: the
                // runtime's in-order routing makes them all visible when the
                // marker matches.
                for i in 0..32usize {
                    ctx.win_mut(W0)[0] = i as u8;
                    ctx.put(W0, Rank(1), i, 0, 1);
                }
                ctx.flush();
                ctx.put_notify(W0, Rank(1), 100, 0, 1, Tag(5));
                ctx.flush();
            }),
            Box::new(|ctx| {
                ctx.wait_notifications(RtQuery::exact(W0, Rank(0), Tag(5)), 1);
                for i in 0..32usize {
                    assert_eq!(ctx.win(W0)[i], i as u8, "plain put {i} lost");
                }
            }),
        ],
    );
}

#[test]
fn wildcard_matching_with_compaction() {
    run_cluster(
        &cfg(1, 3),
        vec![
            Box::new(|ctx| {
                // Wait for tag 2 first although tag 1 arrives interleaved.
                ctx.wait_notifications(RtQuery::exact(W0, Rank::ANY, Tag(2)), 1);
                ctx.wait_notifications(RtQuery::exact(W0, Rank::ANY, Tag(1)), 1);
                // And a fully wildcard wait for the stragglers.
                ctx.wait_notifications(RtQuery::WILDCARD, 2);
            }),
            Box::new(|ctx| {
                ctx.put_notify(W0, Rank(0), 0, 0, 1, Tag(1));
                ctx.put_notify(W0, Rank(0), 1, 0, 1, Tag(3));
                ctx.flush();
            }),
            Box::new(|ctx| {
                ctx.put_notify(W0, Rank(0), 2, 0, 1, Tag(2));
                ctx.put_notify(W0, Rank(0), 3, 0, 1, Tag(4));
                ctx.flush();
            }),
        ],
    );
}

#[test]
fn wildcard_matrix_all_eight_combos() {
    // Every any/exact combination over (win, source, tag) must match a
    // notification from (win 1, rank 1, tag 7) — and an exact mismatch in
    // any position must not.
    let two_windows = RtConfig {
        devices: 1,
        ranks_per_device: 2,
        windows: vec![256, 256],
        ring_capacity: 16,
        ..RtConfig::default()
    };
    let report = run_cluster(
        &two_windows,
        vec![
            Box::new(|ctx| {
                let combos = [
                    RtQuery::exact(WindowId(1), Rank(1), Tag(7)),
                    RtQuery::exact(WindowId(1), Rank(1), Tag::ANY),
                    RtQuery::exact(WindowId(1), Rank::ANY, Tag(7)),
                    RtQuery::exact(WindowId(1), Rank::ANY, Tag::ANY),
                    RtQuery::exact(WindowId::ANY, Rank(1), Tag(7)),
                    RtQuery::exact(WindowId::ANY, Rank(1), Tag::ANY),
                    RtQuery::exact(WindowId::ANY, Rank::ANY, Tag(7)),
                    RtQuery::WILDCARD,
                ];
                for (i, q) in combos.into_iter().enumerate() {
                    ctx.wait_notifications(q, 1);
                    // Mismatches in each position find nothing buffered.
                    assert!(
                        !ctx.test_notifications(
                            RtQuery::exact(WindowId(0), Rank::ANY, Tag::ANY),
                            1
                        ),
                        "combo {i}: wrong window matched"
                    );
                    assert!(
                        !ctx.test_notifications(
                            RtQuery::exact(WindowId::ANY, Rank(0), Tag::ANY),
                            1
                        ),
                        "combo {i}: wrong source matched"
                    );
                    assert!(
                        !ctx.test_notifications(
                            RtQuery::exact(WindowId::ANY, Rank::ANY, Tag(8)),
                            1
                        ),
                        "combo {i}: wrong tag matched"
                    );
                }
            }),
            Box::new(|ctx| {
                for _ in 0..8 {
                    ctx.put_notify(WindowId(1), Rank(0), 0, 0, 1, Tag(7));
                    ctx.flush();
                }
            }),
        ],
    );
    assert_eq!(report.matched, 8);
}

#[test]
fn builder_validates_shapes() {
    assert!(RtConfig::builder().build().is_ok());
    let bad = [
        RtConfig::builder().devices(0).build(),
        RtConfig::builder().ranks_per_device(0).build(),
        RtConfig::builder()
            .devices(1024)
            .ranks_per_device(1024)
            .build(),
        RtConfig::builder().windows(vec![]).build(),
        RtConfig::builder().windows(vec![usize::MAX]).build(),
        RtConfig::builder().ring_capacity(3).build(),
        RtConfig::builder().ring_capacity(0).build(),
    ];
    for (i, b) in bad.iter().enumerate() {
        assert!(
            matches!(b, Err(RtError::InvalidConfig(_))),
            "case {i} accepted: {b:?}"
        );
    }
    let cfg = RtConfig::builder()
        .devices(1)
        .ranks_per_device(2)
        .windows(vec![128])
        .window(64)
        .ring_capacity(8)
        .build()
        .unwrap();
    assert_eq!(cfg.world(), 2);
    assert_eq!(cfg.windows, vec![128, 64]);
}

#[test]
fn try_run_cluster_rejects_program_miscount() {
    let err = try_run_cluster(&cfg(1, 2), vec![Box::new(|_| {})]).unwrap_err();
    assert!(matches!(err, RtError::InvalidConfig(_)), "{err}");
}

#[test]
fn bad_arguments_surface_as_errors() {
    run_cluster(
        &cfg(1, 1),
        vec![Box::new(|ctx| {
            assert!(matches!(
                ctx.try_win(WindowId(5)),
                Err(RtError::NoSuchWindow { .. })
            ));
            assert!(matches!(
                ctx.try_put_notify(WindowId(5), Rank(0), 0, 0, 1, Tag(0)),
                Err(RtError::NoSuchWindow { .. })
            ));
            assert!(matches!(
                ctx.try_put_notify(WindowId(0), Rank(99), 0, 0, 1, Tag(0)),
                Err(RtError::RankOutOfRange { .. })
            ));
            assert!(matches!(
                ctx.try_put_notify(WindowId(0), Rank::ANY, 0, 0, 1, Tag(0)),
                Err(RtError::WildcardNotAllowed { position: "dst" })
            ));
            assert!(matches!(
                ctx.try_put(WindowId(0), Rank(0), 0, 4000, 1000),
                Err(RtError::RangeOutOfBounds { .. })
            ));
        })],
    );
}

#[test]
fn traced_run_records_rank_timelines() {
    let (report, trace) = run_cluster_traced(
        &cfg(1, 2),
        vec![
            Box::new(|ctx| {
                ctx.win_mut(W0)[0] = 9;
                ctx.put_notify(W0, Rank(1), 0, 0, 1, Tag(7));
                ctx.flush();
                ctx.barrier();
            }),
            Box::new(|ctx| {
                ctx.wait_notifications(RtQuery::exact(W0, Rank(0), Tag(7)), 1);
                ctx.barrier();
            }),
        ],
    )
    .unwrap();
    assert_eq!(report.matched, 1);
    let names: Vec<&str> = trace.spans().iter().map(|s| s.name).collect();
    assert!(names.contains(&"wait"), "no wait span in {names:?}");
    assert!(names.contains(&"flush"), "no flush span in {names:?}");
    assert!(names.contains(&"barrier"), "no barrier span in {names:?}");
    assert_eq!(trace.instants().len(), 1, "one put_notify instant");
    for s in trace.spans() {
        assert!(s.end_ps >= s.start_ps, "span {} inverted", s.name);
    }
}

#[test]
fn ring_stress_small_rings_backpressure() {
    // Tiny rings force the credit system and host backlog into action.
    let cfg = RtConfig {
        devices: 2,
        ranks_per_device: 2,
        windows: vec![1024],
        ring_capacity: 4,
        ..RtConfig::default()
    };
    let world = 4;
    let mut programs: Vec<dcuda_rt::cluster::RankProgram> = Vec::new();
    for r in 0..world {
        programs.push(Box::new(move |ctx| {
            let dst = (r + 1) % world;
            for i in 0..100u32 {
                ctx.win_mut(W0)[0] = (i % 251) as u8;
                ctx.put_notify(W0, Rank(dst), 1, 0, 1, Tag(0));
                ctx.wait_notifications(
                    RtQuery::exact(W0, Rank((r + world - 1) % world), Tag(0)),
                    1,
                );
                assert_eq!(ctx.win(W0)[1], (i % 251) as u8);
            }
        }));
    }
    let report = run_cluster(&cfg, programs);
    assert_eq!(report.puts, 400);
}

#[test]
fn stencil_like_halo_exchange_on_rt() {
    // A miniature 1-D Jacobi over the runtime: each rank owns 8 f64 cells
    // with double-buffered 1-cell halos (parity slots avoid the classic
    // one-sided race where a fast neighbour's next-iteration put clobbers a
    // halo still in use); compare against a serial computation.
    const CELLS: usize = 8;
    const ITERS: usize = 10;
    let devices = 2;
    let ranks = 2;
    let world = (devices * ranks) as usize;
    // Window layout (f64 indices): [halo_l(par 0), halo_l(par 1),
    // cells[CELLS], halo_r(par 0), halo_r(par 1)].
    let win_len = (CELLS + 4) * 8;
    let get = |w: &[u8], i: usize| f64::from_le_bytes(w[i * 8..(i + 1) * 8].try_into().unwrap());
    let put = |w: &mut [u8], i: usize, v: f64| {
        w[i * 8..(i + 1) * 8].copy_from_slice(&v.to_le_bytes());
    };

    // Serial reference.
    let n = world * CELLS;
    let mut serial = vec![0.0f64; n + 2];
    for (i, v) in serial.iter_mut().enumerate().skip(1).take(n) {
        *v = i as f64;
    }
    for _ in 0..ITERS {
        let prev = serial.clone();
        for i in 1..=n {
            serial[i] = 0.5 * (prev[i - 1] + prev[i + 1]);
        }
    }

    let results: Vec<std::sync::Arc<std::sync::Mutex<Vec<f64>>>> = (0..world)
        .map(|_| std::sync::Arc::new(std::sync::Mutex::new(Vec::new())))
        .collect();
    let mut programs: Vec<dcuda_rt::cluster::RankProgram> = Vec::new();
    for (r, result) in results.iter().enumerate() {
        let result = result.clone();
        programs.push(Box::new(move |ctx| {
            // Init interior (cells start at f64 index 2).
            for c in 0..CELLS {
                let global = r * CELLS + c + 1;
                let w = ctx.win_mut(W0);
                put(w, c + 2, global as f64);
            }
            let left = (r > 0).then(|| Rank((r - 1) as u32));
            let right = (r + 1 < world).then(|| Rank((r + 1) as u32));
            for it in 0..ITERS {
                let par = it % 2;
                let tag = Tag(it as u32);
                // Send my edge cells into the parity slot of each
                // neighbour's facing halo.
                if let Some(l) = left {
                    ctx.put_notify(W0, l, (CELLS + 2 + par) * 8, 2 * 8, 8, tag);
                }
                if let Some(rt) = right {
                    ctx.put_notify(W0, rt, par * 8, (CELLS + 1) * 8, 8, tag);
                }
                let expect = left.is_some() as usize + right.is_some() as usize;
                ctx.wait_notifications(RtQuery::exact(W0, Rank::ANY, tag), expect);
                // Jacobi step (edges use parity halos; world edges read 0).
                let w = ctx.win_mut(W0);
                let halo_l = get(w, par);
                let halo_r = get(w, CELLS + 2 + par);
                let prev: Vec<f64> = (0..CELLS).map(|c| get(w, c + 2)).collect();
                for c in 0..CELLS {
                    let lv = if c == 0 { halo_l } else { prev[c - 1] };
                    let rv = if c + 1 == CELLS { halo_r } else { prev[c + 1] };
                    put(w, c + 2, 0.5 * (lv + rv));
                }
            }
            let w = ctx.win(W0);
            let vals: Vec<f64> = (0..CELLS).map(|i| get(w, i + 2)).collect();
            *result.lock().unwrap() = vals;
        }));
    }
    run_cluster(
        &RtConfig {
            devices,
            ranks_per_device: ranks,
            windows: vec![win_len],
            ring_capacity: 16,
            ..RtConfig::default()
        },
        programs,
    );
    for r in 0..world {
        let vals = results[r].lock().unwrap();
        for c in 0..CELLS {
            let expect = serial[r * CELLS + c + 1];
            assert!(
                (vals[c] - expect).abs() < 1e-12,
                "rank {r} cell {c}: {} vs serial {expect}",
                vals[c]
            );
        }
    }
}

#[test]
fn rank_panic_propagates_as_typed_error() {
    let err = dcuda_rt::try_run_cluster_verified(
        &cfg(1, 2),
        vec![
            Box::new(|_ctx| panic!("deliberate test panic")),
            Box::new(|ctx| {
                // Blocks forever unless the abort flag interrupts the wait.
                ctx.try_wait_notifications(RtQuery::WILDCARD, 1).ok();
            }),
        ],
    )
    .unwrap_err();
    match err {
        RtError::RankPanicked { rank, message } => {
            assert_eq!(rank, 0);
            assert!(message.contains("deliberate test panic"), "{message}");
        }
        other => panic!("expected RankPanicked, got {other}"),
    }
}

#[test]
fn verified_run_reports_clean_invariants() {
    let (report, verify) = dcuda_rt::try_run_cluster_verified(
        &cfg(2, 2),
        vec![
            Box::new(|ctx| {
                ctx.win_mut(W0)[0..4].copy_from_slice(&[9, 8, 7, 6]);
                for i in 0..8u32 {
                    ctx.put_notify(W0, Rank(3), 0, 0, 4, Tag(i));
                }
                ctx.flush();
                ctx.barrier();
            }),
            Box::new(|ctx| {
                ctx.barrier();
            }),
            Box::new(|ctx| {
                ctx.barrier();
            }),
            Box::new(|ctx| {
                ctx.wait_notifications(RtQuery::exact(W0, Rank(0), Tag::ANY), 8);
                assert_eq!(&ctx.win(W0)[0..4], &[9, 8, 7, 6]);
                ctx.barrier();
            }),
        ],
    )
    .unwrap();
    assert_eq!(report.puts, 8);
    assert_eq!(report.matched, 8);
    assert!(verify.is_clean(), "monitor flagged violations: {verify}");
}

#[test]
fn verified_run_accounts_unconsumed_notifications_as_dropped() {
    // Rank 1 never polls; the host must book the residue as dropped, not
    // lost, so conservation still closes.
    let (_, verify) = dcuda_rt::try_run_cluster_verified(
        &cfg(1, 2),
        vec![
            Box::new(|ctx| {
                ctx.put_notify(W0, Rank(1), 0, 0, 1, Tag(1));
                ctx.flush();
            }),
            Box::new(|_ctx| {}),
        ],
    )
    .unwrap();
    assert!(verify.is_clean(), "monitor flagged violations: {verify}");
}

#[test]
fn faulted_run_keeps_exactly_once_delivery_and_conservation() {
    // Aggressive drop + duplication on the inter-host plane: every
    // notification must still arrive exactly once (receiver-side dedup), all
    // flushes must complete (same-seq retransmits), and the conservation
    // ledger must close.
    let faulted = RtConfig {
        devices: 2,
        ranks_per_device: 2,
        windows: vec![4096],
        ring_capacity: 16,
        faults: Some(dcuda_rt::RtFaultPlan {
            seed: 9,
            drop_p: 0.2,
            dup_p: 0.2,
        }),
        ..RtConfig::default()
    };
    const MSGS: u32 = 64;
    let mut programs: Vec<dcuda_rt::cluster::RankProgram> = Vec::new();
    for rank in 0..faulted.world() {
        // Cross-device partner so every put rides the faulted MPI plane.
        let partner = rank ^ 2;
        programs.push(Box::new(move |ctx| {
            for t in 0..MSGS {
                ctx.put_notify(W0, Rank(partner), 0, 0, 8, Tag(t));
            }
            ctx.flush();
            ctx.wait_notifications(RtQuery::exact(W0, Rank(partner), Tag::ANY), MSGS as usize);
            ctx.barrier();
        }));
    }
    let (report, verify) = dcuda_rt::try_run_cluster_verified(&faulted, programs).unwrap();
    assert!(verify.is_clean(), "monitor flagged violations: {verify}");
    assert_eq!(report.puts, 4 * u64::from(MSGS));
    assert_eq!(
        report.matched,
        4 * u64::from(MSGS),
        "dedup must not eat fresh notifications"
    );
    assert!(report.retries > 0, "20% drop must trigger retransmits");
    assert!(report.dups_suppressed > 0, "20% dup must hit the window");
}

#[test]
fn healthy_fault_plan_is_inert() {
    let quiet = RtConfig {
        devices: 2,
        ranks_per_device: 1,
        windows: vec![256],
        ring_capacity: 16,
        faults: Some(dcuda_rt::RtFaultPlan {
            seed: 1,
            drop_p: 0.0,
            dup_p: 0.0,
        }),
        ..RtConfig::default()
    };
    let report = run_cluster(
        &quiet,
        vec![
            Box::new(|ctx| {
                ctx.put_notify(W0, Rank(1), 0, 0, 4, Tag(5));
                ctx.flush();
            }),
            Box::new(|ctx| {
                ctx.wait_notifications(RtQuery::exact(W0, Rank(0), Tag(5)), 1);
            }),
        ],
    );
    assert_eq!(report.retries, 0);
    assert_eq!(report.dups_suppressed, 0);
    assert_eq!(report.matched, 1);
}

#[test]
fn fault_plan_probabilities_are_validated() {
    let bad = RtConfig {
        faults: Some(dcuda_rt::RtFaultPlan {
            seed: 1,
            drop_p: 1.5,
            dup_p: 0.0,
        }),
        ..RtConfig::default()
    };
    assert!(matches!(
        try_run_cluster(&bad, vec![]),
        Err(RtError::InvalidConfig(_))
    ));
}

#[test]
fn progress_threads_match_inline_protocol_counters() {
    // The progress pool must be protocol-invisible: the same workload run
    // Inline and with Threads(2) produces identical protocol counters. The
    // busy spin biases work toward the off-thread workers without changing
    // what the protocol does.
    use dcuda_rt::ProgressMode;
    const MSGS: u32 = 32;
    let mk_programs = || -> Vec<dcuda_rt::cluster::RankProgram> {
        let mut programs: Vec<dcuda_rt::cluster::RankProgram> = Vec::new();
        for rank in 0..4u32 {
            let partner = rank ^ 2;
            programs.push(Box::new(move |ctx| {
                for t in 0..MSGS {
                    ctx.put_notify(W0, Rank(partner), 0, 0, 8, Tag(t));
                }
                ctx.flush();
                ctx.wait_notifications(RtQuery::exact(W0, Rank(partner), Tag::ANY), MSGS as usize);
                ctx.barrier();
            }));
        }
        programs
    };
    let inline_cfg = cfg(2, 2);
    let inline = run_cluster(&inline_cfg, mk_programs());
    let threaded_cfg = RtConfig {
        progress: ProgressMode::Threads(2),
        host_busy_spin: 2_000,
        ..cfg(2, 2)
    };
    let threaded = run_cluster(&threaded_cfg, mk_programs());
    assert_eq!(inline.puts, threaded.puts);
    assert_eq!(inline.notifications, threaded.notifications);
    assert_eq!(inline.matched, threaded.matched);
    assert_eq!(inline.barriers, threaded.barriers);
    assert_eq!(threaded.retries, 0, "in-process plane never retries");
}

#[test]
fn progress_threads_survive_faulted_plane() {
    // Retransmit timers fire from whichever thread drives the engine; the
    // exactly-once ledger must close regardless of who fires them.
    use dcuda_rt::ProgressMode;
    let faulted = RtConfig {
        devices: 2,
        ranks_per_device: 1,
        windows: vec![4096],
        ring_capacity: 16,
        progress: ProgressMode::Threads(2),
        host_busy_spin: 1_000,
        faults: Some(dcuda_rt::RtFaultPlan {
            seed: 17,
            drop_p: 0.2,
            dup_p: 0.1,
        }),
        ..RtConfig::default()
    };
    const MSGS: u32 = 48;
    let mut programs: Vec<dcuda_rt::cluster::RankProgram> = Vec::new();
    for rank in 0..2u32 {
        let partner = rank ^ 1;
        programs.push(Box::new(move |ctx| {
            for t in 0..MSGS {
                ctx.put_notify(W0, Rank(partner), 0, 0, 8, Tag(t));
            }
            ctx.flush();
            ctx.wait_notifications(RtQuery::exact(W0, Rank(partner), Tag::ANY), MSGS as usize);
            ctx.barrier();
        }));
    }
    let report = run_cluster(&faulted, programs);
    assert_eq!(report.puts, 2 * u64::from(MSGS));
    assert_eq!(report.matched, 2 * u64::from(MSGS));
}

#[test]
fn zero_progress_threads_rejected() {
    use dcuda_rt::ProgressMode;
    let bad = RtConfig {
        progress: ProgressMode::Threads(0),
        ..RtConfig::default()
    };
    assert!(matches!(
        try_run_cluster(&bad, vec![]),
        Err(RtError::InvalidConfig(_))
    ));
}

#[test]
fn oversized_progress_pool_rejected() {
    use dcuda_rt::{ProgressMode, MAX_PROGRESS_THREADS};
    let bad = RtConfig {
        progress: ProgressMode::Threads(MAX_PROGRESS_THREADS + 1),
        ..RtConfig::default()
    };
    assert!(matches!(
        try_run_cluster(&bad, vec![]),
        Err(RtError::InvalidConfig(_))
    ));
}
