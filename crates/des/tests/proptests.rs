//! Property-based tests for the simulation kernel: event ordering, PS
//! conservation laws, slab soundness.

use dcuda_des::stats::Summary;
use dcuda_des::{EventQueue, PsResource, SimDuration, SimTime, Slab};
use proptest::prelude::*;

proptest! {
    /// Events always pop in non-decreasing time order, FIFO among ties, and
    /// none are lost.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u64..1000, 0..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_ps(t), i);
        }
        let mut popped = Vec::new();
        let mut last = SimTime::ZERO;
        while let Some((t, idx)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            popped.push((t, idx));
        }
        prop_assert_eq!(popped.len(), times.len());
        // FIFO among equal timestamps: indices increase within a tie group.
        for w in popped.windows(2) {
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1);
            }
        }
    }

    /// Processor sharing conserves work: total delivered equals total
    /// demand once all jobs complete, regardless of arrival pattern.
    #[test]
    fn ps_conserves_work(
        demands in prop::collection::vec(1.0f64..1000.0, 1..40),
        arrivals in prop::collection::vec(0u64..10_000, 1..40),
    ) {
        let n = demands.len().min(arrivals.len());
        let mut arr: Vec<u64> = arrivals[..n].to_vec();
        arr.sort_unstable();
        let mut r = PsResource::new(1e6);
        let mut done = Vec::new();
        let mut completed = 0usize;
        let mut i = 0usize;
        let mut now = SimTime::ZERO;
        while completed < n {
            // Next event: arrival or completion.
            let next_arrival = (i < n).then(|| SimTime::from_ps(arr[i] * 1_000_000));
            let next_completion = r.next_completion();
            let t = match (next_arrival, next_completion) {
                (Some(a), Some(c)) => a.min(c),
                (Some(a), None) => a,
                (None, Some(c)) => c,
                (None, None) => break,
            };
            prop_assert!(t >= now);
            now = t;
            r.advance_to(now, &mut done);
            completed = done.len();
            while i < n && SimTime::from_ps(arr[i] * 1_000_000) == now {
                r.submit(demands[i], i as u64);
                i += 1;
            }
        }
        let total: f64 = demands[..n].iter().sum();
        prop_assert!((r.delivered() - total).abs() < total * 1e-9 + 1e-6);
        // Every job completed exactly once.
        let mut tags: Vec<u64> = done.iter().map(|&(_, t)| t).collect();
        tags.sort_unstable();
        prop_assert_eq!(tags, (0..n as u64).collect::<Vec<_>>());
    }

    /// Capped PS never exceeds the resource rate nor any job's cap.
    #[test]
    fn ps_caps_respected(
        caps in prop::collection::vec(1.0f64..100.0, 1..20),
    ) {
        let rate = 50.0;
        let mut r = PsResource::new(rate);
        let mut done = Vec::new();
        r.advance_to(SimTime::ZERO, &mut done);
        // All jobs of demand equal to their cap: each needs >= 1 s.
        for (i, &c) in caps.iter().enumerate() {
            r.submit_capped(c, c, i as u64);
        }
        let first = r.next_completion().unwrap();
        // No completion can happen before 1 s (cap-bound) and before
        // total/rate (resource-bound, for the smallest job).
        prop_assert!(first >= SimTime::ZERO + SimDuration::from_secs_f64(1.0 - 1e-9));
    }

    /// Slab keys stay valid until removed and never resolve after.
    #[test]
    fn slab_soundness(ops in prop::collection::vec(any::<bool>(), 1..200)) {
        let mut slab = Slab::new();
        let mut live: Vec<(dcuda_des::SlotKey, u32)> = Vec::new();
        let mut counter = 0u32;
        for op in ops {
            if op || live.is_empty() {
                let key = slab.insert(counter);
                live.push((key, counter));
                counter += 1;
            } else {
                let (key, val) = live.swap_remove(counter as usize % live.len());
                prop_assert_eq!(slab.remove(key), Some(val));
                prop_assert_eq!(slab.get(key), None);
            }
            for &(k, v) in &live {
                prop_assert_eq!(slab.get(k), Some(&v));
            }
        }
        prop_assert_eq!(slab.len(), live.len());
    }

    /// Summary statistics are order-invariant.
    #[test]
    fn summary_order_invariant(mut xs in prop::collection::vec(-1e6f64..1e6, 1..50)) {
        let mut a = Summary::default();
        for &x in &xs {
            a.record(x);
        }
        xs.reverse();
        let mut b = Summary::default();
        for &x in &xs {
            b.record(x);
        }
        prop_assert_eq!(a.min(), b.min());
        prop_assert_eq!(a.max(), b.max());
        prop_assert!((a.mean().unwrap() - b.mean().unwrap()).abs() < 1e-6);
    }
}
