//! dCUDA variant of the particle simulation.
//!
//! One rank per cell. Halo cells live in overlapping windows, so on-device
//! halo exchanges are zero-copy; migrating particles are packed and put into
//! the neighbour's inbox window (real copies, as in the paper where "actual
//! data movement only takes place for distributed memory ranks" on the halo
//! path but migration always writes).

use super::model::{init_cell, migrate, step_cell, ParticleConfig, Particles};
use super::ParticleResult;
use dcuda_core::window::f64_slice;
use dcuda_core::{ClusterSim, Rank, RankCtx, RankKernel, Suspend, SystemSpec, WinId, WindowSpec};
use dcuda_device::BlockCharge;

const W_HALO: WinId = WinId(0);
const W_MIG: WinId = WinId(1);
const TAG_HALO: u32 = 1;
const TAG_MIG: u32 = 2;

/// Doubles in a halo slot: `[count, (x, y) * capacity]`.
fn halo_slot_len(cap: usize) -> usize {
    1 + 2 * cap
}

/// Doubles in a migrant slot: `[count, (x, y, vx, vy) * capacity]`.
fn mig_slot_len(cap: usize) -> usize {
    1 + 4 * cap
}

/// Pack `(count, xs, ys)` into a halo slot.
fn pack_halo(slot: &mut [f64], p: &Particles) {
    slot[0] = p.len() as f64;
    for i in 0..p.len() {
        slot[1 + 2 * i] = p.xs[i];
        slot[2 + 2 * i] = p.ys[i];
    }
}

/// Unpack a halo slot into positions-only particles.
fn unpack_halo(slot: &[f64]) -> Particles {
    let n = slot[0] as usize;
    let mut p = Particles::default();
    for i in 0..n {
        p.push(slot[1 + 2 * i], slot[2 + 2 * i], 0.0, 0.0);
    }
    p
}

/// Pack full particles into a migrant slot.
fn pack_mig(slot: &mut [f64], p: &Particles) {
    slot[0] = p.len() as f64;
    for i in 0..p.len() {
        slot[1 + 4 * i] = p.xs[i];
        slot[2 + 4 * i] = p.ys[i];
        slot[3 + 4 * i] = p.vxs[i];
        slot[4 + 4 * i] = p.vys[i];
    }
}

/// Unpack a migrant slot.
fn unpack_mig(slot: &[f64]) -> Particles {
    let n = slot[0] as usize;
    let mut p = Particles::default();
    for i in 0..n {
        p.push(
            slot[1 + 4 * i],
            slot[2 + 4 * i],
            slot[3 + 4 * i],
            slot[4 + 4 * i],
        );
    }
    p
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    PutHalo,
    Step,
    Arrivals,
    Done,
}

struct ParticleKernel {
    cfg: ParticleConfig,
    cell: usize,
    left: Option<Rank>,
    right: Option<Rank>,
    own: Particles,
    iter: u32,
    phase: Phase,
}

impl ParticleKernel {
    fn neighbors(&self) -> u32 {
        self.left.is_some() as u32 + self.right.is_some() as u32
    }
}

impl RankKernel for ParticleKernel {
    fn resume(&mut self, ctx: &mut RankCtx<'_>) -> Suspend {
        let cap = self.cfg.capacity;
        let hs = halo_slot_len(cap);
        let ms = mig_slot_len(cap);
        loop {
            match self.phase {
                Phase::PutHalo => {
                    if self.iter >= self.cfg.iters {
                        // Publish the final state for result extraction.
                        assert!(self.own.len() <= cap, "cell overflow");
                        let w = ctx.win_f64_mut(W_MIG);
                        pack_mig(&mut w[2 * ms..3 * ms], &self.own);
                        self.phase = Phase::Done;
                        return Suspend::Finished;
                    }
                    assert!(self.own.len() <= cap, "cell overflow");
                    // Pack own positions into the own halo slot.
                    {
                        let w = ctx.win_f64_mut(W_HALO);
                        pack_halo(&mut w[hs..2 * hs], &self.own);
                    }
                    let bytes = 8 * (1 + 2 * self.own.len());
                    ctx.charge(BlockCharge::mem(bytes as f64));
                    if let Some(l) = self.left {
                        ctx.put_notify(W_HALO, l, 2 * hs * 8, hs * 8, bytes, TAG_HALO);
                    }
                    if let Some(r) = self.right {
                        ctx.put_notify(W_HALO, r, 0, hs * 8, bytes, TAG_HALO);
                    }
                    self.phase = Phase::Step;
                    return Suspend::WaitNotifications {
                        win: Some(W_HALO),
                        source: None,
                        tag: Some(TAG_HALO),
                        count: self.neighbors(),
                    };
                }
                Phase::Step => {
                    // Read neighbour halos, compute, integrate, migrate.
                    let (left_p, right_p) = {
                        let w = ctx.win_f64(W_HALO);
                        (
                            self.left.map(|_| unpack_halo(&w[0..hs])),
                            self.right.map(|_| unpack_halo(&w[2 * hs..3 * hs])),
                        )
                    };
                    let work =
                        step_cell(&mut self.own, left_p.as_ref(), right_p.as_ref(), &self.cfg);
                    ctx.charge(work.force_charge(self.cfg.charge_scale));
                    let (to_left, to_right) = migrate(&mut self.own, self.cell, &self.cfg);
                    // Pack and ship the migrants from the staging slots.
                    let pack_bytes = 8 * (2 + 4 * to_left.len() + 4 * to_right.len());
                    ctx.charge(BlockCharge::mem(pack_bytes as f64));
                    {
                        let w = ctx.win_f64_mut(W_MIG);
                        pack_mig(&mut w[2 * ms..3 * ms], &to_left);
                        pack_mig(&mut w[3 * ms..4 * ms], &to_right);
                    }
                    if let Some(l) = self.left {
                        let bytes = 8 * (1 + 4 * to_left.len());
                        ctx.put_notify(W_MIG, l, ms * 8, 2 * ms * 8, bytes, TAG_MIG);
                    }
                    if let Some(r) = self.right {
                        let bytes = 8 * (1 + 4 * to_right.len());
                        ctx.put_notify(W_MIG, r, 0, 3 * ms * 8, bytes, TAG_MIG);
                    }
                    self.phase = Phase::Arrivals;
                    return Suspend::WaitNotifications {
                        win: Some(W_MIG),
                        source: None,
                        tag: Some(TAG_MIG),
                        count: self.neighbors(),
                    };
                }
                Phase::Arrivals => {
                    // Canonical order: the inbox from the left neighbour
                    // first, then from the right.
                    let (from_left, from_right) = {
                        let w = ctx.win_f64(W_MIG);
                        (
                            self.left.map(|_| unpack_mig(&w[0..ms])),
                            self.right.map(|_| unpack_mig(&w[ms..2 * ms])),
                        )
                    };
                    let mut arrived = 0;
                    if let Some(p) = from_left {
                        arrived += p.len();
                        self.own.extend(&p);
                    }
                    if let Some(p) = from_right {
                        arrived += p.len();
                        self.own.extend(&p);
                    }
                    ctx.charge(BlockCharge {
                        flops: arrived as f64 * 4.0,
                        mem_bytes: arrived as f64 * 64.0,
                    });
                    self.iter += 1;
                    self.phase = Phase::PutHalo;
                    // No suspension: fall through into the next iteration.
                }
                Phase::Done => return Suspend::Finished,
            }
        }
    }
}

/// Run the dCUDA particle simulation. Returns the final cells (global order)
/// and timing (setup-subtracted).
pub fn run_dcuda(spec: &SystemSpec, cfg: &ParticleConfig) -> (Vec<Particles>, ParticleResult) {
    let (cells, time_ms) = run_once(spec, cfg);
    let (_, setup_ms) = run_once(
        spec,
        &ParticleConfig {
            iters: 0,
            ..cfg.clone()
        },
    );
    (
        cells,
        ParticleResult {
            time_ms: time_ms - setup_ms,
            halo_ms: 0.0,
        },
    )
}

fn run_once(spec: &SystemSpec, cfg: &ParticleConfig) -> (Vec<Particles>, f64) {
    let topo = cfg.topology();
    let hs = halo_slot_len(cfg.capacity) * 8;
    let ms = mig_slot_len(cfg.capacity) * 8;
    let windows = vec![
        WindowSpec::halo_ring(&topo, hs, hs),
        WindowSpec::uniform(&topo, 4 * ms),
    ];
    let kernels: Vec<Box<dyn RankKernel>> = topo
        .ranks()
        .map(|r| {
            let cell = r.0 as usize;
            Box::new(ParticleKernel {
                cfg: cfg.clone(),
                cell,
                left: (r.0 > 0).then(|| Rank(r.0 - 1)),
                right: (r.0 + 1 < topo.world_size()).then(|| Rank(r.0 + 1)),
                own: init_cell(cfg, cell),
                iter: 0,
                phase: Phase::PutHalo,
            }) as Box<dyn RankKernel>
        })
        .collect();
    let mut sim = ClusterSim::new(spec.clone(), topo, windows, kernels);
    let report = sim.run();
    // Extract final cells from the published staging slots.
    let mut cells = Vec::with_capacity(cfg.total_cells());
    let ms_f = mig_slot_len(cfg.capacity);
    for r in topo.ranks() {
        let node = topo.node_of(r);
        let local = topo.local_of(r) as usize;
        let arena = sim.arena(node, W_MIG);
        let base = local * 4 * ms;
        let slot = f64_slice(&arena[base + 2 * ms..base + 3 * ms]);
        debug_assert_eq!(slot.len(), ms_f);
        cells.push(unpack_mig(slot));
    }
    (cells, report.elapsed().as_millis_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::particles::model::{digest, serial_reference};

    #[test]
    fn matches_serial_reference_single_node() {
        let cfg = ParticleConfig::tiny(1);
        let (cells, res) = run_dcuda(&SystemSpec::greina(), &cfg);
        let reference = serial_reference(&cfg);
        assert_eq!(digest(&cells), digest(&reference));
        // Stronger: exact trajectories.
        for (a, b) in cells.iter().zip(&reference) {
            assert_eq!(a, b);
        }
        assert!(res.time_ms > 0.0);
    }

    #[test]
    fn matches_serial_reference_two_nodes() {
        let cfg = ParticleConfig::tiny(2);
        let (cells, _) = run_dcuda(&SystemSpec::greina(), &cfg);
        let reference = serial_reference(&cfg);
        for (c, (a, b)) in cells.iter().zip(&reference).enumerate() {
            assert_eq!(a, b, "cell {c} diverged");
        }
    }

    #[test]
    fn pack_unpack_round_trip() {
        let mut p = Particles::default();
        p.push(1.0, 2.0, 3.0, 4.0);
        p.push(5.0, 6.0, 7.0, 8.0);
        let mut slot = vec![0.0; mig_slot_len(4)];
        pack_mig(&mut slot, &p);
        assert_eq!(unpack_mig(&slot), p);
        let mut hslot = vec![0.0; halo_slot_len(4)];
        pack_halo(&mut hslot, &p);
        let h = unpack_halo(&hslot);
        assert_eq!(h.xs, p.xs);
        assert_eq!(h.ys, p.ys);
        assert_eq!(h.vxs, vec![0.0, 0.0]);
    }
}
