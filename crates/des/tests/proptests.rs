//! Property-based tests for the simulation kernel: event ordering, PS
//! conservation laws, slab soundness.

use dcuda_des::check::forall;
use dcuda_des::stats::Summary;
use dcuda_des::{EventQueue, PsResource, SimDuration, SimTime, Slab};

/// Events always pop in non-decreasing time order, FIFO among ties, and
/// none are lost.
#[test]
fn event_queue_total_order() {
    forall("event_queue_total_order", 256, |g| {
        let times = g.vec_with(300, |g| g.u64_below(1000));
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_ps(t), i);
        }
        let mut popped = Vec::new();
        let mut last = SimTime::ZERO;
        while let Some((t, idx)) = q.pop() {
            assert!(t >= last);
            last = t;
            popped.push((t, idx));
        }
        assert_eq!(popped.len(), times.len());
        // FIFO among equal timestamps: indices increase within a tie group.
        for w in popped.windows(2) {
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1);
            }
        }
    });
}

/// Same ordering guarantees when events are scheduled *while popping* —
/// the real driver pattern, which exercises the `now`-FIFO fast path
/// against the heap.
#[test]
fn event_queue_total_order_interleaved() {
    forall("event_queue_total_order_interleaved", 256, |g| {
        let mut q = EventQueue::new();
        let mut next_id = 0u64;
        let mut scheduled = 0usize;
        for _ in 0..g.usize_in(1, 40) {
            q.schedule_at(SimTime::from_ps(g.u64_below(500)), next_id);
            next_id += 1;
            scheduled += 1;
        }
        let mut popped = 0usize;
        let mut last = SimTime::ZERO;
        let mut last_seq_at: Option<(SimTime, u64)> = None;
        while let Some((t, id)) = q.pop() {
            assert!(t >= last, "time went backwards");
            if let Some((lt, lid)) = last_seq_at {
                if t == lt {
                    assert!(id > lid, "FIFO violated among ties");
                }
            }
            last = t;
            last_seq_at = Some((t, id));
            popped += 1;
            // Sometimes schedule follow-ups at `now` (fast path) or later.
            if scheduled < 300 {
                for _ in 0..g.usize_below(3) {
                    let dt = if g.bool() { 0 } else { 1 + g.u64_below(100) };
                    q.schedule_at(t + SimDuration::from_ps(dt), next_id);
                    next_id += 1;
                    scheduled += 1;
                }
            }
        }
        assert_eq!(popped, scheduled, "no events lost");
    });
}

/// Processor sharing conserves work: total delivered equals total
/// demand once all jobs complete, regardless of arrival pattern.
#[test]
fn ps_conserves_work() {
    forall("ps_conserves_work", 128, |g| {
        let n = g.usize_in(1, 40);
        let demands: Vec<f64> = (0..n).map(|_| g.f64_in(1.0, 1000.0)).collect();
        let mut arr: Vec<u64> = (0..n).map(|_| g.u64_below(10_000)).collect();
        arr.sort_unstable();
        let mut r = PsResource::new(1e6);
        let mut done = Vec::new();
        let mut completed = 0usize;
        let mut i = 0usize;
        let mut now = SimTime::ZERO;
        while completed < n {
            // Next event: arrival or completion.
            let next_arrival = (i < n).then(|| SimTime::from_ps(arr[i] * 1_000_000));
            let next_completion = r.next_completion();
            let t = match (next_arrival, next_completion) {
                (Some(a), Some(c)) => a.min(c),
                (Some(a), None) => a,
                (None, Some(c)) => c,
                (None, None) => break,
            };
            assert!(t >= now);
            now = t;
            r.advance_to(now, &mut done);
            completed = done.len();
            while i < n && SimTime::from_ps(arr[i] * 1_000_000) == now {
                r.submit(demands[i], i as u64);
                i += 1;
            }
        }
        let total: f64 = demands.iter().sum();
        assert!((r.delivered() - total).abs() < total * 1e-9 + 1e-6);
        // Every job completed exactly once.
        let mut tags: Vec<u64> = done.iter().map(|&(_, t)| t).collect();
        tags.sort_unstable();
        assert_eq!(tags, (0..n as u64).collect::<Vec<_>>());
    });
}

/// Capped PS never exceeds the resource rate nor any job's cap.
#[test]
fn ps_caps_respected() {
    forall("ps_caps_respected", 256, |g| {
        let caps: Vec<f64> = (0..g.usize_in(1, 20))
            .map(|_| g.f64_in(1.0, 100.0))
            .collect();
        let rate = 50.0;
        let mut r = PsResource::new(rate);
        let mut done = Vec::new();
        r.advance_to(SimTime::ZERO, &mut done);
        // All jobs of demand equal to their cap: each needs >= 1 s.
        for (i, &c) in caps.iter().enumerate() {
            r.submit_capped(c, c, i as u64);
        }
        let first = r.next_completion().unwrap();
        // No completion can happen before 1 s (cap-bound) and before
        // total/rate (resource-bound, for the smallest job).
        assert!(first >= SimTime::ZERO + SimDuration::from_secs_f64(1.0 - 1e-9));
    });
}

/// Slab keys stay valid until removed and never resolve after.
#[test]
fn slab_soundness() {
    forall("slab_soundness", 256, |g| {
        let ops = g.vec_with(200, |g| g.bool());
        let mut slab = Slab::new();
        let mut live: Vec<(dcuda_des::SlotKey, u32)> = Vec::new();
        let mut counter = 0u32;
        for op in ops {
            if op || live.is_empty() {
                let key = slab.insert(counter);
                live.push((key, counter));
                counter += 1;
            } else {
                let (key, val) = live.swap_remove(counter as usize % live.len());
                assert_eq!(slab.remove(key), Some(val));
                assert_eq!(slab.get(key), None);
            }
            for &(k, v) in &live {
                assert_eq!(slab.get(k), Some(&v));
            }
        }
        assert_eq!(slab.len(), live.len());
    });
}

/// Summary statistics are order-invariant.
#[test]
fn summary_order_invariant() {
    forall("summary_order_invariant", 256, |g| {
        let mut xs: Vec<f64> = (0..g.usize_in(1, 50))
            .map(|_| g.f64_in(-1e6, 1e6))
            .collect();
        let mut a = Summary::default();
        for &x in &xs {
            a.record(x);
        }
        xs.reverse();
        let mut b = Summary::default();
        for &x in &xs {
            b.record(x);
        }
        assert_eq!(a.min(), b.min());
        assert_eq!(a.max(), b.max());
        assert!((a.mean().unwrap() - b.mean().unwrap()).abs() < 1e-6);
    });
}
