//! The horizontal-diffusion numerics, shared by both variants and the
//! serial reference.
//!
//! All functions operate on `[j][k][i]`-ordered slices where a *line* is one
//! j-position (`ksize × isize` doubles). The caller passes a window of
//! `jn + 2` lines: line 0 is the left halo, lines `1..=jn` are interior, and
//! line `jn + 1` is the right halo.
//!
//! Stencils (simplified COSMO horizontal diffusion, paper §IV-C):
//!
//! ```text
//! lap  = 4·in − (in(i+1) + in(i−1) + in(j+1) + in(j−1))
//! flx  = lap(i+1) − lap;        flx = 0 if flx·(in(i+1) − in) > 0
//! fly  = lap(j+1) − lap;        fly = 0 if fly·(in(j+1) − in) > 0
//! out  = in − coeff·(flx − flx(i−1) + fly − fly(j−1))
//! ```
//!
//! The i-extremes (i = 0 and i = isize−1) are left untouched (fixed
//! boundary), identically in every variant.

use dcuda_core::types::Topology;
use dcuda_device::BlockCharge;

/// Grid line dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dims {
    /// Points along i (contiguous).
    pub isize: usize,
    /// Vertical levels.
    pub ksize: usize,
}

impl Dims {
    /// Doubles per j-line.
    pub fn line_len(&self) -> usize {
        self.isize * self.ksize
    }

    /// Index of `(j, k, i)` within a window of lines.
    #[inline]
    pub fn at(&self, j: usize, k: usize, i: usize) -> usize {
        (j * self.ksize + k) * self.isize + i
    }
}

/// Physics constants.
#[derive(Debug, Clone, Copy)]
pub struct StencilParams {
    /// Diffusion coefficient.
    pub coeff: f64,
}

impl Default for StencilParams {
    fn default() -> Self {
        StencilParams { coeff: 0.025 }
    }
}

/// Deterministic initial condition for global j-line `j_global`, level `k`,
/// point `i` (smooth, rank-independent so any decomposition agrees).
pub fn initial(j_global: usize, k: usize, i: usize) -> f64 {
    let x = i as f64 * 0.1;
    let y = j_global as f64 * 0.07;
    let z = k as f64 * 0.31;
    (x.sin() + y.cos()) * (1.0 + 0.1 * z.sin())
}

/// Compute `lap` for interior lines `1..=jn`, reading `input` halos.
pub fn compute_lap(input: &[f64], lap: &mut [f64], jn: usize, d: &Dims) {
    for j in 1..=jn {
        for k in 0..d.ksize {
            for i in 1..d.isize - 1 {
                lap[d.at(j, k, i)] = 4.0 * input[d.at(j, k, i)]
                    - (input[d.at(j, k, i + 1)]
                        + input[d.at(j, k, i - 1)]
                        + input[d.at(j + 1, k, i)]
                        + input[d.at(j - 1, k, i)]);
            }
        }
    }
}

/// Compute `flx` and `fly` for interior lines, reading `lap`'s right halo.
pub fn compute_fluxes(
    input: &[f64],
    lap: &[f64],
    flx: &mut [f64],
    fly: &mut [f64],
    jn: usize,
    d: &Dims,
) {
    for j in 1..=jn {
        for k in 0..d.ksize {
            for i in 1..d.isize - 1 {
                let f = lap[d.at(j, k, i + 1)] - lap[d.at(j, k, i)];
                flx[d.at(j, k, i)] = if f * (input[d.at(j, k, i + 1)] - input[d.at(j, k, i)]) > 0.0
                {
                    0.0
                } else {
                    f
                };
                let g = lap[d.at(j + 1, k, i)] - lap[d.at(j, k, i)];
                fly[d.at(j, k, i)] = if g * (input[d.at(j + 1, k, i)] - input[d.at(j, k, i)]) > 0.0
                {
                    0.0
                } else {
                    g
                };
            }
        }
    }
}

/// Compute `out` for interior lines, reading `fly`'s left halo.
pub fn compute_out(
    input: &[f64],
    flx: &[f64],
    fly: &[f64],
    out: &mut [f64],
    jn: usize,
    d: &Dims,
    p: &StencilParams,
) {
    for j in 1..=jn {
        for k in 0..d.ksize {
            for i in 1..d.isize - 1 {
                out[d.at(j, k, i)] = input[d.at(j, k, i)]
                    - p.coeff
                        * (flx[d.at(j, k, i)] - flx[d.at(j, k, i - 1)] + fly[d.at(j, k, i)]
                            - fly[d.at(j - 1, k, i)]);
            }
        }
    }
}

/// Hardware charges of each compute phase for `jn` interior lines
/// (streaming reads + writes of the arrays each stencil touches, and its
/// FLOPs).
pub fn phase_charges(jn: usize, d: &Dims) -> [BlockCharge; 3] {
    let pts = (jn * d.line_len()) as f64;
    let line = d.line_len() as f64 * 8.0;
    [
        // lap: read in (jn+2 lines), write lap (jn).
        BlockCharge {
            flops: 5.0 * pts,
            mem_bytes: (jn as f64 + 2.0 + jn as f64) * line,
        },
        // fluxes: read in + lap (+1 halo line), write flx + fly.
        BlockCharge {
            flops: 10.0 * pts,
            mem_bytes: (4.0 * jn as f64 + 1.0) * line,
        },
        // out: read in + flx + fly (+1 halo line), write out.
        BlockCharge {
            flops: 7.0 * pts,
            mem_bytes: (4.0 * jn as f64 + 1.0) * line,
        },
    ]
}

/// Run the whole computation serially on the global domain and return the
/// final `in` field (after the last swap) of all interior lines.
pub fn serial_reference(cfg: &super::StencilConfig) -> Vec<f64> {
    let d = cfg.dims;
    let jn = cfg.j_total();
    let line = d.line_len();
    // Global arrays with one halo line on each side (fixed zero boundary,
    // matching the edge ranks that never receive into their outer halos).
    let mut input = vec![0.0; (jn + 2) * line];
    let mut out = vec![0.0; (jn + 2) * line];
    let mut lap = vec![0.0; (jn + 2) * line];
    let mut flx = vec![0.0; (jn + 2) * line];
    let mut fly = vec![0.0; (jn + 2) * line];
    for j in 0..jn {
        for k in 0..d.ksize {
            for i in 0..d.isize {
                input[d.at(j + 1, k, i)] = initial(j, k, i);
            }
        }
    }
    let p = StencilParams::default();
    for _ in 0..cfg.iters {
        compute_lap(&input, &mut lap, jn, &d);
        compute_fluxes(&input, &lap, &mut flx, &mut fly, jn, &d);
        compute_out(&input, &flx, &fly, &mut out, jn, &d, &p);
        std::mem::swap(&mut input, &mut out);
    }
    input[line..(jn + 1) * line].to_vec()
}

/// Which world ranks neighbour `rank` along the j-ring (non-periodic).
pub fn neighbors(topo: &Topology, rank: u32) -> (Option<u32>, Option<u32>) {
    let left = (rank > 0).then(|| rank - 1);
    let right = (rank + 1 < topo.world_size()).then(|| rank + 1);
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> Dims {
        Dims { isize: 8, ksize: 2 }
    }

    #[test]
    fn indexing_is_row_major_in_i() {
        let d = dims();
        assert_eq!(d.at(0, 0, 0), 0);
        assert_eq!(d.at(0, 0, 7), 7);
        assert_eq!(d.at(0, 1, 0), 8);
        assert_eq!(d.at(1, 0, 0), 16);
        assert_eq!(d.line_len(), 16);
    }

    #[test]
    fn lap_of_constant_field_is_zero() {
        let d = dims();
        let input = vec![3.0; 4 * d.line_len()];
        let mut lap = vec![f64::NAN; 4 * d.line_len()];
        compute_lap(&input, &mut lap, 2, &d);
        for j in 1..=2 {
            for k in 0..d.ksize {
                for i in 1..d.isize - 1 {
                    assert_eq!(lap[d.at(j, k, i)], 0.0);
                }
            }
        }
    }

    #[test]
    fn flux_limiter_zeroes_up_gradient() {
        let d = dims();
        let n = 3 * d.line_len();
        // in increasing in i; lap also increasing in i -> f > 0 and
        // in(i+1)-in(i) > 0 -> limited to zero.
        let mut input = vec![0.0; n];
        let mut lap = vec![0.0; n];
        for j in 0..3 {
            for k in 0..d.ksize {
                for i in 0..d.isize {
                    input[d.at(j, k, i)] = i as f64;
                    lap[d.at(j, k, i)] = 2.0 * i as f64;
                }
            }
        }
        let mut flx = vec![f64::NAN; n];
        let mut fly = vec![f64::NAN; n];
        compute_fluxes(&input, &lap, &mut flx, &mut fly, 1, &d);
        for i in 1..d.isize - 1 {
            assert_eq!(flx[d.at(1, 0, i)], 0.0);
        }
    }

    #[test]
    fn out_equals_in_for_zero_fluxes() {
        let d = dims();
        let n = 3 * d.line_len();
        let mut input = vec![0.0; n];
        for (idx, v) in input.iter_mut().enumerate() {
            *v = idx as f64;
        }
        let flx = vec![0.0; n];
        let fly = vec![0.0; n];
        let mut out = vec![0.0; n];
        compute_out(
            &input,
            &flx,
            &fly,
            &mut out,
            1,
            &d,
            &StencilParams::default(),
        );
        for i in 1..d.isize - 1 {
            assert_eq!(out[d.at(1, 0, i)], input[d.at(1, 0, i)]);
        }
    }

    #[test]
    fn serial_reference_is_deterministic_and_bounded() {
        let cfg = crate::stencil::StencilConfig::tiny(1);
        let a = serial_reference(&cfg);
        let b = serial_reference(&cfg);
        assert_eq!(a, b);
        assert!(a.iter().all(|x| x.is_finite()));
        // Diffusion must not blow up.
        assert!(a.iter().all(|x| x.abs() < 100.0));
    }

    #[test]
    fn charges_scale_with_lines() {
        let d = dims();
        let [a1, ..] = phase_charges(1, &d);
        let [a2, ..] = phase_charges(2, &d);
        assert!(a2.flops > a1.flops);
        assert!(a2.mem_bytes > a1.mem_bytes);
    }
}
