//! The blocking dCUDA API on real threads: the paper's Figure 2 call shapes
//! (`put_notify` / `wait_notifications` / `flush` / `barrier`) executed by
//! the native runtime over the real sequence-numbered, credit-controlled
//! lock-free queues.
//!
//! ```text
//! cargo run --release --example threaded_runtime
//! ```

use dcuda::rt::{run_cluster, Rank, RtConfig, RtQuery, Tag, WindowId};

const W0: WindowId = WindowId(0);

fn main() {
    const CELLS: usize = 16;
    const STEPS: usize = 40;
    let devices = 2;
    let ranks_per_device = 3;
    let world = (devices * ranks_per_device) as usize;

    // Each rank owns CELLS f64 cells with double-buffered halos:
    // [halo_l par0, halo_l par1, cells..., halo_r par0, halo_r par1].
    let win_bytes = (CELLS + 4) * 8;
    let get = |w: &[u8], i: usize| f64::from_le_bytes(w[i * 8..(i + 1) * 8].try_into().unwrap());
    let set = |w: &mut [u8], i: usize, v: f64| {
        w[i * 8..(i + 1) * 8].copy_from_slice(&v.to_le_bytes());
    };

    let results: Vec<_> = (0..world)
        .map(|_| std::sync::Arc::new(std::sync::Mutex::new(0.0f64)))
        .collect();
    let mut programs: Vec<dcuda::rt::cluster::RankProgram> = Vec::new();
    for (r, result) in results.iter().enumerate() {
        let result = result.clone();
        programs.push(Box::new(move |ctx| {
            // Initial bump on rank 0.
            for c in 0..CELLS {
                let v = if r == 0 && c == 0 { 100.0 } else { 0.0 };
                set(ctx.win_mut(W0), c + 2, v);
            }
            ctx.barrier();
            let left = (r > 0).then(|| Rank((r - 1) as u32));
            let right = (r + 1 < world).then(|| Rank((r + 1) as u32));
            for it in 0..STEPS {
                let par = it % 2;
                if let Some(l) = left {
                    ctx.put_notify(W0, l, (CELLS + 2 + par) * 8, 2 * 8, 8, Tag(it as u32));
                }
                if let Some(rt) = right {
                    ctx.put_notify(W0, rt, par * 8, (CELLS + 1) * 8, 8, Tag(it as u32));
                }
                let expect = left.is_some() as usize + right.is_some() as usize;
                ctx.wait_notifications(RtQuery::exact(W0, Rank::ANY, Tag(it as u32)), expect);
                let w = ctx.win_mut(W0);
                let hl = get(w, par);
                let hr = get(w, CELLS + 2 + par);
                let prev: Vec<f64> = (0..CELLS).map(|c| get(w, c + 2)).collect();
                for c in 0..CELLS {
                    let lv = if c == 0 { hl } else { prev[c - 1] };
                    let rv = if c + 1 == CELLS { hr } else { prev[c + 1] };
                    set(w, c + 2, 0.5 * (lv + rv));
                }
            }
            ctx.barrier();
            let mass: f64 = (0..CELLS).map(|c| get(ctx.win(W0), c + 2)).sum();
            *result.lock().unwrap() = mass;
        }));
    }

    let report = run_cluster(
        &RtConfig {
            devices,
            ranks_per_device,
            windows: vec![win_bytes],
            ring_capacity: 32,
            ..RtConfig::default()
        },
        programs,
    );
    let masses: Vec<f64> = results.iter().map(|m| *m.lock().unwrap()).collect();
    let total: f64 = masses.iter().sum();
    println!("threaded runtime demo: {STEPS}-step diffusion over {world} rank threads on {devices} host threads");
    println!("  puts routed through the block managers: {}", report.puts);
    println!("  notifications enqueued: {}", report.notifications);
    println!("  per-rank mass after diffusion: {masses:.2?}");
    println!("  total mass: {total:.2} (diffusing rightward from rank 0)");
    assert!(total > 0.0 && total <= 100.0);
    assert!(masses[0] > masses[world - 1], "bump spreads from the left");
}
