//! CI entry point for the dcuda-verify toolchain.
//!
//! ```text
//! verify_check [--quick] [--replay SCHEDULE]
//! ```
//!
//! Runs, in order:
//!
//! 1. the **model-check regression corpus** (`dcuda_verify::run_suite`) —
//!    exhaustive interleaving enumeration of the production SPSC ring and
//!    notification compaction at small bounds, including the seeded
//!    `Release`→`Relaxed` mutation the checker must catch and the
//!    lost-wakeup liveness demo (Full tier by default, `--quick` for the
//!    `cargo test` budget);
//! 2. a **threaded-runtime verified smoke**: `try_run_cluster_verified`
//!    on a put/notify/barrier workload, invariant shards reconciled after
//!    the join must be clean;
//! 3. a **simulator monitor run**: the same workload class on the
//!    discrete-event `ClusterSim` with the token-level monitor attached,
//!    plus the transparency check (a verified run must report the same
//!    virtual time and event count as an unverified one);
//! 4. a **wait-for-graph demo**: the deadlock analyzer must flag a
//!    receiver whose only candidate sender already finished.
//!
//! `--replay 0,1,0,...` replays a schedule (as printed in a failure
//! report) against the seeded-mutation model and prints the outcome —
//! the recipe EXPERIMENTS.md documents for reproducing checker findings.

use dcuda_core::types::Topology;
use dcuda_core::{ClusterSim, RankCtx, RankKernel, Suspend, SystemSpec, WinId, WindowSpec};
use dcuda_rt::{Rank, RtConfig, RtQuery, Tag, WindowId};
use dcuda_verify::suite::mk_handoff;
use dcuda_verify::{mutation_model, run_suite, Schedule, SuiteEffort, WaitForGraph, WaitReason};

/// A rank kernel that puts `msgs` notified packets to its partner, then
/// waits for the same number back (full-duplex exchange; every rank is
/// both sender and receiver, so conservation is exercised in both roles).
struct Exchange {
    partner: u32,
    msgs: u32,
    phase: u32,
}

impl RankKernel for Exchange {
    fn resume(&mut self, ctx: &mut RankCtx<'_>) -> Suspend {
        match self.phase {
            0 => {
                self.phase = 1;
                for t in 0..self.msgs {
                    ctx.put_notify(WinId(0), dcuda_core::Rank(self.partner), 0, 0, 64, t);
                }
                Suspend::WaitNotifications {
                    win: Some(WinId(0)),
                    source: Some(dcuda_core::Rank(self.partner)),
                    tag: None,
                    count: self.msgs,
                }
            }
            _ => Suspend::Finished,
        }
    }
}

fn fail(section: &str, detail: &str) -> ! {
    eprintln!("verify_check: FAIL [{section}] {detail}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--replay") {
        let Some(text) = args.get(i + 1) else {
            fail(
                "replay",
                "--replay needs a SCHEDULE (comma-separated choices)",
            );
        };
        let Some(schedule) = Schedule::parse(text) else {
            fail("replay", &format!("cannot parse schedule {text:?}"));
        };
        let outcome = mutation_model().replay(mk_handoff(2, 1), &schedule);
        match outcome.failure() {
            Some(f) => println!("replay: reproduces failure — {f}"),
            None => println!("replay: schedule passes (no failure on this interleaving)"),
        }
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    for a in &args {
        if a != "--quick" {
            eprintln!("usage: verify_check [--quick] [--replay SCHEDULE]");
            std::process::exit(2);
        }
    }
    let started = std::time::Instant::now();

    // 1. Model-check corpus.
    let effort = if quick {
        SuiteEffort::Quick
    } else {
        SuiteEffort::Full
    };
    println!("== model-check corpus ({effort:?}) ==");
    let mut bad = 0;
    for r in run_suite(effort) {
        let verdict = if r.ok() { "ok" } else { "FAIL" };
        let detail = match (&r.expect_fail, r.outcome.failure()) {
            (Some(k), Some(f)) => format!("caught expected {k} ({f})"),
            (Some(k), None) => format!("MISSED expected {k}"),
            (None, Some(f)) => format!("{f}"),
            (None, None) => format!("{} executions", r.outcome.executions()),
        };
        println!("  {verdict:4} {:<40} {detail}", r.name);
        if !r.ok() {
            bad += 1;
        }
    }
    if bad > 0 {
        fail("suite", &format!("{bad} corpus entries off-verdict"));
    }

    // 2. Threaded runtime, invariant shards reconciled after the join.
    println!("== threaded runtime (verified) ==");
    let cfg = RtConfig {
        devices: 2,
        ranks_per_device: 2,
        windows: vec![4096],
        ring_capacity: 16,
        ..RtConfig::default()
    };
    let mut programs: Vec<dcuda_rt::cluster::RankProgram> = Vec::new();
    for rank in 0..cfg.world() {
        let partner = rank ^ 1;
        programs.push(Box::new(move |ctx| {
            for t in 0..8u32 {
                ctx.put_notify(WindowId(0), Rank(partner), 0, 0, 64, Tag(t));
            }
            ctx.flush();
            ctx.wait_notifications(RtQuery::exact(WindowId(0), Rank(partner), Tag::ANY), 8);
            ctx.barrier();
        }));
    }
    match dcuda_rt::try_run_cluster_verified(&cfg, programs) {
        Ok((report, verify)) => {
            if !verify.is_clean() {
                fail("rt", &verify.summary());
            }
            println!(
                "  ok: {} puts, {} matched, monitor clean ({} classes tracked)",
                report.puts, report.matched, verify.notifications_tracked
            );
        }
        Err(e) => fail("rt", &e.to_string()),
    }

    // 3. Simulator monitor + transparency.
    println!("== simulator monitor ==");
    let build = || {
        let topo = Topology {
            nodes: 2,
            ranks_per_node: 2,
        };
        let win = WindowSpec::uniform(&topo, 4096);
        let kernels: Vec<Box<dyn RankKernel>> = (0..topo.world_size())
            .map(|r| {
                Box::new(Exchange {
                    partner: r ^ 2,
                    msgs: 4,
                    phase: 0,
                }) as Box<dyn RankKernel>
            })
            .collect();
        ClusterSim::new(SystemSpec::greina(), topo, vec![win], kernels)
    };
    let plain = build().run();
    let mut sim = build();
    sim.enable_verification();
    let verified = sim.run(); // panics loudly on a violation
    let v = verified.verify.as_ref().unwrap_or_else(|| {
        fail("sim", "verified run carries no report");
    });
    println!(
        "  ok: {} notifications tracked, monitor clean",
        v.notifications_tracked
    );
    if plain.end_time != verified.end_time || plain.events != verified.events {
        fail(
            "sim",
            &format!(
                "monitor changed the run: {:?}/{} events vs {:?}/{} events",
                plain.end_time, plain.events, verified.end_time, verified.events
            ),
        );
    }
    println!("  ok: verified run byte-identical in virtual time and event count");

    // 4. Deadlock analyzer demo.
    println!("== wait-for graph ==");
    let mut graph = WaitForGraph::new(2);
    graph.set_done(0);
    graph.add_waiter(
        1,
        WaitReason::Notification {
            query: dcuda_queues::Query {
                win: 0,
                source: 0,
                tag: dcuda_queues::ANY,
            },
            want: 1,
        },
    );
    let analysis = graph.analyze();
    if !analysis.is_deadlock() || analysis.no_sender.is_empty() {
        fail("deadlock", &format!("analyzer missed the lint: {analysis}"));
    }
    println!("  ok: {}", format!("{analysis}").trim().replace('\n', "; "));

    println!(
        "verify_check: all sections passed ({:.2} s)",
        started.elapsed().as_secs_f64()
    );
}
