//! Pure collective-algorithm layer for the dCUDA runtime.
//!
//! The paper stops at point-to-point `put_notify` / notification waiting;
//! this crate supplies everything *above* that layer that does not touch a
//! transport: validated collective plans ([`CollPlan`]), element-typed
//! reduction kernels over raw window bytes ([`reduce_into`]), the segment
//! and neighbour arithmetic of ring / binomial-tree / recursive-doubling
//! schedules, and a serial reference reduction ([`serial_allreduce`]) the
//! property tests compare every distributed schedule against.
//!
//! The executor that turns these schedules into notified RMA lives in
//! `dcuda-rt`'s `coll` module (`CollCtx`); keeping this crate free of
//! runtime types lets the runtime depend on it without a cycle and lets the
//! schedule math be unit-tested exhaustively without spawning threads.
//!
//! Chunking model: every collective is executed in chunks of
//! [`CollPlan::chunk_bytes`]. Within one schedule step all outgoing chunk
//! puts are posted before the first incoming chunk is awaited, so chunk
//! *k+1*'s `put_notify` traffic is in flight while chunk *k*'s local
//! reduction runs — the TP/DP-overlap trick modern training stacks use.

#![warn(missing_docs)]

use std::fmt;
use std::ops::Range;

/// Element type of a collective reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dtype {
    /// Little-endian `u32` elements.
    U32,
    /// Little-endian `u64` elements.
    U64,
    /// Little-endian `i32` elements.
    I32,
    /// Little-endian IEEE-754 `f64` elements.
    F64,
}

impl Dtype {
    /// Element size in bytes.
    pub fn size(self) -> usize {
        match self {
            Dtype::U32 | Dtype::I32 => 4,
            Dtype::U64 | Dtype::F64 => 8,
        }
    }

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            Dtype::U32 => "u32",
            Dtype::U64 => "u64",
            Dtype::I32 => "i32",
            Dtype::F64 => "f64",
        }
    }
}

/// Combining operator of a collective reduction.
///
/// Integer `Sum` wraps, so every association order produces the same bytes;
/// `F64` results are deterministic for a fixed algorithm and chunking but
/// may differ *between* algorithms (association order differs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Elementwise (wrapping) addition.
    Sum,
    /// Elementwise minimum.
    Min,
    /// Elementwise maximum.
    Max,
}

impl ReduceOp {
    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            ReduceOp::Sum => "sum",
            ReduceOp::Min => "min",
            ReduceOp::Max => "max",
        }
    }
}

/// Collective schedule family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollAlgo {
    /// Ring reduce-scatter + ring all-gather (bandwidth-optimal, 2(N-1)
    /// steps of 1/N-sized segments).
    Ring,
    /// Binomial-tree reduce-to-root + binomial broadcast (latency-optimal
    /// for small buffers, works for any world size).
    Tree,
    /// Recursive doubling over the largest power-of-two sub-world with a
    /// pre/post fold for the remainder ranks.
    RecursiveDoubling,
}

impl CollAlgo {
    /// Canonical name (`ring`, `tree`, `rdbl`).
    pub fn name(self) -> &'static str {
        match self {
            CollAlgo::Ring => "ring",
            CollAlgo::Tree => "tree",
            CollAlgo::RecursiveDoubling => "rdbl",
        }
    }

    /// Parse a canonical name.
    pub fn parse(name: &str) -> Result<CollAlgo, CollError> {
        match name {
            "ring" => Ok(CollAlgo::Ring),
            "tree" => Ok(CollAlgo::Tree),
            "rdbl" => Ok(CollAlgo::RecursiveDoubling),
            _ => Err(CollError::UnknownAlgo),
        }
    }
}

/// Errors of collective plan validation and schedule execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollError {
    /// `chunk_bytes` of zero.
    ZeroChunk,
    /// `chunk_bytes` not a multiple of the element size.
    ChunkMisaligned {
        /// The offending chunk size.
        chunk_bytes: usize,
        /// Element size of the plan's dtype.
        elem: usize,
    },
    /// A buffer region whose length is not a multiple of the element size.
    BufferMisaligned {
        /// The offending region length.
        len: usize,
        /// Element size of the plan's dtype.
        elem: usize,
    },
    /// Reduction inputs of different lengths.
    LengthMismatch {
        /// Accumulator length.
        acc: usize,
        /// Source length.
        src: usize,
    },
    /// The runtime's collective scratch window is too small for this
    /// schedule (raise it via the cluster config).
    ScratchTooSmall {
        /// Bytes the schedule needs.
        need: usize,
        /// Bytes the scratch window has.
        have: usize,
    },
    /// A broadcast root outside the world.
    RootOutOfRange {
        /// The offending root.
        root: u32,
        /// World size.
        world: u32,
    },
    /// An algorithm name that is not `ring`, `tree` or `rdbl`.
    UnknownAlgo,
}

impl fmt::Display for CollError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollError::ZeroChunk => write!(f, "chunk_bytes must be positive"),
            CollError::ChunkMisaligned { chunk_bytes, elem } => write!(
                f,
                "chunk_bytes {chunk_bytes} not a multiple of the {elem}-byte element"
            ),
            CollError::BufferMisaligned { len, elem } => write!(
                f,
                "buffer of {len} bytes not a multiple of the {elem}-byte element"
            ),
            CollError::LengthMismatch { acc, src } => {
                write!(f, "reduce length mismatch: acc {acc} bytes, src {src} bytes")
            }
            CollError::ScratchTooSmall { need, have } => write!(
                f,
                "collective scratch of {have} bytes too small (schedule needs {need}; raise coll_scratch in the cluster config)"
            ),
            CollError::RootOutOfRange { root, world } => {
                write!(f, "broadcast root {root} outside the world of {world} ranks")
            }
            CollError::UnknownAlgo => {
                write!(f, "unknown collective algorithm (expected ring, tree or rdbl)")
            }
        }
    }
}

impl std::error::Error for CollError {}

/// A validated collective execution plan: schedule family, chunk
/// granularity, combining operator and element type.
///
/// Construct via [`CollPlan::builder`]; a `CollPlan` value is proof the
/// combination passed validation (positive, element-aligned chunking).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollPlan {
    algo: CollAlgo,
    chunk_bytes: usize,
    op: ReduceOp,
    dtype: Dtype,
}

impl CollPlan {
    /// Start building a plan (defaults: ring, 4 KiB chunks, `Sum` over
    /// `u64`).
    pub fn builder() -> CollPlanBuilder {
        CollPlanBuilder {
            algo: CollAlgo::Ring,
            chunk_bytes: 4096,
            op: ReduceOp::Sum,
            dtype: Dtype::U64,
        }
    }

    /// Schedule family.
    pub fn algo(&self) -> CollAlgo {
        self.algo
    }

    /// Chunk granularity in bytes.
    pub fn chunk_bytes(&self) -> usize {
        self.chunk_bytes
    }

    /// Combining operator.
    pub fn op(&self) -> ReduceOp {
        self.op
    }

    /// Element type.
    pub fn dtype(&self) -> Dtype {
        self.dtype
    }
}

/// Validating builder for [`CollPlan`].
#[derive(Debug, Clone, Copy)]
pub struct CollPlanBuilder {
    algo: CollAlgo,
    chunk_bytes: usize,
    op: ReduceOp,
    dtype: Dtype,
}

impl CollPlanBuilder {
    /// Schedule family.
    pub fn algo(mut self, algo: CollAlgo) -> Self {
        self.algo = algo;
        self
    }

    /// Chunk granularity in bytes (must be a positive multiple of the
    /// element size).
    pub fn chunk_bytes(mut self, bytes: usize) -> Self {
        self.chunk_bytes = bytes;
        self
    }

    /// Combining operator.
    pub fn op(mut self, op: ReduceOp) -> Self {
        self.op = op;
        self
    }

    /// Element type.
    pub fn dtype(mut self, dtype: Dtype) -> Self {
        self.dtype = dtype;
        self
    }

    /// Validate and produce the plan.
    pub fn build(self) -> Result<CollPlan, CollError> {
        if self.chunk_bytes == 0 {
            return Err(CollError::ZeroChunk);
        }
        let elem = self.dtype.size();
        if !self.chunk_bytes.is_multiple_of(elem) {
            return Err(CollError::ChunkMisaligned {
                chunk_bytes: self.chunk_bytes,
                elem,
            });
        }
        Ok(CollPlan {
            algo: self.algo,
            chunk_bytes: self.chunk_bytes,
            op: self.op,
            dtype: self.dtype,
        })
    }
}

macro_rules! reduce_typed {
    ($acc:expr, $src:expr, $op:expr, $ty:ty, $size:literal, $sum:expr) => {{
        for (a, s) in $acc.chunks_exact_mut($size).zip($src.chunks_exact($size)) {
            let av = <$ty>::from_le_bytes(a.try_into().unwrap());
            let sv = <$ty>::from_le_bytes(s.try_into().unwrap());
            let r: $ty = match $op {
                ReduceOp::Sum => $sum(av, sv),
                ReduceOp::Min => av.min(sv),
                ReduceOp::Max => av.max(sv),
            };
            a.copy_from_slice(&r.to_le_bytes());
        }
    }};
}

/// Elementwise reduction of `src` into `acc` (`acc[i] = op(acc[i], src[i])`)
/// over little-endian elements of `dtype`. Both slices must have equal,
/// element-aligned lengths.
pub fn reduce_into(
    acc: &mut [u8],
    src: &[u8],
    op: ReduceOp,
    dtype: Dtype,
) -> Result<(), CollError> {
    if acc.len() != src.len() {
        return Err(CollError::LengthMismatch {
            acc: acc.len(),
            src: src.len(),
        });
    }
    let elem = dtype.size();
    if !acc.len().is_multiple_of(elem) {
        return Err(CollError::BufferMisaligned {
            len: acc.len(),
            elem,
        });
    }
    match dtype {
        Dtype::U32 => reduce_typed!(acc, src, op, u32, 4, u32::wrapping_add),
        Dtype::U64 => reduce_typed!(acc, src, op, u64, 8, u64::wrapping_add),
        Dtype::I32 => reduce_typed!(acc, src, op, i32, 4, i32::wrapping_add),
        Dtype::F64 => reduce_typed!(acc, src, op, f64, 8, |a: f64, b: f64| a + b),
    }
    Ok(())
}

/// Serial reference allreduce: fold every rank's buffer in rank order.
///
/// For integer operators (wrapping sum, min, max) the result is independent
/// of association order, so every distributed schedule must match it
/// bitwise; for `F64` sums it is *a* deterministic order, not necessarily
/// the schedule's.
pub fn serial_allreduce(
    inputs: &[&[u8]],
    op: ReduceOp,
    dtype: Dtype,
) -> Result<Vec<u8>, CollError> {
    let first = inputs
        .first()
        .ok_or(CollError::LengthMismatch { acc: 0, src: 0 })?;
    let mut acc = first.to_vec();
    for src in &inputs[1..] {
        reduce_into(&mut acc, src, op, dtype)?;
    }
    Ok(acc)
}

/// Byte range (relative to the buffer start) of segment `seg` when a
/// `len`-byte buffer of `elem`-byte elements is partitioned into `world`
/// contiguous segments with sizes differing by at most one element.
pub fn segment_range(len: usize, elem: usize, world: u32, seg: u32) -> Range<usize> {
    debug_assert!(
        len.is_multiple_of(elem),
        "misaligned buffer reached segment_range"
    );
    let n = len / elem;
    let world = world as usize;
    let seg = seg as usize;
    let base = n / world;
    let rem = n % world;
    let start = seg * base + seg.min(rem);
    let size = base + usize::from(seg < rem);
    (start * elem)..((start + size) * elem)
}

/// Largest segment size in bytes under [`segment_range`] partitioning.
pub fn max_segment_bytes(len: usize, elem: usize, world: u32) -> usize {
    let n = len / elem;
    let world = world as usize;
    (n / world + usize::from(!n.is_multiple_of(world))) * elem
}

/// Split `len` bytes into `(offset, len)` chunk spans of at most
/// `chunk_bytes` each, in offset order. Empty for `len == 0`.
pub fn chunk_spans(len: usize, chunk_bytes: usize) -> Vec<(usize, usize)> {
    debug_assert!(chunk_bytes > 0);
    let mut spans = Vec::with_capacity(len.div_ceil(chunk_bytes.max(1)));
    let mut off = 0;
    while off < len {
        let c = chunk_bytes.min(len - off);
        spans.push((off, c));
        off += c;
    }
    spans
}

/// Right neighbour on the rank ring.
pub fn ring_right(rank: u32, world: u32) -> u32 {
    (rank + 1) % world
}

/// Left neighbour on the rank ring.
pub fn ring_left(rank: u32, world: u32) -> u32 {
    (rank + world - 1) % world
}

/// `ceil(log2(n))` for `n >= 1` (0 for `n == 1`).
pub fn ceil_log2(n: u32) -> u32 {
    debug_assert!(n >= 1);
    32 - (n - 1).leading_zeros()
}

/// Largest power of two `<= n` for `n >= 1`.
pub fn pow2_floor(n: u32) -> u32 {
    debug_assert!(n >= 1);
    1 << (31 - n.leading_zeros())
}

/// Scratch bytes the runtime executor needs for an allreduce of a `len`-byte
/// buffer under `algo`: ring schedules land each step's incoming segment in
/// its own slot, tree/recursive-doubling land each round's full incoming
/// buffer in its own slot (slots stay disjoint so a fast peer running ahead
/// can never clobber bytes still being reduced).
pub fn allreduce_scratch_bytes(algo: CollAlgo, len: usize, elem: usize, world: u32) -> usize {
    if world <= 1 {
        return 0;
    }
    match algo {
        CollAlgo::Ring => (world as usize - 1) * max_segment_bytes(len, elem, world),
        CollAlgo::Tree => ceil_log2(world) as usize * len,
        CollAlgo::RecursiveDoubling => (ceil_log2(pow2_floor(world)) as usize + 1) * len,
    }
}

/// Scratch bytes for a ring reduce-scatter of a `len`-byte buffer.
pub fn reduce_scatter_scratch_bytes(len: usize, elem: usize, world: u32) -> usize {
    if world <= 1 {
        return 0;
    }
    (world as usize - 1) * max_segment_bytes(len, elem, world)
}

/// One step of a binomial-tree reduction round for `rank` (any world size):
/// at round `k` (partner distance `1 << k`) a rank either sends its buffer
/// to its parent and leaves the reduce phase, receives from a child, or
/// idles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeStep {
    /// Send the (partially reduced) buffer to this parent and stop reducing.
    SendTo(u32),
    /// Receive and reduce a child's buffer.
    RecvFrom(u32),
    /// No partner this round.
    Idle,
}

/// The binomial reduce-phase role of `rank` at round `k` (virtual rank
/// space; rotate by the root before calling for rooted trees).
pub fn tree_reduce_step(rank: u32, world: u32, k: u32) -> TreeStep {
    let bit = 1u32 << k;
    let span = bit << 1;
    if rank % span == bit {
        TreeStep::SendTo(rank - bit)
    } else if rank.is_multiple_of(span) && rank + bit < world {
        TreeStep::RecvFrom(rank + bit)
    } else {
        TreeStep::Idle
    }
}

/// The round at which virtual rank `vr != 0` receives its broadcast data
/// (the index of its lowest set bit), and its parent.
pub fn bcast_parent(vr: u32) -> (u32, u32) {
    debug_assert!(vr != 0);
    let k = vr.trailing_zeros();
    (k, vr - (1 << k))
}

/// The children of virtual rank `vr` in a binomial broadcast over `world`
/// ranks, in forwarding order (largest stride first).
pub fn bcast_children(vr: u32, world: u32) -> Vec<u32> {
    let recv_round = if vr == 0 {
        ceil_log2(world)
    } else {
        vr.trailing_zeros()
    };
    (0..recv_round)
        .rev()
        .map(|k| vr + (1 << k))
        .filter(|&c| c < world)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builder_validates() {
        let p = CollPlan::builder()
            .algo(CollAlgo::Tree)
            .chunk_bytes(64)
            .op(ReduceOp::Min)
            .dtype(Dtype::I32)
            .build()
            .unwrap();
        assert_eq!(p.algo(), CollAlgo::Tree);
        assert_eq!(p.chunk_bytes(), 64);
        assert_eq!(p.op(), ReduceOp::Min);
        assert_eq!(p.dtype(), Dtype::I32);
        assert_eq!(
            CollPlan::builder().chunk_bytes(0).build(),
            Err(CollError::ZeroChunk)
        );
        assert_eq!(
            CollPlan::builder()
                .chunk_bytes(12)
                .dtype(Dtype::U64)
                .build(),
            Err(CollError::ChunkMisaligned {
                chunk_bytes: 12,
                elem: 8
            })
        );
    }

    #[test]
    fn algo_names_roundtrip() {
        for a in [CollAlgo::Ring, CollAlgo::Tree, CollAlgo::RecursiveDoubling] {
            assert_eq!(CollAlgo::parse(a.name()), Ok(a));
        }
        assert_eq!(CollAlgo::parse("bogus"), Err(CollError::UnknownAlgo));
    }

    #[test]
    fn reduce_kernels_per_dtype() {
        let mut acc = [3u32.to_le_bytes(), 7u32.to_le_bytes()].concat();
        let src = [5u32.to_le_bytes(), 2u32.to_le_bytes()].concat();
        reduce_into(&mut acc, &src, ReduceOp::Sum, Dtype::U32).unwrap();
        assert_eq!(acc, [8u32.to_le_bytes(), 9u32.to_le_bytes()].concat());
        reduce_into(&mut acc, &src, ReduceOp::Min, Dtype::U32).unwrap();
        assert_eq!(acc, [5u32.to_le_bytes(), 2u32.to_le_bytes()].concat());

        let mut acc = (-5i32).to_le_bytes().to_vec();
        reduce_into(&mut acc, &3i32.to_le_bytes(), ReduceOp::Max, Dtype::I32).unwrap();
        assert_eq!(acc, 3i32.to_le_bytes());

        let mut acc = u64::MAX.to_le_bytes().to_vec();
        reduce_into(&mut acc, &2u64.to_le_bytes(), ReduceOp::Sum, Dtype::U64).unwrap();
        assert_eq!(acc, 1u64.to_le_bytes(), "u64 sum wraps");

        let mut acc = 1.5f64.to_le_bytes().to_vec();
        reduce_into(&mut acc, &0.25f64.to_le_bytes(), ReduceOp::Sum, Dtype::F64).unwrap();
        assert_eq!(acc, 1.75f64.to_le_bytes());
    }

    #[test]
    fn reduce_rejects_bad_shapes() {
        let mut acc = vec![0u8; 8];
        assert!(matches!(
            reduce_into(&mut acc, &[0u8; 4], ReduceOp::Sum, Dtype::U64),
            Err(CollError::LengthMismatch { .. })
        ));
        let mut odd = vec![0u8; 6];
        assert!(matches!(
            reduce_into(&mut odd, &[0u8; 6], ReduceOp::Sum, Dtype::U64),
            Err(CollError::BufferMisaligned { .. })
        ));
    }

    #[test]
    fn serial_reference_is_order_free_for_integers() {
        let a: Vec<u8> = (0..4u32).flat_map(|v| v.to_le_bytes()).collect();
        let b: Vec<u8> = (10..14u32).flat_map(|v| v.to_le_bytes()).collect();
        let c: Vec<u8> = (100..104u32).flat_map(|v| v.to_le_bytes()).collect();
        let abc = serial_allreduce(&[&a, &b, &c], ReduceOp::Sum, Dtype::U32).unwrap();
        let cba = serial_allreduce(&[&c, &b, &a], ReduceOp::Sum, Dtype::U32).unwrap();
        assert_eq!(abc, cba);
    }

    #[test]
    fn segments_cover_exactly() {
        for (len, elem, world) in [(64, 8, 4u32), (72, 8, 5), (24, 4, 7), (8, 8, 4), (0, 8, 3)] {
            let mut covered = 0;
            for seg in 0..world {
                let r = segment_range(len, elem, world, seg);
                assert_eq!(r.start, covered, "segments must be contiguous");
                assert!(r.len().is_multiple_of(elem));
                assert!(r.len() <= max_segment_bytes(len, elem, world));
                covered = r.end;
            }
            assert_eq!(covered, len, "segments must cover the buffer");
        }
    }

    #[test]
    fn chunk_spans_cover() {
        assert_eq!(chunk_spans(0, 64), vec![]);
        assert_eq!(chunk_spans(100, 64), vec![(0, 64), (64, 36)]);
        assert_eq!(chunk_spans(64, 64), vec![(0, 64)]);
        let spans = chunk_spans(1000, 8);
        assert_eq!(spans.iter().map(|&(_, l)| l).sum::<usize>(), 1000);
    }

    #[test]
    fn log_helpers() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(pow2_floor(1), 1);
        assert_eq!(pow2_floor(6), 4);
        assert_eq!(pow2_floor(8), 8);
    }

    #[test]
    fn tree_schedule_reduces_to_root() {
        // Simulate the message pattern: every rank's value must reach rank 0
        // exactly once, for both power-of-two and ragged worlds.
        for world in [1u32, 2, 3, 4, 6, 7, 8, 13] {
            let mut holds: Vec<Vec<u32>> = (0..world).map(|r| vec![r]).collect();
            let mut active: Vec<bool> = vec![true; world as usize];
            for k in 0..ceil_log2(world.max(2)) {
                for r in 0..world {
                    if !active[r as usize] {
                        continue;
                    }
                    if let TreeStep::SendTo(parent) = tree_reduce_step(r, world, k) {
                        let vals = std::mem::take(&mut holds[r as usize]);
                        holds[parent as usize].extend(vals);
                        active[r as usize] = false;
                    }
                }
            }
            let mut at_root = holds[0].clone();
            at_root.sort_unstable();
            let expect: Vec<u32> = (0..world).collect();
            assert_eq!(at_root, expect, "world {world}");
        }
    }

    #[test]
    fn bcast_tree_reaches_everyone() {
        for world in [1u32, 2, 3, 5, 8, 13] {
            let mut reached = vec![false; world as usize];
            reached[0] = true;
            // Process in parent-before-child order: virtual rank order works
            // because every parent is numerically smaller.
            for vr in 0..world {
                if !reached[vr as usize] {
                    continue;
                }
                for c in bcast_children(vr, world) {
                    assert!(!reached[c as usize], "world {world}: {c} reached twice");
                    reached[c as usize] = true;
                }
            }
            assert!(reached.iter().all(|&r| r), "world {world}: {reached:?}");
            for vr in 1..world {
                let (_, parent) = bcast_parent(vr);
                assert!(bcast_children(parent, world).contains(&vr));
            }
        }
    }

    #[test]
    fn scratch_sizing() {
        assert_eq!(allreduce_scratch_bytes(CollAlgo::Ring, 64, 8, 1), 0);
        assert_eq!(allreduce_scratch_bytes(CollAlgo::Ring, 64, 8, 4), 3 * 16);
        assert_eq!(allreduce_scratch_bytes(CollAlgo::Tree, 64, 8, 8), 3 * 64);
        assert_eq!(
            allreduce_scratch_bytes(CollAlgo::RecursiveDoubling, 64, 8, 6),
            (2 + 1) * 64
        );
        assert_eq!(reduce_scatter_scratch_bytes(64, 8, 4), 3 * 16);
    }

    #[test]
    fn errors_render() {
        assert!(CollError::ScratchTooSmall { need: 10, have: 5 }
            .to_string()
            .contains("coll_scratch"));
        assert!(CollError::ChunkMisaligned {
            chunk_bytes: 3,
            elem: 8
        }
        .to_string()
        .contains("multiple"));
    }
}
