//! Property-based tests for the MPI subset: collective timing invariants
//! and matching-plane conservation.

use dcuda_des::{SimDuration, SimTime};
use dcuda_mpi::collective::{barrier_exit_times, bcast_exit_times, reduce_exit_times};
use dcuda_mpi::plane::{MessagePlane, MpiRank};
use proptest::prelude::*;

fn entry_times() -> impl Strategy<Value = Vec<SimTime>> {
    prop::collection::vec(0u64..10_000, 1..20)
        .prop_map(|v| v.into_iter().map(|us| SimTime::from_ps(us * 1_000_000)).collect())
}

fn hop() -> impl Fn(u64) -> SimDuration {
    |bytes: u64| SimDuration::from_micros(2) + SimDuration::from_nanos(bytes)
}

proptest! {
    /// A barrier never releases anyone before the last entrant, and every
    /// exit is at or after the participant's own entry.
    #[test]
    fn barrier_is_a_barrier(entry in entry_times()) {
        let exits = barrier_exit_times(&entry, &hop());
        let max_entry = *entry.iter().max().unwrap();
        for (e, x) in entry.iter().zip(&exits) {
            prop_assert!(x >= e);
            if entry.len() > 1 {
                prop_assert!(*x >= max_entry, "exit {x} before last entry {max_entry}");
            }
        }
        // Bounded: at most ceil(log2 n) rounds of hops beyond the max entry.
        let rounds = (usize::BITS - (entry.len() - 1).leading_zeros()).max(1);
        let bound = max_entry + SimDuration::from_micros(3 * rounds as u64);
        for x in &exits {
            prop_assert!(*x <= bound);
        }
    }

    /// Broadcast: the root is first; everyone receives after the root's
    /// entry; total depth is bounded by popcount-of-vrank hops.
    #[test]
    fn bcast_reaches_everyone_after_root(entry in entry_times(), root_sel in 0usize..20) {
        let n = entry.len();
        let root = root_sel % n;
        let exits = bcast_exit_times(&entry, root, 64, &hop());
        prop_assert_eq!(exits[root], entry[root]);
        for (i, x) in exits.iter().enumerate() {
            if i != root {
                prop_assert!(*x > entry[root], "participant {i} got data before the root sent");
                prop_assert!(*x >= entry[i], "participant {i} received before entering");
            }
        }
    }

    /// Reduce: the root finishes last among its dependency chain — no
    /// earlier than any participant's entry.
    #[test]
    fn reduce_root_after_all_entries(entry in entry_times(), root_sel in 0usize..20) {
        let n = entry.len();
        let root = root_sel % n;
        let exits = reduce_exit_times(&entry, root, 64, SimDuration::from_nanos(100), &hop());
        let max_entry = *entry.iter().max().unwrap();
        if n > 1 {
            // >= because the root itself can be the last entrant (children
            // arrived earlier and wait in its receive buffers).
            prop_assert!(exits[root] >= max_entry);
        } else {
            prop_assert_eq!(exits[root], entry[root]);
        }
    }

    /// The matching plane conserves messages: every send is eventually
    /// received exactly once by wildcard receives, in send order per pair.
    #[test]
    fn plane_conserves_messages(
        sends in prop::collection::vec((0u32..4, 0u32..4, 0u32..3), 0..30),
    ) {
        let mut plane: MessagePlane<usize> = MessagePlane::new(4);
        for (i, &(src, dst, tag)) in sends.iter().enumerate() {
            let out = plane.isend(
                MpiRank(dst),
                MpiRank(src),
                tag,
                8,
                SimTime::from_ps(i as u64 + 1),
                i,
            );
            prop_assert!(out.is_none(), "no receives posted yet");
        }
        // Drain each endpoint with wildcard receives.
        let mut received = Vec::new();
        for dst in 0..4u32 {
            while plane.unexpected_depth(MpiRank(dst)) > 0 {
                let (_, out) = plane.irecv(MpiRank(dst), None, None, SimTime::from_ps(1_000_000));
                let out = out.expect("unexpected queue non-empty");
                received.push(out.payload);
            }
        }
        received.sort_unstable();
        prop_assert_eq!(received, (0..sends.len()).collect::<Vec<_>>());
    }
}
