//! MPI-CUDA variant of the SpMV mini-application.
//!
//! Host-driven: binomial broadcast of the 84 kB input-vector part down each
//! grid column (one exchange phase per tree round), local SpMV kernel,
//! binomial reduction of full-patch partials along the rows (full-size
//! messages — which OpenMPI stages through the host, paper §IV-C), vector
//! adds on the device, and a host barrier.

use super::csr::{generate_patch, generate_x, SpmvConfig};
use super::SpmvResult;
use dcuda_core::baseline::{BaselineCosts, ExchangeMsg, MpiCudaSim};
use dcuda_core::SystemSpec;
use dcuda_device::BlockCharge;

/// Run the MPI-CUDA SpMV. Returns the global output vector and timing with
/// the communication share tracked separately.
pub fn run_mpicuda(spec: &SystemSpec, cfg: &SpmvConfig) -> (Vec<f64>, SpmvResult) {
    let topo = cfg.topology();
    let g = cfg.grid;
    let n = cfg.patch;
    let nodes = cfg.nodes() as usize;
    let vec_bytes = (n * 8) as u64;
    let mut sim = MpiCudaSim::new(spec.clone(), BaselineCosts::default(), topo);

    // Numerics state: per node the (possibly received) x part and partial y.
    let patches: Vec<_> = (0..nodes)
        .map(|node| {
            generate_patch(
                cfg,
                cfg.grid_pos(node as u32).0,
                cfg.grid_pos(node as u32).1,
            )
        })
        .collect();
    let mut xs: Vec<Vec<f64>> = (0..nodes)
        .map(|node| {
            let (prow, pcol) = cfg.grid_pos(node as u32);
            if prow == 0 {
                generate_x(cfg, pcol)
            } else {
                vec![0.0; n]
            }
        })
        .collect();
    let mut partials: Vec<Vec<f64>> = vec![vec![0.0; n]; nodes];

    let spmv_charges: Vec<Vec<BlockCharge>> = (0..nodes)
        .map(|node| {
            (0..cfg.ranks_per_node)
                .map(|l| patches[node].spmv_charge(cfg.rank_rows(l)))
                .collect()
        })
        .collect();
    let add_charges: Vec<Vec<BlockCharge>> = (0..nodes)
        .map(|_| {
            (0..cfg.ranks_per_node)
                .map(|l| {
                    let rows = cfg.rank_rows(l).len() as f64;
                    BlockCharge {
                        flops: rows,
                        mem_bytes: 24.0 * rows,
                    }
                })
                .collect()
        })
        .collect();

    for _ in 0..cfg.iters {
        // 1) Broadcast x down each column: binomial rounds.
        let mut k = 1u32;
        while k < g {
            let mut msgs = Vec::new();
            for pcol in 0..g {
                for v in 0..k.min(g) {
                    let dst_v = v + k;
                    if dst_v >= g {
                        continue;
                    }
                    msgs.push(ExchangeMsg {
                        src: cfg.node_at(v, pcol),
                        dst: cfg.node_at(dst_v, pcol),
                        bytes: vec_bytes,
                    });
                    let x = xs[cfg.node_at(v, pcol) as usize].clone();
                    xs[cfg.node_at(dst_v, pcol) as usize] = x;
                }
            }
            sim.exchange_phase(&msgs);
            k <<= 1;
        }

        // 2) Local SpMV kernel.
        for node in 0..nodes {
            let yp = &mut partials[node];
            patches[node].spmv_rows(&xs[node], yp, 0..n);
        }
        sim.kernel_phase(&spmv_charges);

        // 3) Reduce partials along rows to column 0 (binomial; full-patch
        //    messages), with a device add kernel per round.
        let mut k = 1u32;
        while k < g {
            let mut msgs = Vec::new();
            for prow in 0..g {
                let mut v = 0u32;
                while v + k < g {
                    msgs.push(ExchangeMsg {
                        src: cfg.node_at(prow, v + k),
                        dst: cfg.node_at(prow, v),
                        bytes: vec_bytes,
                    });
                    let src = partials[cfg.node_at(prow, v + k) as usize].clone();
                    let dst = &mut partials[cfg.node_at(prow, v) as usize];
                    for (d, s) in dst.iter_mut().zip(&src) {
                        *d += s;
                    }
                    v += 2 * k;
                }
            }
            sim.exchange_phase(&msgs);
            sim.kernel_phase(&add_charges);
            k <<= 1;
        }

        // 4) Synchronize everyone (emulating the power method's
        //    normalization step).
        sim.barrier_phase();
    }

    // Assemble y from column 0.
    let mut y = vec![0.0; n * g as usize];
    for prow in 0..g {
        let node = cfg.node_at(prow, 0) as usize;
        y[prow as usize * n..(prow as usize + 1) * n].copy_from_slice(&partials[node]);
    }
    (
        y,
        SpmvResult {
            time_ms: sim.elapsed().as_millis_f64(),
            comm_ms: sim.exchange_elapsed().as_millis_f64(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmv::csr::serial_reference;

    fn check(cfg: &SpmvConfig) {
        let (y, res) = run_mpicuda(&SystemSpec::greina(), cfg);
        let reference = serial_reference(cfg);
        for (i, (a, b)) in y.iter().zip(&reference).enumerate() {
            assert!(
                (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                "y[{i}] = {a} vs reference {b}"
            );
        }
        assert!(res.time_ms > 0.0);
    }

    #[test]
    fn grids_match_reference() {
        check(&SpmvConfig::tiny(1));
        check(&SpmvConfig::tiny(2));
        check(&SpmvConfig::tiny(3));
    }

    #[test]
    fn communication_dominates_scaling() {
        // Fig. 11's observation: the scaling cost corresponds roughly to the
        // communication time.
        let spec = SystemSpec::greina();
        let (_, r1) = run_mpicuda(&spec, &SpmvConfig::tiny(1));
        let (_, r3) = run_mpicuda(&spec, &SpmvConfig::tiny(3));
        let scaling_cost = r3.time_ms - r1.time_ms;
        assert!(r3.comm_ms > 0.0);
        assert!(
            scaling_cost <= r3.comm_ms * 1.5,
            "scaling cost {} should track comm {}",
            scaling_cost,
            r3.comm_ms
        );
    }
}
