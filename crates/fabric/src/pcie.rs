//! PCI-Express link between one host and one device.
//!
//! Two traffic classes matter for dCUDA (paper §III-C):
//!
//! * **Queue transactions** — small mapped-memory writes/reads used by the
//!   circular-buffer queues. An enqueue costs one transaction; polling a
//!   remote tail pointer costs one read. These are latency-dominated and
//!   modeled as fixed-latency jobs on the link FIFO.
//! * **DMA copies** — bulk transfers (host staging) with a setup latency and
//!   bandwidth-bound serialization.
//!
//! Both classes share the link FIFO, so queue traffic experiences head-of-line
//! blocking behind bulk DMA — a real effect on the testbed.

use crate::spec::PcieSpec;
use dcuda_des::stats::Counter;
use dcuda_des::{FifoResource, SimDuration, SimTime};

/// Traffic class of one logged PCIe job.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PcieOp {
    /// Queue-entry posted write.
    Txn,
    /// Remote tail-pointer / credit poll read.
    Poll,
    /// Bulk DMA copy.
    Dma,
}

impl PcieOp {
    /// Short static label (trace/diagnostic output).
    pub fn label(self) -> &'static str {
        match self {
            PcieOp::Txn => "txn",
            PcieOp::Poll => "poll",
            PcieOp::Dma => "dma",
        }
    }
}

/// Lifecycle record of one PCIe job (only collected while the link log is
/// enabled).
#[derive(Clone, Copy, Debug)]
pub struct PcieRecord {
    /// Traffic class.
    pub op: PcieOp,
    /// Payload bytes (zero for polls).
    pub bytes: u64,
    /// Instant the job was issued.
    pub issue: SimTime,
    /// Instant the link began servicing it (later than `issue` under
    /// head-of-line blocking).
    pub start: SimTime,
    /// Instant the link released it (excludes the one-way wire latency a
    /// posted write still needs before it is visible remotely).
    pub done: SimTime,
}

/// A single host–device PCIe link.
pub struct PcieLink {
    spec: PcieSpec,
    fifo: FifoResource,
    /// Queue transactions issued (each a single PCIe transaction).
    pub txns: Counter,
    /// DMA copies issued.
    pub dmas: Counter,
    /// Remote-poll reads issued.
    pub polls: Counter,
    /// Job lifecycle log; `None` (the default) records nothing.
    log: Option<Vec<PcieRecord>>,
}

impl PcieLink {
    /// Create an idle link.
    pub fn new(spec: PcieSpec) -> Self {
        PcieLink {
            spec,
            fifo: FifoResource::new(),
            txns: Counter::default(),
            dmas: Counter::default(),
            polls: Counter::default(),
            log: None,
        }
    }

    /// Link parameters.
    pub fn spec(&self) -> &PcieSpec {
        &self.spec
    }

    /// Start collecting per-job lifecycle records.
    pub fn enable_log(&mut self) {
        self.log.get_or_insert_with(Vec::new);
    }

    /// Drain the collected lifecycle records (empty if logging was never
    /// enabled). Logging stays enabled.
    pub fn take_log(&mut self) -> Vec<PcieRecord> {
        self.log.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Record one serviced job.
    #[inline]
    fn log_job(
        &mut self,
        op: PcieOp,
        bytes: u64,
        issue: SimTime,
        service: SimDuration,
        done: SimTime,
    ) {
        if let Some(log) = &mut self.log {
            log.push(PcieRecord {
                op,
                bytes,
                issue,
                start: SimTime::from_ps(done.as_ps().saturating_sub(service.as_ps())),
                done,
            });
        }
    }

    /// Post a queue-entry write of `bytes` (an enqueue). Entries larger than
    /// the atomic transaction width cost proportionally more transactions.
    /// Returns the instant the write is visible on the other side.
    ///
    /// Posted writes pipeline: each occupies the link for `txn_gap`, and the
    /// one-way `txn_latency` is added after the link releases the last
    /// transaction of the entry.
    pub fn post_txn(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let txns = bytes.div_ceil(self.spec.max_txn_bytes).max(1);
        self.txns.add(txns);
        let service = self.spec.txn_gap.saturating_mul(txns);
        let (_, done) = self.fifo.submit(now, service);
        self.log_job(PcieOp::Txn, bytes, now, service, done);
        done + self.spec.txn_latency
    }

    /// Read a remote location (tail-pointer poll, credit refresh). Returns
    /// the instant the value is available to the poller.
    pub fn poll(&mut self, now: SimTime) -> SimTime {
        self.polls.inc();
        let service = self.spec.poll_latency;
        let (_, done) = self.fifo.submit(now, service);
        self.log_job(PcieOp::Poll, 0, now, service, done);
        done
    }

    /// Bulk DMA copy of `bytes`. Returns the completion instant.
    pub fn dma_copy(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.dmas.inc();
        let service = self.spec.dma_setup
            + SimDuration::from_secs_f64(bytes as f64 / self.spec.dma_bandwidth);
        let (_, done) = self.fifo.submit(now, service);
        self.log_job(PcieOp::Dma, bytes, now, service, done);
        done
    }

    /// Cumulative busy time of the link.
    pub fn busy_total(&self) -> SimDuration {
        self.fifo.busy_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> PcieLink {
        PcieLink::new(PcieSpec::greina())
    }

    #[test]
    fn small_enqueue_is_one_txn() {
        let mut l = link();
        let spec = PcieSpec::greina();
        let t = l.post_txn(SimTime::ZERO, 16);
        assert_eq!(t, SimTime::ZERO + spec.txn_gap + spec.txn_latency);
        assert_eq!(l.txns.get(), 1);
    }

    #[test]
    fn posted_writes_pipeline() {
        // A burst of enqueues is gap-limited, not latency-limited: the Nth
        // write lands N*gap + latency after the burst start.
        let mut l = link();
        let spec = PcieSpec::greina();
        let mut last = SimTime::ZERO;
        for _ in 0..100 {
            last = l.post_txn(SimTime::ZERO, 16);
        }
        let expect = SimTime::ZERO + spec.txn_gap.saturating_mul(100) + spec.txn_latency;
        assert_eq!(last, expect);
    }

    #[test]
    fn oversized_entry_costs_multiple_txns() {
        let mut l = link();
        l.post_txn(SimTime::ZERO, 40); // ceil(40/16) = 3
        assert_eq!(l.txns.get(), 3);
    }

    #[test]
    fn zero_byte_txn_still_costs_one() {
        let mut l = link();
        l.post_txn(SimTime::ZERO, 0);
        assert_eq!(l.txns.get(), 1);
    }

    #[test]
    fn dma_has_setup_plus_bandwidth() {
        let mut l = link();
        let bytes = 11_000_000; // 1 ms at 11 GB/s
        let t = l.dma_copy(SimTime::ZERO, bytes);
        let expect_us = 1000.0 + 1.0; // + 1 us setup
        assert!((t.as_micros_f64() - expect_us).abs() < 0.01, "got {t}");
    }

    #[test]
    fn queue_txn_blocks_behind_dma() {
        let mut l = link();
        let dma_done = l.dma_copy(SimTime::ZERO, 11_000_000);
        let txn_done = l.post_txn(SimTime::ZERO, 16);
        assert!(txn_done > dma_done, "head-of-line blocking expected");
    }

    #[test]
    fn polls_are_cheap_and_counted() {
        let mut l = link();
        let t = l.poll(SimTime::ZERO);
        assert_eq!(t, SimTime::ZERO + PcieSpec::greina().poll_latency);
        assert_eq!(l.polls.get(), 1);
    }
}
