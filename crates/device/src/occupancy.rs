//! Occupancy calculation: how many blocks fit in flight.
//!
//! dCUDA must know this bound exactly — ranks are blocks, blocks cannot be
//! preempted on Kepler, and a barrier among ranks deadlocks unless every rank
//! is resident simultaneously (paper §III-A: "our implementation therefore
//! limits the number of blocks to the maximum the device can have in flight
//! at once").

use crate::spec::DeviceSpec;

/// A kernel launch configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of blocks launched.
    pub blocks: u32,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Registers per thread (compiler-limited; the paper uses
    /// `-maxrregcount=26` to guarantee full residency).
    pub registers_per_thread: u32,
}

impl LaunchConfig {
    /// The paper's launch configuration: 208 blocks, 128 threads per block,
    /// 26 registers per thread (§IV-A).
    pub fn paper() -> Self {
        LaunchConfig {
            blocks: 208,
            threads_per_block: 128,
            registers_per_thread: 26,
        }
    }
}

/// Result of an occupancy query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occupancy {
    /// Blocks resident per SM.
    pub blocks_per_sm: u32,
    /// Blocks resident on the whole device.
    pub resident_blocks: u32,
    /// Which hardware limit binds.
    pub limited_by: OccupancyLimit,
}

/// The hardware limit that bounds residency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OccupancyLimit {
    /// The per-SM resident-block limit.
    Blocks,
    /// The per-SM resident-thread limit.
    Threads,
    /// The register file.
    Registers,
}

/// Compute how many blocks of the given configuration are resident per SM
/// and on the device.
///
/// # Panics
/// Panics if the configuration cannot run at all (one block exceeds an SM).
pub fn occupancy(spec: &DeviceSpec, cfg: &LaunchConfig) -> Occupancy {
    assert!(cfg.threads_per_block > 0, "empty blocks cannot run");
    assert!(
        cfg.threads_per_block <= spec.max_threads_per_sm,
        "block of {} threads exceeds SM capacity {}",
        cfg.threads_per_block,
        spec.max_threads_per_sm
    );
    let regs_per_block = cfg.registers_per_thread * cfg.threads_per_block;
    assert!(
        regs_per_block <= spec.registers_per_sm,
        "block register footprint {} exceeds register file {}",
        regs_per_block,
        spec.registers_per_sm
    );

    let by_threads = spec.max_threads_per_sm / cfg.threads_per_block;
    let by_regs = spec
        .registers_per_sm
        .checked_div(regs_per_block)
        .unwrap_or(u32::MAX);
    let by_blocks = spec.max_blocks_per_sm;

    let (blocks_per_sm, limited_by) = [
        (by_blocks, OccupancyLimit::Blocks),
        (by_threads, OccupancyLimit::Threads),
        (by_regs, OccupancyLimit::Registers),
    ]
    .into_iter()
    .min_by_key(|&(n, _)| n)
    .expect("non-empty candidate list");

    Occupancy {
        blocks_per_sm,
        resident_blocks: blocks_per_sm * spec.sm_count,
        limited_by,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_fully_resident() {
        let spec = DeviceSpec::k80();
        let occ = occupancy(&spec, &LaunchConfig::paper());
        assert_eq!(occ.resident_blocks, 208);
        assert_eq!(occ.blocks_per_sm, 16);
        // 128 threads x 16 = 2048 (thread limit) and 16 = block limit bind
        // simultaneously; ties resolve to the first in our candidate order.
        assert_eq!(occ.limited_by, OccupancyLimit::Blocks);
    }

    #[test]
    fn register_pressure_reduces_residency() {
        let spec = DeviceSpec::k80();
        let cfg = LaunchConfig {
            blocks: 208,
            threads_per_block: 128,
            registers_per_thread: 128, // 16384 regs/block -> 8 blocks/SM
        };
        let occ = occupancy(&spec, &cfg);
        assert_eq!(occ.blocks_per_sm, 8);
        assert_eq!(occ.limited_by, OccupancyLimit::Registers);
    }

    #[test]
    fn fat_blocks_limited_by_threads() {
        let spec = DeviceSpec::k80();
        let cfg = LaunchConfig {
            blocks: 26,
            threads_per_block: 1024,
            registers_per_thread: 26,
        };
        let occ = occupancy(&spec, &cfg);
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.limited_by, OccupancyLimit::Threads);
    }

    #[test]
    #[should_panic(expected = "exceeds SM capacity")]
    fn oversized_block_rejected() {
        let spec = DeviceSpec::k80();
        occupancy(
            &spec,
            &LaunchConfig {
                blocks: 1,
                threads_per_block: 4096,
                registers_per_thread: 1,
            },
        );
    }

    #[test]
    #[should_panic(expected = "register footprint")]
    fn register_hog_rejected() {
        let spec = DeviceSpec::k80();
        occupancy(
            &spec,
            &LaunchConfig {
                blocks: 1,
                threads_per_block: 2048,
                registers_per_thread: 255,
            },
        );
    }
}
