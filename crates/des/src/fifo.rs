//! FIFO serializing resource (store-and-forward server).
//!
//! Models a link that transmits one message at a time: a NIC injection port,
//! a PCI-Express lane, a DMA engine. Because service times are deterministic
//! and the discipline is FIFO, the completion instant of a submission is
//! known immediately: `max(now, busy_until) + service`. The resource
//! therefore needs no internal events — the caller schedules delivery at the
//! returned instant.

use crate::time::{SimDuration, SimTime};

/// Identifier of a job accepted by a [`FifoResource`] (monotonic sequence).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FifoJobId(pub u64);

/// A FIFO store-and-forward server.
#[derive(Debug, Clone)]
pub struct FifoResource {
    busy_until: SimTime,
    next_id: u64,
    /// Cumulative busy time, for utilization statistics.
    busy_total: SimDuration,
    /// Cumulative queueing delay experienced by submissions.
    queued_total: SimDuration,
}

impl FifoResource {
    /// Create an idle resource.
    pub fn new() -> Self {
        FifoResource {
            busy_until: SimTime::ZERO,
            next_id: 0,
            busy_total: SimDuration::ZERO,
            queued_total: SimDuration::ZERO,
        }
    }

    /// Submit a job at `now` requiring `service` time. Returns the job id and
    /// the instant at which the job completes (leaves the server).
    pub fn submit(&mut self, now: SimTime, service: SimDuration) -> (FifoJobId, SimTime) {
        let start = if self.busy_until > now {
            self.queued_total += self.busy_until.since(now);
            self.busy_until
        } else {
            now
        };
        let done = start + service;
        self.busy_until = done;
        self.busy_total += service;
        let id = FifoJobId(self.next_id);
        self.next_id += 1;
        (id, done)
    }

    /// Instant at which the server drains, given no further submissions.
    #[inline]
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// True if the server is idle at `now`.
    #[inline]
    pub fn is_idle_at(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// Cumulative service time delivered.
    #[inline]
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total
    }

    /// Cumulative queueing delay imposed on submissions.
    #[inline]
    pub fn queued_total(&self) -> SimDuration {
        self.queued_total
    }

    /// Number of jobs accepted.
    #[inline]
    pub fn jobs_accepted(&self) -> u64 {
        self.next_id
    }
}

impl Default for FifoResource {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const US: u64 = 1_000_000; // ps per microsecond

    #[test]
    fn idle_server_serves_immediately() {
        let mut f = FifoResource::new();
        let (_, done) = f.submit(SimTime::from_ps(10 * US), SimDuration::from_micros(5));
        assert_eq!(done, SimTime::from_ps(15 * US));
    }

    #[test]
    fn back_to_back_jobs_serialize() {
        let mut f = FifoResource::new();
        let t0 = SimTime::ZERO;
        let (_, d1) = f.submit(t0, SimDuration::from_micros(3));
        let (_, d2) = f.submit(t0, SimDuration::from_micros(4));
        assert_eq!(d1, SimTime::from_ps(3 * US));
        assert_eq!(d2, SimTime::from_ps(7 * US));
        assert_eq!(f.queued_total(), SimDuration::from_micros(3));
    }

    #[test]
    fn gap_resets_queueing() {
        let mut f = FifoResource::new();
        f.submit(SimTime::ZERO, SimDuration::from_micros(1));
        // Arrives after the server drained: no queueing.
        let (_, done) = f.submit(SimTime::from_ps(10 * US), SimDuration::from_micros(2));
        assert_eq!(done, SimTime::from_ps(12 * US));
        assert_eq!(f.queued_total(), SimDuration::ZERO);
    }

    #[test]
    fn utilization_accounting() {
        let mut f = FifoResource::new();
        f.submit(SimTime::ZERO, SimDuration::from_micros(2));
        f.submit(SimTime::ZERO, SimDuration::from_micros(2));
        assert_eq!(f.busy_total(), SimDuration::from_micros(4));
        assert_eq!(f.jobs_accepted(), 2);
    }

    #[test]
    fn ids_are_monotonic() {
        let mut f = FifoResource::new();
        let (a, _) = f.submit(SimTime::ZERO, SimDuration::ZERO);
        let (b, _) = f.submit(SimTime::ZERO, SimDuration::ZERO);
        assert!(b.0 > a.0);
    }
}
