//! Statistics collection for simulation runs.
//!
//! Everything here is allocation-light and updates in O(1); the benchmark
//! harness reads the aggregates after a run. Time-weighted statistics follow
//! the usual DES convention: a value is weighted by how long it was held.

use crate::time::{SimDuration, SimTime};

/// A monotonically increasing event counter.
#[derive(Debug, Default, Clone, Copy)]
pub struct Counter(u64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }
}

/// Running scalar summary: count, mean, min, max (Welford-free; sums are fine
/// at our magnitudes).
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Summary {
    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of observations, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Minimum observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

/// Time-weighted average of a piecewise-constant value (e.g. queue depth,
/// blocks in flight).
#[derive(Debug, Clone, Copy)]
pub struct TimeWeighted {
    value: f64,
    last_change: SimTime,
    weighted_sum: f64,
    start: SimTime,
}

impl TimeWeighted {
    /// Start tracking at `start` with initial `value`.
    pub fn new(start: SimTime, value: f64) -> Self {
        TimeWeighted {
            value,
            last_change: start,
            weighted_sum: 0.0,
            start,
        }
    }

    /// Record a change of the tracked value at `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        self.weighted_sum += self.value * now.since(self.last_change).as_secs_f64();
        self.value = value;
        self.last_change = now;
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Time-weighted mean over `[start, now]`.
    pub fn mean(&self, now: SimTime) -> f64 {
        let total = now.since(self.start).as_secs_f64();
        if total <= 0.0 {
            return self.value;
        }
        let ws = self.weighted_sum + self.value * now.since(self.last_change).as_secs_f64();
        ws / total
    }
}

/// Power-of-two latency histogram over `SimDuration`s, bucketed by
/// microsecond log2 (bucket 0: <1 µs, bucket k: `[2^(k-1), 2^k)` µs).
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    summary: Summary,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: vec![0; 32],
            summary: Summary::default(),
        }
    }
}

impl LatencyHistogram {
    /// Record a latency sample.
    pub fn record(&mut self, d: SimDuration) {
        let us = d.as_micros_f64();
        self.summary.record(us);
        let bucket = if us < 1.0 {
            0
        } else {
            (us.log2().floor() as usize + 1).min(self.buckets.len() - 1)
        };
        self.buckets[bucket] += 1;
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Scalar summary (in microseconds).
    pub fn summary(&self) -> &Summary {
        &self.summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn summary_aggregates() {
        let mut s = Summary::default();
        for x in [3.0, 1.0, 2.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), Some(2.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(3.0));
    }

    #[test]
    fn empty_summary_is_none() {
        let s = Summary::default();
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn time_weighted_mean() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        // 0 for 1s, then 10 for 1s -> mean 5 at t=2s.
        tw.set(SimTime::from_ps(1_000_000_000_000), 10.0);
        let mean = tw.mean(SimTime::from_ps(2_000_000_000_000));
        assert!((mean - 5.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = LatencyHistogram::default();
        h.record(SimDuration::from_nanos(500)); // <1us -> bucket 0
        h.record(SimDuration::from_micros(1)); // [1,2) -> bucket 1
        h.record(SimDuration::from_micros(3)); // [2,4) -> bucket 2
        h.record(SimDuration::from_micros(19)); // [16,32) -> bucket 5
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[2], 1);
        assert_eq!(h.buckets()[5], 1);
        assert_eq!(h.summary().count(), 4);
    }
}
