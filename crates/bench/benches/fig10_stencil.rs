//! Figure 10 bench: stencil (horizontal diffusion) weak scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcuda_apps::stencil::{run_dcuda, run_mpicuda, StencilConfig};
use dcuda_core::SystemSpec;

fn bench(c: &mut Criterion) {
    let spec = SystemSpec::greina();
    println!("Figure 10 series (paper shape: dCUDA weak-scales flat — halo fully overlapped; MPI-CUDA pays the halo):");
    for nodes in [1u32, 2, 4, 8] {
        let mut cfg = StencilConfig::paper(nodes);
        cfg.iters = 20;
        let (_, d) = run_dcuda(&spec, &cfg);
        let (_, m) = run_mpicuda(&spec, &cfg);
        println!(
            "  nodes={nodes}: dCUDA {:>7.2} ms, MPI-CUDA {:>7.2} ms, halo {:>6.2} ms",
            d.time_ms, m.time_ms, m.halo_ms
        );
    }
    let mut g = c.benchmark_group("fig10_stencil");
    g.sample_size(10);
    let mut cfg = StencilConfig::paper(2);
    cfg.iters = 5;
    g.bench_with_input(BenchmarkId::new("dcuda", 2), &cfg, |b, cfg| {
        b.iter(|| run_dcuda(&spec, cfg))
    });
    g.bench_with_input(BenchmarkId::new("mpicuda", 2), &cfg, |b, cfg| {
        b.iter(|| run_mpicuda(&spec, cfg))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
