//! A generation-checked slab allocator for simulation entities.
//!
//! Models allocate short-lived entities (in-flight messages, jobs, pending
//! requests) at high rates; a slab gives O(1) insert/remove with stable keys
//! and no per-entity heap allocation. Generations catch use-after-free keys,
//! which in a simulator otherwise manifest as silent cross-talk between
//! unrelated transfers.

/// Key into a [`Slab`]; invalidated when its slot is reused.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SlotKey {
    index: u32,
    generation: u32,
}

impl SlotKey {
    /// A key that never resolves (useful as a placeholder).
    pub const INVALID: SlotKey = SlotKey {
        index: u32::MAX,
        generation: u32::MAX,
    };

    /// Raw slot index (stable for the lifetime of the entry).
    #[inline]
    pub fn index(self) -> usize {
        self.index as usize
    }

    /// Pack the key into a `u64` (for threading keys through `u64` tags).
    #[inline]
    pub fn to_bits(self) -> u64 {
        (self.index as u64) << 32 | self.generation as u64
    }

    /// Reconstruct a key packed by [`to_bits`](Self::to_bits).
    #[inline]
    pub fn from_bits(bits: u64) -> Self {
        SlotKey {
            index: (bits >> 32) as u32,
            generation: bits as u32,
        }
    }
}

enum Slot<T> {
    Occupied {
        generation: u32,
        value: T,
    },
    Free {
        generation: u32,
        next_free: Option<u32>,
    },
}

/// A slab with generation-checked keys.
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free_head: Option<u32>,
    len: usize,
}

impl<T> Slab<T> {
    /// Create an empty slab.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free_head: None,
            len: 0,
        }
    }

    /// Create an empty slab with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(cap),
            free_head: None,
            len: 0,
        }
    }

    /// Number of live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a value, returning its key.
    pub fn insert(&mut self, value: T) -> SlotKey {
        self.len += 1;
        match self.free_head {
            Some(idx) => {
                let slot = &mut self.slots[idx as usize];
                let generation = match *slot {
                    Slot::Free {
                        generation,
                        next_free,
                    } => {
                        self.free_head = next_free;
                        generation.wrapping_add(1)
                    }
                    Slot::Occupied { .. } => unreachable!("free list points at occupied slot"),
                };
                *slot = Slot::Occupied { generation, value };
                SlotKey {
                    index: idx,
                    generation,
                }
            }
            None => {
                let index = u32::try_from(self.slots.len()).expect("slab exceeds u32 slots");
                self.slots.push(Slot::Occupied {
                    generation: 0,
                    value,
                });
                SlotKey {
                    index,
                    generation: 0,
                }
            }
        }
    }

    /// Remove and return the value for `key`, or `None` if stale/absent.
    pub fn remove(&mut self, key: SlotKey) -> Option<T> {
        let slot = self.slots.get_mut(key.index as usize)?;
        match slot {
            Slot::Occupied { generation, .. } if *generation == key.generation => {
                let old = std::mem::replace(
                    slot,
                    Slot::Free {
                        generation: key.generation,
                        next_free: self.free_head,
                    },
                );
                self.free_head = Some(key.index);
                self.len -= 1;
                match old {
                    Slot::Occupied { value, .. } => Some(value),
                    Slot::Free { .. } => unreachable!(),
                }
            }
            _ => None,
        }
    }

    /// Shared access to the value for `key`.
    pub fn get(&self, key: SlotKey) -> Option<&T> {
        match self.slots.get(key.index as usize)? {
            Slot::Occupied { generation, value } if *generation == key.generation => Some(value),
            _ => None,
        }
    }

    /// Exclusive access to the value for `key`.
    pub fn get_mut(&mut self, key: SlotKey) -> Option<&mut T> {
        match self.slots.get_mut(key.index as usize)? {
            Slot::Occupied { generation, value } if *generation == key.generation => Some(value),
            _ => None,
        }
    }

    /// True if `key` refers to a live entry.
    pub fn contains(&self, key: SlotKey) -> bool {
        self.get(key).is_some()
    }

    /// Iterate over `(key, &value)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (SlotKey, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Slot::Occupied { generation, value } => Some((
                SlotKey {
                    index: i as u32,
                    generation: *generation,
                },
                value,
            )),
            Slot::Free { .. } => None,
        })
    }

    /// Iterate over `(key, &mut value)` pairs in slot order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (SlotKey, &mut T)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Slot::Occupied { generation, value } => Some((
                    SlotKey {
                        index: i as u32,
                        generation: *generation,
                    },
                    value,
                )),
                Slot::Free { .. } => None,
            })
    }
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.get(b), Some(&"b"));
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.get(a), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn stale_keys_rejected_after_reuse() {
        let mut s = Slab::new();
        let a = s.insert(1);
        s.remove(a);
        let b = s.insert(2);
        // Slot is reused but generation advanced.
        assert_eq!(a.index(), b.index());
        assert_eq!(s.get(a), None);
        assert_eq!(s.remove(a), None);
        assert_eq!(s.get(b), Some(&2));
    }

    #[test]
    fn free_list_reuses_lifo() {
        let mut s = Slab::new();
        let keys: Vec<_> = (0..4).map(|i| s.insert(i)).collect();
        s.remove(keys[1]);
        s.remove(keys[3]);
        let k = s.insert(10);
        assert_eq!(k.index(), keys[3].index());
        let k2 = s.insert(11);
        assert_eq!(k2.index(), keys[1].index());
    }

    #[test]
    fn iteration_skips_free() {
        let mut s = Slab::new();
        let a = s.insert(1);
        let _b = s.insert(2);
        let c = s.insert(3);
        s.remove(a);
        s.remove(c);
        let vals: Vec<_> = s.iter().map(|(_, v)| *v).collect();
        assert_eq!(vals, vec![2]);
    }

    #[test]
    fn get_mut_mutates() {
        let mut s = Slab::new();
        let a = s.insert(5);
        *s.get_mut(a).unwrap() += 1;
        assert_eq!(s.get(a), Some(&6));
    }

    #[test]
    fn invalid_key_never_resolves() {
        let mut s: Slab<u8> = Slab::new();
        assert!(!s.contains(SlotKey::INVALID));
        assert_eq!(s.remove(SlotKey::INVALID), None);
    }
}
