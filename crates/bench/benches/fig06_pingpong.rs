//! Figure 6 bench: ping-pong put bandwidth, shared vs distributed.
//!
//! Prints the figure's series (simulated metrics), then times the simulation
//! itself with Criterion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcuda_apps::micro::pingpong::{figure6_sizes, run, Placement};
use dcuda_core::SystemSpec;

fn print_series() {
    let spec = SystemSpec::greina();
    println!("Figure 6 series (paper shape: distributed saturates near the network limit, shared near the single-block copy limit):");
    for placement in [Placement::Shared, Placement::Distributed] {
        for bytes in figure6_sizes() {
            let r = run(&spec, placement, bytes, if bytes > 65536 { 3 } else { 30 });
            println!(
                "  {placement:?} {bytes:>8} B: {:>8.2} us, {:>9.1} MB/s",
                r.latency_us, r.bandwidth_mbs
            );
        }
    }
}

fn bench(c: &mut Criterion) {
    print_series();
    let spec = SystemSpec::greina();
    let mut g = c.benchmark_group("fig06_pingpong");
    g.sample_size(10);
    for placement in [Placement::Shared, Placement::Distributed] {
        g.bench_with_input(
            BenchmarkId::new("sim", format!("{placement:?}")),
            &placement,
            |b, &p| b.iter(|| run(&spec, p, 1024, 50)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
