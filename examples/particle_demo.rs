//! Particle simulation demo: short-range interactions with dynamic particle
//! migration between ranks (the paper's first mini-application).
//!
//! ```text
//! cargo run --release --example particle_demo
//! ```
//!
//! Runs the dCUDA variant on 2 simulated nodes, verifies the trajectories
//! bit-for-bit against the serial reference, and reports how the population
//! redistributed — the evolving load imbalance the paper points to as the
//! limit on overlap for this workload.

use dcuda::apps::particles::{model, run_dcuda, ParticleConfig};
use dcuda::core::SystemSpec;

fn main() {
    let mut cfg = ParticleConfig::paper(2);
    cfg.cells_per_node = 52;
    cfg.iters = 50;
    let spec = SystemSpec::greina();

    let initial: Vec<usize> = (0..cfg.total_cells())
        .map(|c| model::init_cell(&cfg, c).len())
        .collect();
    let total: usize = initial.iter().sum();
    println!(
        "particle demo: {} particles in {} cells on {} nodes, {} iterations",
        total,
        cfg.total_cells(),
        cfg.nodes,
        cfg.iters
    );

    let (cells, result) = run_dcuda(&spec, &cfg);
    let reference = model::serial_reference(&cfg);
    assert_eq!(
        model::digest(&cells),
        model::digest(&reference),
        "dCUDA trajectories must match the serial reference exactly"
    );

    let after: Vec<usize> = cells.iter().map(|p| p.len()).collect();
    let moved: usize = initial
        .iter()
        .zip(&after)
        .map(|(a, b)| a.abs_diff(*b))
        .sum();
    let max = *after.iter().max().unwrap();
    let min = *after.iter().min().unwrap();
    println!("  simulated execution time: {:.3} ms", result.time_ms);
    println!(
        "  net population change across cells: {moved} (conserved total: {})",
        after.iter().sum::<usize>()
    );
    println!(
        "  load imbalance after {} steps: min {} / max {} particles per cell (factor {:.2})",
        cfg.iters,
        min,
        max,
        max as f64 / min.max(1) as f64
    );
    assert_eq!(after.iter().sum::<usize>(), total, "particles conserved");
}
