//! Dependency-free readiness polling for the socket reactor.
//!
//! The reactor thread of [`crate::socket::SocketPlane`] progresses every
//! TCP connection of a process from one thread; it needs to sleep until
//! *any* connection has bytes (or hangs up) and to be woken by host-side
//! code (teardown, parked sends). Production crates reach for `mio` or an
//! async runtime here; this crate is deliberately `std`-only, so this
//! module is a minimal shim over `poll(2)`:
//!
//! * [`PollShim::wait`] — level-triggered readiness over a set of
//!   [`TcpStream`]s plus the shim's internal wakeup channel, built on a
//!   raw `poll(2)` FFI declaration (no libc crate; the symbol is already
//!   linked by `std`);
//! * [`Waker`] — a pipe-style doorbell (`UnixStream::pair`) any thread can
//!   ring to interrupt a `wait` in progress;
//! * [`wait_writable`] / [`wait_readable`] — single-socket readiness
//!   parks used by the blocking-semantics write helpers once a stream has
//!   been switched to nonblocking mode.
//!
//! On non-Unix targets the shim degrades to a short-sleep spurious-ready
//! emulation: every waited stream reports ready and the caller's
//! nonblocking reads/writes sort out reality. Correct, just not idle.

use std::io;
use std::net::TcpStream;

/// What a caller wants to know about one stream.
#[derive(Debug, Clone, Copy, Default)]
pub struct Interest {
    /// Wake when the stream has bytes (or EOF) to read.
    pub read: bool,
    /// Wake when the stream can accept writes.
    pub write: bool,
}

/// What `poll` reported about one stream.
#[derive(Debug, Clone, Copy, Default)]
pub struct Readiness {
    /// A read will make progress (data, EOF, or a pending error to reap).
    pub readable: bool,
    /// A write will make progress.
    pub writable: bool,
    /// The peer hung up or the descriptor errored (`POLLHUP`/`POLLERR`/
    /// `POLLNVAL`); the next read settles what happened.
    pub closed: bool,
}

#[cfg(unix)]
mod sys {
    //! Raw `poll(2)` declaration. The constants are identical across
    //! Linux and the BSDs for the events used here.
    #[repr(C)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }
    pub const POLLIN: i16 = 0x0001;
    pub const POLLOUT: i16 = 0x0004;
    pub const POLLERR: i16 = 0x0008;
    pub const POLLHUP: i16 = 0x0010;
    pub const POLLNVAL: i16 = 0x0020;
    #[cfg(target_os = "linux")]
    pub type NfdsT = core::ffi::c_ulong;
    #[cfg(not(target_os = "linux"))]
    pub type NfdsT = core::ffi::c_uint;
    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: core::ffi::c_int) -> core::ffi::c_int;
    }
}

#[cfg(unix)]
mod imp {
    use super::{sys, Interest, Readiness};
    use std::io::{self, Read, Write};
    use std::net::TcpStream;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::sync::Arc;

    /// The reactor-side end of the shim: poll a set of streams plus the
    /// wakeup channel.
    pub struct PollShim {
        wake_rx: UnixStream,
    }

    /// A cloneable doorbell that interrupts a [`PollShim::wait`].
    #[derive(Clone)]
    pub struct Waker {
        wake_tx: Arc<UnixStream>,
    }

    impl Waker {
        /// Ring the doorbell. Never blocks: a full pipe means a wake is
        /// already pending, which is all a level-triggered waiter needs.
        pub fn wake(&self) {
            let _ = (&*self.wake_tx).write(&[1u8]);
        }
    }

    impl PollShim {
        /// Build the shim and its doorbell.
        pub fn new() -> io::Result<(PollShim, Waker)> {
            let (wake_tx, wake_rx) = UnixStream::pair()?;
            wake_rx.set_nonblocking(true)?;
            wake_tx.set_nonblocking(true)?;
            Ok((
                PollShim { wake_rx },
                Waker {
                    wake_tx: Arc::new(wake_tx),
                },
            ))
        }

        /// Sleep until a stream is ready per its interest, the doorbell
        /// rings, or `timeout_ms` elapses (negative = forever). Fills
        /// `out` index-aligned with `streams`; returns whether the
        /// doorbell rang (pending wakes are drained).
        pub fn wait(
            &mut self,
            streams: &[(&TcpStream, Interest)],
            out: &mut Vec<Readiness>,
            timeout_ms: i32,
        ) -> io::Result<bool> {
            let mut fds: Vec<sys::PollFd> = streams
                .iter()
                .map(|(s, it)| sys::PollFd {
                    fd: s.as_raw_fd(),
                    events: if it.read { sys::POLLIN } else { 0 }
                        | if it.write { sys::POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            fds.push(sys::PollFd {
                fd: self.wake_rx.as_raw_fd(),
                events: sys::POLLIN,
                revents: 0,
            });
            poll_retry(&mut fds, timeout_ms)?;
            out.clear();
            for f in &fds[..streams.len()] {
                out.push(readiness(f.revents));
            }
            let woken = fds[streams.len()].revents & sys::POLLIN != 0;
            if woken {
                // Drain every pending doorbell byte so the next wait
                // sleeps again.
                let mut sink = [0u8; 64];
                while matches!(self.wake_rx.read(&mut sink), Ok(n) if n > 0) {}
            }
            Ok(woken)
        }
    }

    fn readiness(revents: i16) -> Readiness {
        // Hangup/error both count as readable: the caller's next read
        // observes the EOF or reaps the error instead of spinning.
        Readiness {
            readable: revents & (sys::POLLIN | sys::POLLHUP | sys::POLLERR) != 0,
            writable: revents & (sys::POLLOUT | sys::POLLERR) != 0,
            closed: revents & (sys::POLLHUP | sys::POLLERR | sys::POLLNVAL) != 0,
        }
    }

    fn poll_retry(fds: &mut [sys::PollFd], timeout_ms: i32) -> io::Result<i32> {
        loop {
            let rc = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as sys::NfdsT, timeout_ms) };
            if rc >= 0 {
                return Ok(rc);
            }
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::Interrupted {
                return Err(e);
            }
        }
    }

    /// Park until `stream` is ready for the given interest (EINTR retried).
    pub fn wait_one(stream: &TcpStream, it: Interest) -> io::Result<()> {
        let mut fds = [sys::PollFd {
            fd: stream.as_raw_fd(),
            events: if it.read { sys::POLLIN } else { 0 } | if it.write { sys::POLLOUT } else { 0 },
            revents: 0,
        }];
        poll_retry(&mut fds, -1).map(|_| ())
    }
}

#[cfg(not(unix))]
mod imp {
    use super::{Interest, Readiness};
    use std::io;
    use std::net::TcpStream;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    /// Spurious-ready emulation: sleep briefly, report everything ready.
    pub struct PollShim {
        woken: Arc<AtomicBool>,
    }

    /// Doorbell for the emulated shim.
    #[derive(Clone)]
    pub struct Waker {
        woken: Arc<AtomicBool>,
    }

    impl Waker {
        /// Ring the doorbell.
        pub fn wake(&self) {
            self.woken.store(true, Ordering::Release);
        }
    }

    impl PollShim {
        /// Build the shim and its doorbell.
        pub fn new() -> io::Result<(PollShim, Waker)> {
            let woken = Arc::new(AtomicBool::new(false));
            Ok((
                PollShim {
                    woken: woken.clone(),
                },
                Waker { woken },
            ))
        }

        /// Emulated wait: a short sleep, then every stream reports ready
        /// per its interest. The caller's nonblocking I/O resolves truth.
        pub fn wait(
            &mut self,
            streams: &[(&TcpStream, Interest)],
            out: &mut Vec<Readiness>,
            _timeout_ms: i32,
        ) -> io::Result<bool> {
            if !self.woken.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_micros(500));
            }
            out.clear();
            for (_, it) in streams {
                out.push(Readiness {
                    readable: it.read,
                    writable: it.write,
                    closed: false,
                });
            }
            Ok(self.woken.swap(false, Ordering::AcqRel))
        }
    }

    /// Emulated single-stream park.
    pub fn wait_one(_stream: &TcpStream, _it: Interest) -> io::Result<()> {
        std::thread::sleep(Duration::from_micros(500));
        Ok(())
    }
}

pub use imp::{PollShim, Waker};

/// Park until `stream` accepts writes. The write helpers call this when a
/// nonblocking socket returns `WouldBlock` mid-flush, preserving the
/// blocking semantics the send path was written against while the shared
/// file description stays nonblocking for the reactor's reads.
pub fn wait_writable(stream: &TcpStream) -> io::Result<()> {
    imp::wait_one(
        stream,
        Interest {
            read: false,
            write: true,
        },
    )
}

/// Park until `stream` has bytes (or EOF) to read — the blocking-read
/// escape hatch for handshake-time code running on a nonblocking socket.
pub fn wait_readable(stream: &TcpStream) -> io::Result<()> {
    imp::wait_one(
        stream,
        Interest {
            read: true,
            write: false,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let l = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = l.local_addr().expect("addr");
        let a = TcpStream::connect(addr).expect("connect");
        let (b, _) = l.accept().expect("accept");
        (a, b)
    }

    #[test]
    fn wait_reports_readable_after_write() {
        let (a, mut b) = pair();
        a.set_nonblocking(true).expect("nonblocking");
        let (mut shim, _waker) = PollShim::new().expect("shim");
        let mut out = Vec::new();

        // Nothing pending: a zero-timeout wait reports quiet (unix only;
        // the emulation is allowed to report spurious readiness).
        #[cfg(unix)]
        {
            let woken = shim
                .wait(
                    &[(
                        &a,
                        Interest {
                            read: true,
                            write: false,
                        },
                    )],
                    &mut out,
                    0,
                )
                .expect("wait");
            assert!(!woken);
            assert!(!out[0].readable);
        }

        b.write_all(b"x").expect("write");
        let _ = shim
            .wait(
                &[(
                    &a,
                    Interest {
                        read: true,
                        write: false,
                    },
                )],
                &mut out,
                1000,
            )
            .expect("wait");
        assert!(out[0].readable);
        let mut byte = [0u8; 1];
        (&a).read_exact(&mut byte).expect("read");
        assert_eq!(&byte, b"x");
    }

    #[test]
    fn waker_interrupts_wait() {
        let (a, _b) = pair();
        let (mut shim, waker) = PollShim::new().expect("shim");
        // Ring from a clone; the original stays alive so the doorbell
        // channel doesn't report EOF (dropping every waker closes it).
        let remote = waker.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            remote.wake();
        });
        let mut out = Vec::new();
        let woken = shim
            .wait(
                &[(
                    &a,
                    Interest {
                        read: true,
                        write: false,
                    },
                )],
                &mut out,
                5000,
            )
            .expect("wait");
        t.join().expect("waker thread");
        assert!(woken, "doorbell must interrupt the wait");
        // Pending wakes were drained: an immediate zero-timeout wait is
        // quiet again on unix.
        #[cfg(unix)]
        {
            let woken = shim.wait(&[], &mut out, 0).expect("wait");
            assert!(!woken);
        }
    }

    #[test]
    fn wait_writable_on_fresh_socket_returns() {
        let (a, _b) = pair();
        a.set_nonblocking(true).expect("nonblocking");
        wait_writable(&a).expect("fresh socket must be writable");
    }

    #[test]
    fn closed_peer_reports_readable_eof() {
        let (a, b) = pair();
        a.set_nonblocking(true).expect("nonblocking");
        drop(b);
        let (mut shim, _waker) = PollShim::new().expect("shim");
        let mut out = Vec::new();
        let _ = shim
            .wait(
                &[(
                    &a,
                    Interest {
                        read: true,
                        write: false,
                    },
                )],
                &mut out,
                1000,
            )
            .expect("wait");
        assert!(out[0].readable, "EOF must surface as readable");
        let mut sink = [0u8; 8];
        assert_eq!((&a).read(&mut sink).expect("read eof"), 0);
    }
}
