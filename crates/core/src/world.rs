//! The event-driven dCUDA runtime: the paper's architecture in virtual time.
//!
//! One [`ClusterSim`] models the whole cluster: per node a GPU
//! ([`dcuda_device::Device`]), a PCIe link, and a host runtime (event
//! handler + block managers, executed by a single worker thread — paper
//! §III-A); one interconnect ([`dcuda_fabric::Network`]) between nodes.
//! Ranks are blocks; their kernels are [`RankKernel`] state machines doing
//! real numerics on per-node [`Arena`] memory while the world charges their
//! costs to the simulated hardware.
//!
//! # The notified-put pipeline (paper Figure 5)
//!
//! ```text
//! origin rank        origin host          target host          target rank
//!  put_notify ─PCIe─▶ block manager ─MPI─▶ event handler
//!                      │   └─ data (device-to-device) ─┐ ... block manager
//!                      └─ flush id update              └──▶ completion
//!                                                            └─PCIe─▶ notification
//! ```
//!
//! Shared-memory accesses short-circuit: the copy runs on the origin block
//! itself (charged to its SM/memory resources, zero-copy when source and
//! destination coincide in overlapping windows) and only the notification
//! loops through the host (paper §III-A: "we go even one step further and
//! loop device local notifications through the host as well").

use crate::kernel::{NotifyMode, RankCtx, RankKernel, RmaKind, RmaOp, Segment, Suspend};
use crate::pool::PayloadPool;
use crate::report::RunReport;
use crate::spec::SystemSpec;
use crate::types::{Rank, Topology};
use crate::window::{Arena, WindowSpec};
use dcuda_des::{EventQueue, FifoResource, SimDuration, SimTime, Slab, SlotKey, SplitMix64, Timer};
use dcuda_device::{BlockCharge, BlockSlot, Device, LaunchConfig};
use dcuda_fabric::{FaultSpec, Network, NodeId, PacketKind, PcieLink, RetrySpec, TransferPath};
use dcuda_mpi::collective::barrier_exit_times;
use dcuda_queues::{DepthStats, IndexedMatcher, Notification, Query, ANY};
use dcuda_trace::metrics::{overlap_efficiency, IntervalSet};
use dcuda_trace::{TraceSummary, Tracer, Track};
use dcuda_verify::{InvariantMonitor, RaceDetector, RaceReport, WaitForGraph, WaitReason};
use std::collections::VecDeque;

/// One executable step element derived from a kernel's recorded segments.
enum Action {
    Charge(BlockCharge),
    Op(RmaOp),
    IBarrier(crate::types::Tag),
}

/// Where a rank currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Has (or is about to get) a `RankWork` event.
    Ready,
    /// A charge is draining on the device.
    Computing,
    /// Blocked in `wait_notifications`.
    Waiting,
    /// Blocked in `flush`.
    Flushing,
    /// Blocked in the barrier collective.
    InBarrier,
    /// Kernel finished.
    Done,
}

struct RankState {
    actions: VecDeque<Action>,
    suspend: Option<Suspend>,
    status: Status,
    query: Query,
    want: u32,
    outstanding: u32,
    /// Arrived-but-unmatched notifications. The index answers queries in
    /// O(matches) host time; the *modeled* linear-scan cost it reports is
    /// charged to the simulated device unchanged.
    pending: IndexedMatcher,
    /// Device work owed for notification matching, prepended to the next
    /// charge (the paper: "the notification matching itself is relatively
    /// compute heavy").
    match_backlog_flops: f64,
    finish: SimTime,
}

impl RankState {
    fn new() -> Self {
        RankState {
            actions: VecDeque::new(),
            suspend: None,
            status: Status::Ready,
            query: Query::WILDCARD,
            want: 0,
            outstanding: 0,
            pending: IndexedMatcher::new(),
            match_backlog_flops: 0.0,
            finish: SimTime::ZERO,
        }
    }
}

/// An in-flight distributed transfer.
struct Transfer {
    op: RmaOp,
    origin: Rank,
    /// Snapshot of the payload, taken when the data leaves its source
    /// memory.
    payload: Vec<u8>,
    /// Target-side meta processing finished (receive posted).
    meta_ready: Option<SimTime>,
    /// Data landed in destination device memory.
    data_ready: Option<SimTime>,
    completion_submitted: bool,
    /// First monitor token minted for this transfer's notification fan-out
    /// (0 when unmonitored or the op does not notify).
    notif_token: u64,
    /// Reliable-protocol state (meaningful only on faulted runs): delivery
    /// attempt currently armed (the original send counts as 1).
    attempt: u32,
    /// A copy of the meta packet has arrived at the target (put-side dedup).
    meta_arrived: bool,
    /// The origin received the target's acknowledgement (puts).
    acked: bool,
}

/// Reliable-delivery protocol state, present exactly when fault injection is
/// enabled (healthy runs never consult it, keeping them byte-identical to
/// the pre-fault runtime).
struct Resilience {
    retry: RetrySpec,
    /// Deterministic jitter stream for retry backoff (forked from the fault
    /// seed, consumed in event order).
    rng: SplitMix64,
    retries: u64,
    timeouts: u64,
    dups_suppressed: u64,
}

/// Modeled size of an acknowledgement packet.
const ACK_BYTES: u64 = 16;

/// Host-side work items (everything the per-node worker thread does).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HostItem {
    /// Origin block manager processes a put/get command.
    RmaCmd { xfer: u64 },
    /// Origin block manager forwards a device-local notification
    /// (optionally fanned out to every local rank, the §V broadcast-put).
    SharedNotify {
        target: u32,
        notif: Notification,
        origin: u32,
        all: bool,
        /// First monitor token of the (contiguously minted) fan-out; 0 when
        /// the run is unmonitored.
        token: u64,
    },
    /// Target event handler + block manager process incoming meta.
    MetaAtTarget { xfer: u64 },
    /// Completion handling once meta and data are both in.
    Complete { xfer: u64 },
    /// A rank entered the barrier. `nb_tag` is set for nonblocking entries
    /// (completion delivered as a notification instead of an ack).
    BarrierCmd { rank: u32, nb_tag: Option<u32> },
}

impl HostItem {
    /// Trace span label.
    fn label(self) -> &'static str {
        match self {
            HostItem::RmaCmd { .. } => "rma_cmd",
            HostItem::SharedNotify { .. } => "shared_notify",
            HostItem::MetaAtTarget { .. } => "meta_at_target",
            HostItem::Complete { .. } => "complete",
            HostItem::BarrierCmd { .. } => "barrier_cmd",
        }
    }
}

/// Token of the `local`-th member of a contiguously minted broadcast
/// fan-out (0 stays 0: unmonitored run).
fn fan_token(first: u64, local: u32) -> u64 {
    if first == 0 {
        0
    } else {
        first + u64::from(local)
    }
}

/// Trace span label of the state a rank is leaving (`None` for states that
/// are not materialized as spans).
fn status_span_name(s: Status) -> Option<&'static str> {
    match s {
        Status::Computing => Some("compute"),
        Status::Waiting => Some("wait"),
        Status::Flushing => Some("flush"),
        Status::InBarrier => Some("barrier"),
        Status::Ready | Status::Done => None,
    }
}

/// Simulation events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    RankWork {
        rank: u32,
    },
    DeviceTick {
        node: u32,
        gen: u64,
    },
    HostNotice {
        node: u32,
        item: HostItem,
    },
    HostDone {
        node: u32,
        item: HostItem,
    },
    NetMetaArrive {
        xfer: u64,
    },
    NetDataArrive {
        xfer: u64,
    },
    /// Ack-timeout check for an in-flight transfer (faulted runs only).
    /// `attempt` guards against stale timers from earlier attempts.
    RetryCheck {
        xfer: u64,
        attempt: u32,
    },
    /// The target's acknowledgement reached the origin (faulted puts only).
    AckArrive {
        xfer: u64,
    },
    NotifDeliver {
        rank: u32,
        notif: Notification,
        token: u64,
    },
    OriginFree {
        rank: u32,
    },
    BarrierAck {
        rank: u32,
    },
}

/// The simulated cluster executing one dCUDA kernel.
pub struct ClusterSim {
    spec: SystemSpec,
    topo: Topology,
    queue: EventQueue<Ev>,
    devices: Vec<Device>,
    device_timers: Vec<Timer>,
    pcie: Vec<PcieLink>,
    host_worker: Vec<FifoResource>,
    net: Network,
    /// `[node][window]` backing memory.
    arenas: Vec<Vec<Arena>>,
    windows: Vec<WindowSpec>,
    /// `[rank][window]` byte range in the node arena.
    ranges: Vec<Vec<std::ops::Range<usize>>>,
    ranks: Vec<RankState>,
    kernels: Vec<Box<dyn RankKernel>>,
    transfers: Slab<Transfer>,
    /// Device work side table: tag -> rank.
    work: Slab<u32>,
    // Barrier state.
    barrier_arrived: Vec<u32>,
    barrier_entry: Vec<Option<SimTime>>,
    /// Per-rank nonblocking tag for the current barrier epoch.
    barrier_nb: Vec<Option<u32>>,
    // Counters.
    finished: u32,
    rma_ops: u64,
    zero_copy_ops: u64,
    shared_ops: u64,
    distributed_ops: u64,
    notifications: u64,
    notifications_scanned: u64,
    barriers: u64,
    /// Deepest per-rank pending-notification backlog observed.
    peak_pending_notifications: usize,
    /// Reusable payload snapshot buffers.
    pool: PayloadPool,
    /// Cluster-wide trace recorder (disabled unless
    /// [`enable_tracing`](Self::enable_tracing) ran before `run`).
    tracer: Tracer,
    /// Token-level invariant monitor (attached when
    /// [`verify_mode`](crate::verify_mode) was on at construction or
    /// [`enable_verification`](Self::enable_verification) ran). Strictly
    /// observational: it never schedules events or changes timing.
    monitor: Option<InvariantMonitor>,
    /// Happens-before race detector over window byte ranges (attached when
    /// [`verify_mode::races_enabled`](crate::verify_mode::races_enabled)
    /// was on at construction or
    /// [`enable_race_detection`](Self::enable_race_detection) ran).
    /// Observational like the monitor; races land in `RunReport::races`.
    races: Option<RaceDetector>,
    /// Reliable-delivery protocol state (attached together with the fault
    /// layer by [`enable_faults`](Self::enable_faults); `None` on healthy
    /// runs, which then execute the exact pre-fault code paths).
    resil: Option<Resilience>,
    /// Instant each rank entered its current [`Status`] (trace span start).
    status_since: Vec<SimTime>,
    // Scratch.
    completed_buf: Vec<u64>,
}

impl ClusterSim {
    /// Build a cluster of `topo.nodes` nodes with the given window layouts
    /// and per-rank kernels (indexed by world rank).
    ///
    /// # Panics
    /// Panics if the kernel count does not match the topology, a window
    /// layout is invalid, or the per-node rank count exceeds device
    /// residency.
    pub fn new(
        spec: SystemSpec,
        topo: Topology,
        windows: Vec<WindowSpec>,
        kernels: Vec<Box<dyn RankKernel>>,
    ) -> Self {
        assert_eq!(
            kernels.len(),
            topo.world_size() as usize,
            "need one kernel per world rank"
        );
        for w in &windows {
            w.validate(&topo);
        }
        let launch = LaunchConfig {
            blocks: topo.ranks_per_node,
            ..LaunchConfig::paper()
        };
        let devices: Vec<Device> = (0..topo.nodes)
            .map(|_| Device::launch(spec.device.clone(), &launch))
            .collect();
        let arenas: Vec<Vec<Arena>> = (0..topo.nodes)
            .map(|n| {
                windows
                    .iter()
                    .map(|w| Arena::new(w.arena_len(&topo, n)))
                    .collect()
            })
            .collect();
        let ranges: Vec<Vec<std::ops::Range<usize>>> = topo
            .ranks()
            .map(|r| windows.iter().map(|w| w.range_of(r)).collect())
            .collect();
        let pcie = (0..topo.nodes)
            .map(|_| PcieLink::new(spec.pcie.clone()))
            .collect();
        let host_worker = (0..topo.nodes).map(|_| FifoResource::new()).collect();
        let net = Network::new(spec.network.clone(), topo.nodes as usize);
        let ranks = (0..topo.world_size()).map(|_| RankState::new()).collect();
        ClusterSim {
            spec,
            topo,
            queue: EventQueue::new(),
            devices,
            device_timers: (0..topo.nodes).map(|_| Timer::new()).collect(),
            pcie,
            host_worker,
            net,
            arenas,
            windows,
            ranges,
            ranks,
            kernels,
            transfers: Slab::new(),
            work: Slab::new(),
            barrier_arrived: vec![0; topo.nodes as usize],
            barrier_entry: vec![None; topo.nodes as usize],
            barrier_nb: vec![None; topo.world_size() as usize],
            finished: 0,
            rma_ops: 0,
            zero_copy_ops: 0,
            shared_ops: 0,
            distributed_ops: 0,
            notifications: 0,
            notifications_scanned: 0,
            barriers: 0,
            peak_pending_notifications: 0,
            pool: PayloadPool::new(),
            tracer: Tracer::disabled(),
            monitor: crate::verify_mode::is_enabled()
                .then(|| InvariantMonitor::new(topo.world_size())),
            races: crate::verify_mode::races_enabled()
                .then(|| RaceDetector::new(topo.world_size())),
            resil: None,
            status_since: vec![SimTime::ZERO; topo.world_size() as usize],
            completed_buf: Vec::new(),
        }
    }

    /// Start recording a cluster-wide trace. Call before [`run`](Self::run);
    /// the run itself is unaffected (tracing observes sim-time instants, it
    /// never schedules events), and the resulting `RunReport` gains a
    /// [`TraceSummary`].
    pub fn enable_tracing(&mut self) {
        self.tracer = Tracer::enabled();
        self.net.enable_log();
        for link in &mut self.pcie {
            link.enable_log();
        }
    }

    /// Take the recorded trace (empty unless
    /// [`enable_tracing`](Self::enable_tracing) preceded [`run`](Self::run)).
    pub fn take_trace(&mut self) -> Tracer {
        std::mem::take(&mut self.tracer)
    }

    /// Attach the invariant monitor to this simulation regardless of the
    /// global [`verify_mode`](crate::verify_mode) flag. Call before
    /// [`run`](Self::run); the run itself is unaffected (the monitor
    /// observes, it never schedules), and the resulting `RunReport` gains a
    /// [`dcuda_verify::VerifyReport`]. The run panics if the monitor finds
    /// a violation — verification is loud by design.
    pub fn enable_verification(&mut self) {
        if self.monitor.is_none() {
            self.monitor = Some(InvariantMonitor::new(self.topo.world_size()));
        }
    }

    /// Attach the happens-before race detector regardless of the global
    /// [`verify_mode::races_enabled`](crate::verify_mode::races_enabled)
    /// flag. Call before [`run`](Self::run); the detector observes RMA
    /// issues, notification matches, flushes and barriers — never kernel
    /// timing — and every racy pair it finds lands in `RunReport::races`.
    pub fn enable_race_detection(&mut self) {
        assert!(
            self.resil.is_none(),
            "race detection requires a healthy network (its channel edges \
             rest on FIFO delivery, which retries break)"
        );
        if self.races.is_none() {
            self.races = Some(RaceDetector::new(self.topo.world_size()));
        }
    }

    /// Attach a fault-injection profile and arm the reliable-delivery
    /// protocol. Call before [`run`](Self::run). Distributed transfers then
    /// become sequence-tracked with ack timeouts, capped-exponential
    /// jittered retries, receiver-side duplicate suppression and adaptive
    /// path demotion; the same `spec.seed` replays the run byte-for-byte.
    pub fn enable_faults(&mut self, spec: FaultSpec) {
        assert!(
            self.races.is_none(),
            "fault injection and race detection are mutually exclusive \
             (the detector's channel edges assume FIFO delivery)"
        );
        let retry = spec.retry.clone();
        let rng = SplitMix64::new(spec.seed ^ 0xD15E_A5ED_5EED_5EED);
        self.net.enable_faults(spec);
        self.resil = Some(Resilience {
            retry,
            rng,
            retries: 0,
            timeouts: 0,
            dups_suppressed: 0,
        });
    }

    /// Count one duplicate suppressed by receiver-side dedup.
    fn note_dup_suppressed(&mut self) {
        if let Some(r) = self.resil.as_mut() {
            r.dups_suppressed += 1;
        }
    }

    /// Send one protocol packet through the faultable fabric and schedule an
    /// arrival event for every surviving copy (fault/retry instants go to
    /// the sender's NIC track). Returns the egress-free instant of the
    /// primary copy. Only called on faulted runs.
    fn send_resilient(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        kind: PacketKind,
        xfer: u64,
    ) -> SimTime {
        let sent = self.net.send_faultable(now, src, dst, bytes, kind);
        let mk = |at: SimTime| match kind {
            PacketKind::Meta => (at, Ev::NetMetaArrive { xfer }),
            PacketKind::Data => (at, Ev::NetDataArrive { xfer }),
            PacketKind::Ack => (at, Ev::AckArrive { xfer }),
        };
        if let Some(at) = sent.arrival {
            let (at, ev) = mk(at);
            self.queue.schedule_at(at, ev);
        }
        if let Some(at) = sent.dup_arrival {
            let (at, ev) = mk(at);
            self.queue.schedule_at(at, ev);
            if self.tracer.is_enabled() {
                self.tracer.instant(
                    Track::NetLink(src.0),
                    "fault_dup",
                    now.as_ps(),
                    vec![("dst", u64::from(dst.0).into()), ("bytes", bytes.into())],
                );
            }
        }
        if sent.dropped && self.tracer.is_enabled() {
            self.tracer.instant(
                Track::NetLink(src.0),
                "fault_drop",
                now.as_ps(),
                vec![("dst", u64::from(dst.0).into()), ("bytes", bytes.into())],
            );
        }
        sent.egress_free
    }

    /// Mint a monitor token for one notification headed to `target`
    /// (0 = unmonitored run).
    fn mint(&mut self, origin: u32, target: u32, notif: Notification) -> u64 {
        self.monitor
            .as_mut()
            .map_or(0, |m| m.sent(origin, target, notif))
    }

    /// Mint one token per resident rank of `node` (contiguous range; the
    /// fan-out addresses token `first + local`). Returns the first token.
    fn mint_broadcast(&mut self, origin: u32, node: u32, notif: Notification) -> u64 {
        let mut first = 0;
        for local in 0..self.topo.ranks_per_node {
            let target = self.topo.rank_of(node, local).0;
            let t = self.mint(origin, target, notif);
            if local == 0 {
                first = t;
            }
        }
        first
    }

    /// Move a rank to a new status, closing the trace span of the state it
    /// leaves.
    fn set_status(&mut self, rank: u32, new: Status, now: SimTime) {
        let prev = self.ranks[rank as usize].status;
        if prev == new {
            return;
        }
        self.ranks[rank as usize].status = new;
        if self.tracer.is_enabled() {
            if let Some(name) = status_span_name(prev) {
                let since = self.status_since[rank as usize];
                self.tracer
                    .span(Track::Rank(rank), name, since.as_ps(), now.as_ps(), vec![]);
            }
        }
        self.status_since[rank as usize] = now;
    }

    /// Immutable access to a node's arena for a window (for test inspection
    /// and result extraction after a run).
    pub fn arena(&self, node: u32, win: crate::types::WinId) -> &[u8] {
        self.arenas[node as usize][win.index()].bytes()
    }

    /// Topology of the simulated cluster.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The registered window layouts.
    pub fn windows(&self) -> &[WindowSpec] {
        &self.windows
    }

    /// Run the kernel to completion and report.
    ///
    /// # Panics
    /// Panics with a per-rank status dump if the system deadlocks (event
    /// queue drained while ranks are still blocked).
    pub fn run(&mut self) -> RunReport {
        // Kernel launch: all blocks become resident after the launch
        // overhead, then start executing.
        let start = SimTime::ZERO + self.spec.device.launch_overhead;
        for r in 0..self.topo.world_size() {
            self.queue.schedule_at(start, Ev::RankWork { rank: r });
        }
        while let Some((now, ev)) = self.queue.pop() {
            self.handle(now, ev);
            if self.finished == self.topo.world_size() {
                break;
            }
        }
        if self.finished != self.topo.world_size() {
            // Event queue drained with unfinished ranks: build the
            // wildcard-aware wait-for graph and report *why* — hopeless
            // ranks, wait cycles, and the "no matching sender exists" lint —
            // instead of a bare status dump.
            let not_entered: Vec<u32> = self
                .ranks
                .iter()
                .enumerate()
                .filter(|(_, s)| s.status != Status::InBarrier && s.status != Status::Done)
                .map(|(i, _)| i as u32)
                .collect();
            let mut graph = WaitForGraph::new(self.topo.world_size());
            for (i, s) in self.ranks.iter().enumerate() {
                let rank = i as u32;
                match s.status {
                    Status::Done => graph.set_done(rank),
                    Status::Waiting => graph.add_waiter(
                        rank,
                        WaitReason::Notification {
                            query: s.query,
                            want: u64::from(s.want),
                        },
                    ),
                    Status::InBarrier => graph.add_waiter(
                        rank,
                        WaitReason::Barrier {
                            missing: not_entered.clone(),
                        },
                    ),
                    Status::Flushing => graph.add_waiter(rank, WaitReason::Flush),
                    Status::Ready | Status::Computing => {}
                }
            }
            let analysis = graph.analyze();
            let stuck: Vec<String> = self
                .ranks
                .iter()
                .enumerate()
                .filter(|(_, s)| s.status != Status::Done)
                .take(16)
                .map(|(i, s)| {
                    format!(
                        "rank {i}: {:?} (pending notifs: {})",
                        s.status,
                        s.pending.len()
                    )
                })
                .collect();
            panic!(
                "dCUDA deadlock: {}/{} ranks finished\n{analysis}stuck examples: {:#?}",
                self.finished,
                self.topo.world_size(),
                stuck
            );
        }
        let end_time = self
            .ranks
            .iter()
            .map(|s| s.finish)
            .max()
            .unwrap_or(SimTime::ZERO);
        let trace = self
            .tracer
            .is_enabled()
            .then(|| self.finish_trace(end_time));
        let verify = self.monitor.take().map(InvariantMonitor::finish);
        if let Some(v) = &verify {
            assert!(v.is_clean(), "invariant monitor: {}", v.summary());
        }
        let races = self
            .races
            .take()
            .map(|d| d.reports().to_vec())
            .unwrap_or_default();
        crate::verify_mode::note_races(races.len() as u64);
        let fstats = self.net.fault_stats();
        RunReport {
            end_time,
            rank_finish: self.ranks.iter().map(|s| s.finish).collect(),
            rma_ops: self.rma_ops,
            zero_copy_ops: self.zero_copy_ops,
            shared_ops: self.shared_ops,
            distributed_ops: self.distributed_ops,
            notifications: self.notifications,
            notifications_scanned: self.notifications_scanned,
            barriers: self.barriers,
            net_messages: self.net.messages.get(),
            net_staged: self.net.staged_messages.get(),
            net_bytes: (0..self.topo.nodes)
                .map(|n| self.net.bytes_sent(NodeId(n)))
                .sum(),
            events: self.queue.scheduled_total(),
            peak_event_queue: self.queue.peak_pending() as u64,
            peak_pending_notifications: self.peak_pending_notifications as u64,
            pool_acquires: self.pool.acquires(),
            pool_hits: self.pool.hits(),
            fault_drops: fstats.drops,
            fault_dups: fstats.dups,
            retries: self.resil.as_ref().map_or(0, |r| r.retries),
            timeouts: self.resil.as_ref().map_or(0, |r| r.timeouts),
            dups_suppressed: self.resil.as_ref().map_or(0, |r| r.dups_suppressed),
            demotions: fstats.demotions,
            reroutes: fstats.reroutes,
            trace,
            verify,
            races,
        }
    }

    /// Fold the component-local logs into the tracer and compute the run's
    /// [`TraceSummary`]. Only called on traced runs, after the event loop.
    fn finish_trace(&mut self, end_time: SimTime) -> TraceSummary {
        let mut summary = TraceSummary::new();

        // Network message lifecycles: the NIC track shows each message's
        // serialization interval (FIFO — never overlapping), the receiver
        // gets an arrival instant, and end-to-end latency feeds the
        // histogram.
        for rec in self.net.take_log() {
            self.tracer.span(
                Track::NetLink(rec.src.0),
                "msg",
                rec.egress_start.as_ps(),
                rec.egress_free.as_ps(),
                vec![
                    ("dst", u64::from(rec.dst.0).into()),
                    ("bytes", rec.bytes.into()),
                    ("path", rec.path.label().into()),
                ],
            );
            self.tracer.instant(
                Track::NetLink(rec.dst.0),
                "arrive",
                rec.arrival.as_ps(),
                vec![
                    ("src", u64::from(rec.src.0).into()),
                    ("bytes", rec.bytes.into()),
                ],
            );
            summary.net_hist.record(rec.arrival.since(rec.inject));
        }
        for (node, link) in self.pcie.iter_mut().enumerate() {
            for rec in link.take_log() {
                self.tracer.span(
                    Track::Pcie(node as u32),
                    rec.op.label(),
                    rec.start.as_ps(),
                    rec.done.as_ps(),
                    vec![("bytes", rec.bytes.into())],
                );
            }
        }

        // Per-rank blocked/compute intervals from the recorded spans.
        let world = self.topo.world_size() as usize;
        let mut waits: Vec<IntervalSet> = (0..world).map(|_| IntervalSet::new()).collect();
        let mut computes: Vec<IntervalSet> = (0..world).map(|_| IntervalSet::new()).collect();
        for s in self.tracer.spans() {
            if let Track::Rank(r) = s.track {
                match s.name {
                    "compute" => computes[r as usize].push(s.start_ps, s.end_ps),
                    "wait" | "flush" | "barrier" => {
                        waits[r as usize].push(s.start_ps, s.end_ps);
                        summary
                            .wait_hist
                            .record(SimDuration::from_ps(s.end_ps - s.start_ps));
                    }
                    _ => {}
                }
            }
        }
        let device_of: Vec<u32> = (0..self.topo.world_size())
            .map(|r| self.topo.node_of(Rank(r)))
            .collect();
        summary.overlap_efficiency = overlap_efficiency(&mut waits, &mut computes, &device_of);

        let total = end_time.since(SimTime::ZERO).as_secs_f64();
        if total > 0.0 {
            summary.host_busy_frac = self
                .host_worker
                .iter()
                .map(|w| w.busy_total().as_secs_f64() / total)
                .collect();
            summary.nic_busy_frac = (0..self.topo.nodes)
                .map(|n| self.net.nic_busy(NodeId(n)).as_secs_f64() / total)
                .collect();
            summary.pcie_busy_frac = self
                .pcie
                .iter()
                .map(|l| l.busy_total().as_secs_f64() / total)
                .collect();
        }

        let mut depth = DepthStats::new();
        for st in &self.ranks {
            depth.merge(st.pending.depth_stats());
        }
        summary.notif_depth_mean = depth.mean().unwrap_or(0.0);
        summary.notif_depth_peak = depth.peak();
        summary
    }

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::RankWork { rank } => self.advance_rank(rank, now),
            Ev::DeviceTick { node, gen } => {
                if self.device_timers[node as usize].is_current(gen) {
                    self.device_timers[node as usize].disarm();
                    self.pump_device(node, now);
                }
            }
            Ev::HostNotice { node, item } => {
                // The action occupies the single worker thread briefly
                // (throughput limit) and completes after its pipeline
                // latency.
                let (_, freed) =
                    self.host_worker[node as usize].submit(now, self.spec.host.worker_gap);
                let done = freed + self.host_cost(item);
                if self.tracer.is_enabled() {
                    let start = freed
                        .as_ps()
                        .saturating_sub(self.spec.host.worker_gap.as_ps());
                    self.tracer
                        .span(Track::Host(node), item.label(), start, done.as_ps(), vec![]);
                }
                self.queue.schedule_at(done, Ev::HostDone { node, item });
            }
            Ev::HostDone { node, item } => self.host_done(node, item, now),
            Ev::NetMetaArrive { xfer } => {
                let key = SlotKey::from_bits(xfer);
                // On faulted runs, late or duplicate copies of the meta
                // packet may land after the first one (or after the whole
                // transfer retired); the receiver keeps delivery exactly-once
                // by suppressing them — and re-acks completed puts, since a
                // retransmitted meta means the origin missed the ack.
                enum MetaAction {
                    Forward(u32),
                    Suppress { reack: Option<(NodeId, NodeId)> },
                }
                let action = match self.transfers.get_mut(key) {
                    Some(tr) => {
                        let dup = tr.op.kind == RmaKind::Put && tr.meta_arrived;
                        if !dup {
                            if tr.op.kind == RmaKind::Put {
                                tr.meta_arrived = true;
                            }
                            // For a get, the "meta" travels origin -> holder.
                            MetaAction::Forward(self.topo.node_of(tr.op.partner))
                        } else {
                            let reack = tr.completion_submitted.then(|| {
                                (
                                    NodeId(self.topo.node_of(tr.op.partner)),
                                    NodeId(self.topo.node_of(tr.origin)),
                                )
                            });
                            MetaAction::Suppress { reack }
                        }
                    }
                    None => {
                        assert!(self.resil.is_some(), "meta for unknown transfer");
                        MetaAction::Suppress { reack: None }
                    }
                };
                match action {
                    MetaAction::Forward(target_node) => {
                        self.queue.schedule_at(
                            now + self.spec.host.poll_delay,
                            Ev::HostNotice {
                                node: target_node,
                                item: HostItem::MetaAtTarget { xfer },
                            },
                        );
                    }
                    MetaAction::Suppress { reack } => {
                        self.note_dup_suppressed();
                        if let Some((target_node, origin_node)) = reack {
                            self.send_resilient(
                                now,
                                target_node,
                                origin_node,
                                ACK_BYTES,
                                PacketKind::Ack,
                                xfer,
                            );
                        }
                    }
                }
            }
            Ev::NetDataArrive { xfer } => {
                let key = SlotKey::from_bits(xfer);
                match self.transfers.get(key) {
                    None => {
                        // Copy for an already-retired transfer (faulted runs).
                        assert!(self.resil.is_some(), "data for unknown transfer");
                        self.note_dup_suppressed();
                        return;
                    }
                    Some(tr) if tr.data_ready.is_some() => {
                        // Duplicate copy: the payload landed exactly once
                        // already (impossible on healthy runs).
                        debug_assert!(self.resil.is_some());
                        self.note_dup_suppressed();
                        return;
                    }
                    Some(_) => {}
                }
                // Land the payload in destination memory.
                self.land_payload(key);
                let tr = self
                    .transfers
                    .get_mut(key)
                    .expect("data for unknown transfer");
                tr.data_ready = Some(now);
                self.maybe_complete(key, now);
            }
            Ev::RetryCheck { xfer, attempt } => self.retry_check(xfer, attempt, now),
            Ev::AckArrive { xfer } => self.ack_arrive(xfer, now),
            Ev::NotifDeliver { rank, notif, token } => {
                self.deliver_notification(rank, notif, token, now)
            }
            Ev::OriginFree { rank } => {
                let st = &mut self.ranks[rank as usize];
                debug_assert!(st.outstanding > 0, "origin-free without outstanding op");
                st.outstanding -= 1;
                if st.status == Status::Flushing && st.outstanding == 0 {
                    st.suspend = None;
                    self.set_status(rank, Status::Ready, now);
                    self.queue.schedule_at(now, Ev::RankWork { rank });
                }
            }
            Ev::BarrierAck { rank } => {
                let st = &mut self.ranks[rank as usize];
                debug_assert_eq!(st.status, Status::InBarrier);
                st.suspend = None;
                self.set_status(rank, Status::Ready, now);
                self.queue.schedule_at(
                    now + self.spec.device.notification_poll_interval,
                    Ev::RankWork { rank },
                );
            }
        }
    }

    fn host_cost(&self, item: HostItem) -> SimDuration {
        let h = &self.spec.host;
        match item {
            HostItem::RmaCmd { .. }
            | HostItem::SharedNotify { .. }
            | HostItem::Complete { .. }
            | HostItem::BarrierCmd { .. } => h.block_manager_cost,
            HostItem::MetaAtTarget { .. } => h.dispatch_cost + h.block_manager_cost,
        }
    }

    /// Advance a node's device, turning completed work into `RankWork`
    /// events, and rearm its timer.
    fn pump_device(&mut self, node: u32, now: SimTime) {
        let dev = &mut self.devices[node as usize];
        self.completed_buf.clear();
        dev.advance_to(now, &mut self.completed_buf);
        for i in 0..self.completed_buf.len() {
            let tag = self.completed_buf[i];
            let rank = self
                .work
                .remove(SlotKey::from_bits(tag))
                .expect("device completion for unknown work");
            self.queue.schedule_at(now, Ev::RankWork { rank });
        }
        self.rearm_device(node);
    }

    fn rearm_device(&mut self, node: u32) {
        let timer = &mut self.device_timers[node as usize];
        match self.devices[node as usize].next_event() {
            Some(t) => {
                let gen = timer.rearm();
                self.queue.schedule_at(t, Ev::DeviceTick { node, gen });
            }
            None => timer.disarm(),
        }
    }

    /// Process a rank's action list until it blocks.
    fn advance_rank(&mut self, rank: u32, now: SimTime) {
        // A `RankWork` event for a computing rank means its device charge
        // drained: the compute span ends here.
        if self.ranks[rank as usize].status == Status::Computing {
            self.set_status(rank, Status::Ready, now);
        }
        loop {
            if self.ranks[rank as usize].status == Status::Done {
                return;
            }
            match self.ranks[rank as usize].actions.pop_front() {
                Some(Action::Charge(mut c)) => {
                    {
                        let st = &mut self.ranks[rank as usize];
                        c.flops += st.match_backlog_flops;
                        st.match_backlog_flops = 0.0;
                    }
                    self.set_status(rank, Status::Computing, now);
                    let node = self.topo.node_of(Rank(rank));
                    let local = self.topo.local_of(Rank(rank));
                    let tag = self.work.insert(rank).to_bits();
                    // Bring the device up to date, then add the new work.
                    self.pump_device(node, now);
                    self.devices[node as usize].submit_block_work(BlockSlot(local), c, tag);
                    self.rearm_device(node);
                    return;
                }
                Some(Action::Op(op)) => {
                    self.initiate_op(rank, op, now);
                }
                Some(Action::IBarrier(tag)) => {
                    let node = self.topo.node_of(Rank(rank));
                    let visible = self.pcie[node as usize].post_txn(now, 16);
                    self.queue.schedule_at(
                        visible + self.spec.host.poll_delay,
                        Ev::HostNotice {
                            node,
                            item: HostItem::BarrierCmd {
                                rank,
                                nb_tag: Some(tag),
                            },
                        },
                    );
                    // Nonblocking: keep processing.
                }
                None => {
                    let pending = self.ranks[rank as usize].suspend.take();
                    match pending {
                        None => {
                            self.call_kernel(rank, now);
                            // Loop to process the freshly recorded actions.
                        }
                        Some(Suspend::Finished) => {
                            self.set_status(rank, Status::Done, now);
                            self.ranks[rank as usize].finish = now;
                            self.finished += 1;
                            return;
                        }
                        Some(Suspend::WaitNotifications {
                            win,
                            source,
                            tag,
                            count,
                        }) => {
                            {
                                let st = &mut self.ranks[rank as usize];
                                st.query = Query {
                                    win: win.map_or(ANY, |w| w.0),
                                    source: source.map_or(ANY, |r| r.0),
                                    tag: tag.unwrap_or(ANY),
                                };
                                st.want = count;
                            }
                            self.set_status(rank, Status::Waiting, now);
                            self.try_match(rank, now, false);
                            return;
                        }
                        Some(Suspend::Barrier) => {
                            self.set_status(rank, Status::InBarrier, now);
                            let node = self.topo.node_of(Rank(rank));
                            let visible = self.pcie[node as usize].post_txn(now, 16);
                            self.queue.schedule_at(
                                visible + self.spec.host.poll_delay,
                                Ev::HostNotice {
                                    node,
                                    item: HostItem::BarrierCmd { rank, nb_tag: None },
                                },
                            );
                            return;
                        }
                        Some(Suspend::Flush) => {
                            if self.ranks[rank as usize].outstanding > 0 {
                                self.set_status(rank, Status::Flushing, now);
                                return;
                            }
                            // Already flushed; continue straight into the
                            // next kernel step.
                        }
                    }
                }
            }
        }
    }

    /// Call the rank's kernel and convert recorded segments into actions.
    fn call_kernel(&mut self, rank: u32, _now: SimTime) {
        let r = Rank(rank);
        let node = self.topo.node_of(r) as usize;
        let mut segments = Vec::new();
        let suspend = {
            // Split borrows: kernels and arenas are distinct fields.
            let ClusterSim {
                kernels,
                arenas,
                ranges,
                topo,
                spec,
                ..
            } = self;
            let mut ctx = RankCtx {
                rank: r,
                world_size: topo.world_size(),
                device_rank: topo.local_of(r),
                device_size: topo.ranks_per_node,
                node: node as u32,
                arenas: &mut arenas[node],
                ranges: &ranges[rank as usize],
                segments: &mut segments,
                // Issue cost: ~0.3 us of SM time to assemble and enqueue the
                // command tuple.
                op_issue_flops: 0.3e-6 * spec.device.sm_flops,
            };
            kernels[rank as usize].resume(&mut ctx)
        };
        debug_assert!(self.ranks[rank as usize].actions.is_empty());
        for seg in segments {
            match seg {
                Segment::Charge(c) => self.ranks[rank as usize]
                    .actions
                    .push_back(Action::Charge(c)),
                Segment::IBarrier(tag) => self.ranks[rank as usize]
                    .actions
                    .push_back(Action::IBarrier(tag)),
                Segment::Op(op) => {
                    // Same-device copies run on the origin block itself:
                    // model the copy as a memory charge (read + write) that
                    // precedes the dispatch (skipped entirely on the
                    // zero-copy path).
                    if self.topo.same_device(r, op.partner) && !self.is_zero_copy(r, &op) {
                        self.ranks[rank as usize]
                            .actions
                            .push_back(Action::Charge(BlockCharge::mem(2.0 * op.len as f64)));
                    }
                    self.ranks[rank as usize].actions.push_back(Action::Op(op));
                }
            }
        }
        self.ranks[rank as usize].suspend = Some(suspend);
        self.set_status(rank, Status::Ready, _now);
    }

    /// Mirror an RMA issue into the race detector. Puts map directly: a
    /// source-range read at the origin plus an asynchronous channel-epoch
    /// write at the target, with the notification (when any) carrying the
    /// join snapshot the target's matching wait consumes. Gets are
    /// approximated as a notified put flowing the other way (partner →
    /// origin): the remote read is credited to the partner's clock as of
    /// issue time and the local landing is the channel effect — the
    /// closest expressible shape (the sim already mints get notifications
    /// with `source = partner`, so the join keys line up).
    fn race_rma(&mut self, rank: u32, op: &RmaOp, now: SimTime) {
        if self.races.is_none() {
            return;
        }
        let notify = (op.notify != NotifyMode::None).then_some(op.tag);
        // A device-broadcast notification also reaches the partner's
        // siblings; collect them first so each wait gets a join snapshot.
        let siblings: Vec<u32> =
            if op.kind == RmaKind::Put && op.notify == NotifyMode::AllOnTargetDevice {
                let node = self.topo.node_of(op.partner);
                (0..self.topo.ranks_per_node)
                    .map(|local| self.topo.rank_of(node, local).0)
                    .filter(|&r| r != op.partner.0)
                    .collect()
            } else {
                Vec::new()
            };
        let d = self.races.as_mut().expect("checked above");
        let report = match op.kind {
            RmaKind::Put => d.put(
                rank,
                op.partner.0,
                op.win.0,
                (op.local_offset, op.local_offset + op.len),
                op.win.0,
                (op.remote_offset, op.remote_offset + op.len),
                notify,
                if notify.is_some() {
                    "put_notify"
                } else {
                    "put"
                },
            ),
            RmaKind::Get => d.put(
                op.partner.0,
                rank,
                op.win.0,
                (op.remote_offset, op.remote_offset + op.len),
                op.win.0,
                (op.local_offset, op.local_offset + op.len),
                notify,
                "get",
            ),
        };
        for sibling in siblings {
            let d = self.races.as_mut().expect("checked above");
            d.stash_snapshot(sibling, rank, op.win.0, op.tag);
        }
        if let Some(r) = report {
            self.race_found(&r, now);
        }
    }

    /// A race was just completed: emit its trace instant (the report itself
    /// already sits in the detector's accumulated list).
    fn race_found(&mut self, report: &RaceReport, now: SimTime) {
        if self.tracer.is_enabled() {
            self.tracer.instant(
                Track::Rank(report.owner),
                "race",
                now.as_ps(),
                vec![
                    ("win", u64::from(report.win).into()),
                    ("owner", u64::from(report.owner).into()),
                    ("start", (report.start as u64).into()),
                    ("end", (report.end as u64).into()),
                ],
            );
        }
    }

    /// Absolute byte span of the *local* side of an op in its node arena.
    fn local_span(&self, rank: Rank, op: &RmaOp) -> std::ops::Range<usize> {
        let base = self.ranges[rank.index()][op.win.index()].start;
        base + op.local_offset..base + op.local_offset + op.len
    }

    /// Absolute byte span of the *remote* side of an op in the partner's
    /// node arena.
    fn remote_span(&self, op: &RmaOp) -> std::ops::Range<usize> {
        let base = self.ranges[op.partner.index()][op.win.index()].start;
        base + op.remote_offset..base + op.remote_offset + op.len
    }

    fn is_zero_copy(&self, rank: Rank, op: &RmaOp) -> bool {
        self.topo.same_device(rank, op.partner) && self.local_span(rank, op) == self.remote_span(op)
    }

    /// Begin executing an RMA operation at its issue time.
    fn initiate_op(&mut self, rank: u32, op: RmaOp, now: SimTime) {
        {
            let partner_range = &self.ranges[op.partner.index()][op.win.index()];
            let partner_len = partner_range.end - partner_range.start;
            assert!(
                op.remote_offset + op.len <= partner_len,
                "rank {rank}: RMA remote range {}..{} exceeds {:?}'s window {:?} of {} bytes",
                op.remote_offset,
                op.remote_offset + op.len,
                op.partner,
                op.win,
                partner_len
            );
        }
        self.rma_ops += 1;
        self.race_rma(rank, &op, now);
        if self.tracer.is_enabled() {
            let name = match (op.kind, op.notify) {
                (RmaKind::Put, NotifyMode::None) => "put",
                (RmaKind::Put, _) => "put_notify",
                (RmaKind::Get, NotifyMode::None) => "get",
                (RmaKind::Get, _) => "get_notify",
            };
            self.tracer.instant(
                Track::Rank(rank),
                name,
                now.as_ps(),
                vec![
                    ("win", u64::from(op.win.0).into()),
                    ("partner", u64::from(op.partner.0).into()),
                    ("len", (op.len as u64).into()),
                    ("tag", u64::from(op.tag).into()),
                ],
            );
        }
        let r = Rank(rank);
        let node = self.topo.node_of(r);
        let same = self.topo.same_device(r, op.partner);
        if same {
            self.shared_ops += 1;
            if self.is_zero_copy(r, &op) {
                self.zero_copy_ops += 1;
            } else {
                // Perform the copy now (its time was charged as the
                // preceding memory-charge action).
                let local = self.local_span(r, &op);
                let remote = self.remote_span(&op);
                let arena = &mut self.arenas[node as usize][op.win.index()];
                match op.kind {
                    RmaKind::Put => arena.bytes_mut().copy_within(local, remote.start),
                    RmaKind::Get => arena.bytes_mut().copy_within(remote, local.start),
                }
            }
            if op.notify != NotifyMode::None {
                // Notification loops through the host (paper §III-A).
                self.ranks[rank as usize].outstanding += 1;
                let notif_target = match op.kind {
                    RmaKind::Put => op.partner.0,
                    RmaKind::Get => rank,
                };
                let notif = Notification {
                    win: op.win.0,
                    source: rank,
                    tag: op.tag,
                };
                let token = if op.notify == NotifyMode::AllOnTargetDevice {
                    self.mint_broadcast(rank, node, notif)
                } else {
                    self.mint(rank, notif_target, notif)
                };
                let visible = self.pcie[node as usize].post_txn(now, 16);
                self.queue.schedule_at(
                    visible + self.spec.host.poll_delay,
                    Ev::HostNotice {
                        node,
                        item: HostItem::SharedNotify {
                            target: notif_target,
                            origin: rank,
                            all: op.notify == NotifyMode::AllOnTargetDevice,
                            notif,
                            token,
                        },
                    },
                );
            }
            return;
        }
        // Distributed: command to the origin block manager. Put payloads
        // are snapshotted at issue time (the source buffer may be reused by
        // the kernel immediately after the nonblocking call returns; real
        // dCUDA requires a flush first, our model gives the stronger
        // issue-time-snapshot semantics).
        self.distributed_ops += 1;
        self.ranks[rank as usize].outstanding += 1;
        // Monitor tokens are minted at issue time (the origin "sends" the
        // notification with the put); delivery consumes them at the target.
        let notif_token = match (op.kind, op.notify) {
            (_, NotifyMode::None) => 0,
            (RmaKind::Put, NotifyMode::Target) => self.mint(
                rank,
                op.partner.0,
                Notification {
                    win: op.win.0,
                    source: rank,
                    tag: op.tag,
                },
            ),
            (RmaKind::Put, NotifyMode::AllOnTargetDevice) => self.mint_broadcast(
                rank,
                self.topo.node_of(op.partner),
                Notification {
                    win: op.win.0,
                    source: rank,
                    tag: op.tag,
                },
            ),
            (RmaKind::Get, _) => self.mint(
                op.partner.0,
                rank,
                Notification {
                    win: op.win.0,
                    source: op.partner.0,
                    tag: op.tag,
                },
            ),
        };
        let payload = match op.kind {
            RmaKind::Put => {
                let local = self.local_span(r, &op);
                let mut buf = self.pool.acquire(op.len);
                buf.extend_from_slice(&self.arenas[node as usize][op.win.index()].bytes()[local]);
                buf
            }
            RmaKind::Get => Vec::new(),
        };
        let xfer = self
            .transfers
            .insert(Transfer {
                op,
                origin: r,
                payload,
                meta_ready: None,
                data_ready: None,
                completion_submitted: false,
                notif_token,
                attempt: 1,
                meta_arrived: false,
                acked: false,
            })
            .to_bits();
        let visible = self.pcie[node as usize].post_txn(now, self.spec.host.meta_bytes);
        self.queue.schedule_at(
            visible + self.spec.host.poll_delay,
            Ev::HostNotice {
                node,
                item: HostItem::RmaCmd { xfer },
            },
        );
    }

    /// Execute the effect of a completed host job.
    fn host_done(&mut self, node: u32, item: HostItem, now: SimTime) {
        match item {
            HostItem::RmaCmd { xfer } => {
                let key = SlotKey::from_bits(xfer);
                let (op, origin) = {
                    let tr = self.transfers.get(key).expect("cmd for unknown transfer");
                    (tr.op, tr.origin)
                };
                let origin_node = NodeId(node);
                let partner_node = NodeId(self.topo.node_of(op.partner));
                if self.resil.is_some() {
                    // Reliable protocol: both packets go through the fault
                    // layer and an ack-timeout timer is armed once the last
                    // one clears the NIC. The flush window stays open until
                    // the target's ack (puts) or the data return (gets).
                    let meta_free = self.send_resilient(
                        now,
                        origin_node,
                        partner_node,
                        self.spec.host.meta_bytes,
                        PacketKind::Meta,
                        xfer,
                    );
                    let free = match op.kind {
                        RmaKind::Put => self
                            .send_resilient(
                                now,
                                origin_node,
                                partner_node,
                                op.len as u64,
                                PacketKind::Data,
                                xfer,
                            )
                            .max(meta_free),
                        RmaKind::Get => meta_free,
                    };
                    if let Some(r) = self.resil.as_mut() {
                        let timeout = r.retry.backoff(1, &mut r.rng);
                        self.queue
                            .schedule_at(free + timeout, Ev::RetryCheck { xfer, attempt: 1 });
                    }
                    return;
                }
                // Meta information to the partner's event handler.
                let meta = self.net.send(
                    now,
                    origin_node,
                    partner_node,
                    self.spec.host.meta_bytes,
                    TransferPath::HostToHost,
                );
                self.queue
                    .schedule_at(meta.arrival, Ev::NetMetaArrive { xfer });
                match op.kind {
                    RmaKind::Put => {
                        // Inject the data message (payload was snapshotted
                        // at issue time).
                        let path = self
                            .net
                            .device_path(origin_node, partner_node, op.len as u64);
                        let data =
                            self.net
                                .send(now, origin_node, partner_node, op.len as u64, path);
                        self.queue
                            .schedule_at(data.arrival, Ev::NetDataArrive { xfer });
                        // Send buffers reusable -> flush id advances.
                        self.queue.schedule_at(
                            data.egress_free.max(now),
                            Ev::OriginFree { rank: origin.0 },
                        );
                    }
                    RmaKind::Get => {
                        // Data flows back only after the partner processes
                        // the request; nothing else to do here.
                    }
                }
            }
            HostItem::SharedNotify {
                target,
                notif,
                origin,
                all,
                token,
            } => {
                self.queue.schedule_at(now, Ev::OriginFree { rank: origin });
                if all {
                    // Broadcast-put: one notification per resident rank of
                    // the target device (each its own queue transaction).
                    // Tokens were minted contiguously in local order.
                    for local in 0..self.topo.ranks_per_node {
                        let rank = self.topo.rank_of(node, local);
                        let visible = self.pcie[node as usize].post_txn(now, 16);
                        self.queue.schedule_at(
                            visible,
                            Ev::NotifDeliver {
                                rank: rank.0,
                                notif,
                                token: fan_token(token, local),
                            },
                        );
                    }
                } else {
                    let visible = self.pcie[node as usize].post_txn(now, 16);
                    self.queue.schedule_at(
                        visible,
                        Ev::NotifDeliver {
                            rank: target,
                            notif,
                            token,
                        },
                    );
                }
            }
            HostItem::MetaAtTarget { xfer } => {
                let key = SlotKey::from_bits(xfer);
                let Some((op, origin)) = self.transfers.get(key).map(|tr| (tr.op, tr.origin))
                else {
                    // The transfer retired between arrival and host
                    // processing — only possible for retransmitted get
                    // requests on faulted runs.
                    assert!(self.resil.is_some(), "meta for unknown transfer");
                    self.note_dup_suppressed();
                    return;
                };
                match op.kind {
                    RmaKind::Put => {
                        let tr = self.transfers.get_mut(key).expect("live transfer");
                        tr.meta_ready = Some(now);
                        self.maybe_complete(key, now);
                    }
                    RmaKind::Get => {
                        // We are on the data-holder node.
                        let holder_node = NodeId(node);
                        let origin_node = NodeId(self.topo.node_of(origin));
                        let repeat = {
                            let tr = self.transfers.get_mut(key).expect("live transfer");
                            let repeat = tr.meta_ready.is_some();
                            if !repeat {
                                tr.meta_ready = Some(now);
                            }
                            repeat
                        };
                        if repeat {
                            // Retransmitted request (faulted runs): the
                            // origin is still missing the data exactly when
                            // it has not landed yet — re-serve it from the
                            // original snapshot.
                            self.note_dup_suppressed();
                            let need = self
                                .transfers
                                .get(key)
                                .is_some_and(|tr| tr.data_ready.is_none());
                            if need {
                                self.send_resilient(
                                    now,
                                    holder_node,
                                    origin_node,
                                    op.len as u64,
                                    PacketKind::Data,
                                    xfer,
                                );
                                if let Some(r) = self.resil.as_mut() {
                                    r.retries += 1;
                                }
                            }
                            return;
                        }
                        // First request: snapshot and send the data back to
                        // the origin.
                        let remote = self.remote_span(&op);
                        let mut payload = self.pool.acquire(op.len);
                        payload.extend_from_slice(
                            &self.arenas[node as usize][op.win.index()].bytes()[remote],
                        );
                        {
                            let tr = self.transfers.get_mut(key).expect("live transfer");
                            tr.payload = payload;
                        }
                        if self.resil.is_some() {
                            self.send_resilient(
                                now,
                                holder_node,
                                origin_node,
                                op.len as u64,
                                PacketKind::Data,
                                xfer,
                            );
                            return;
                        }
                        let path = self
                            .net
                            .device_path(holder_node, origin_node, op.len as u64);
                        let data =
                            self.net
                                .send(now, holder_node, origin_node, op.len as u64, path);
                        self.queue
                            .schedule_at(data.arrival, Ev::NetDataArrive { xfer });
                    }
                }
            }
            HostItem::Complete { xfer } => {
                let key = SlotKey::from_bits(xfer);
                // On faulted runs a completed put stays resident until the
                // origin's ack retires it (late duplicate packets must still
                // find it for dedup, and a lost ack means the target has to
                // re-ack on the next retransmit); everything else retires
                // here as before.
                let faulted_put = self.resil.is_some()
                    && self
                        .transfers
                        .get(key)
                        .is_some_and(|tr| tr.op.kind == RmaKind::Put);
                let (op, origin, notif_token) = if faulted_put {
                    let tr = self.transfers.get(key).expect("live transfer");
                    (tr.op, tr.origin, tr.notif_token)
                } else {
                    let tr = self
                        .transfers
                        .remove(key)
                        .expect("complete unknown transfer");
                    (tr.op, tr.origin, tr.notif_token)
                };
                match op.kind {
                    RmaKind::Put => {
                        let notif = Notification {
                            win: op.win.0,
                            source: origin.0,
                            tag: op.tag,
                        };
                        match op.notify {
                            NotifyMode::None => {}
                            NotifyMode::Target => {
                                let visible = self.pcie[node as usize].post_txn(now, 16);
                                self.queue.schedule_at(
                                    visible,
                                    Ev::NotifDeliver {
                                        rank: op.partner.0,
                                        notif,
                                        token: notif_token,
                                    },
                                );
                            }
                            NotifyMode::AllOnTargetDevice => {
                                for local in 0..self.topo.ranks_per_node {
                                    let rank = self.topo.rank_of(node, local);
                                    let visible = self.pcie[node as usize].post_txn(now, 16);
                                    self.queue.schedule_at(
                                        visible,
                                        Ev::NotifDeliver {
                                            rank: rank.0,
                                            notif,
                                            token: fan_token(notif_token, local),
                                        },
                                    );
                                }
                            }
                        }
                        if faulted_put {
                            // Acknowledge end-to-end delivery to the origin.
                            let target_node = NodeId(node);
                            let origin_node = NodeId(self.topo.node_of(origin));
                            self.send_resilient(
                                now,
                                target_node,
                                origin_node,
                                ACK_BYTES,
                                PacketKind::Ack,
                                xfer,
                            );
                        }
                    }
                    RmaKind::Get => {
                        // Origin side: data landed; flush can advance and the
                        // origin rank is notified.
                        self.queue
                            .schedule_at(now, Ev::OriginFree { rank: origin.0 });
                        if op.notify != NotifyMode::None {
                            let visible = self.pcie[node as usize].post_txn(now, 16);
                            self.queue.schedule_at(
                                visible,
                                Ev::NotifDeliver {
                                    rank: origin.0,
                                    notif: Notification {
                                        win: op.win.0,
                                        source: op.partner.0,
                                        tag: op.tag,
                                    },
                                    token: notif_token,
                                },
                            );
                        }
                    }
                }
            }
            HostItem::BarrierCmd { rank, nb_tag } => {
                let n = node as usize;
                self.barrier_arrived[n] += 1;
                self.barrier_nb[rank as usize] = nb_tag;
                if self.barrier_arrived[n] == self.topo.ranks_per_node {
                    self.barrier_entry[n] = Some(now);
                    if self.barrier_entry.iter().all(Option::is_some) {
                        self.finish_barrier(now);
                    }
                }
            }
        }
    }

    /// All nodes have entered: run the host-level dissemination barrier and
    /// ack every rank.
    fn finish_barrier(&mut self, _now: SimTime) {
        self.barriers += 1;
        if let Some(d) = self.races.as_mut() {
            // Blocking entrants join the all-entries clock now; nonblocking
            // entrants get it stashed as their pending completion
            // notification on the IBARRIER window and join when they match.
            let completions: Vec<(u32, Option<u32>)> = self
                .barrier_nb
                .iter()
                .enumerate()
                .map(|(r, nb)| (r as u32, *nb))
                .collect();
            d.barrier_entries(&completions, crate::kernel::IBARRIER_WIN);
        }
        let entries: Vec<SimTime> = self
            .barrier_entry
            .iter()
            .map(|t| t.expect("all nodes entered"))
            .collect();
        let netspec = self.net.spec().clone();
        let meta = self.spec.host.meta_bytes;
        let hop = move |bytes: u64| {
            netspec.overhead
                + netspec.latency
                + SimDuration::from_secs_f64((bytes + meta) as f64 / netspec.host_bandwidth)
        };
        let exits = barrier_exit_times(&entries, &hop);
        for node in 0..self.topo.nodes {
            let exit = exits[node as usize];
            for local in 0..self.topo.ranks_per_node {
                let rank = self.topo.rank_of(node, local);
                let visible = self.pcie[node as usize].post_txn(exit, 16);
                match self.barrier_nb[rank.index()].take() {
                    Some(tag) => {
                        // Nonblocking entry: completion as a notification
                        // (paper §V).
                        let notif = Notification {
                            win: crate::kernel::IBARRIER_WIN,
                            source: rank.0,
                            tag,
                        };
                        let token = self.mint(rank.0, rank.0, notif);
                        self.queue.schedule_at(
                            visible,
                            Ev::NotifDeliver {
                                rank: rank.0,
                                notif,
                                token,
                            },
                        );
                    }
                    None => {
                        self.queue
                            .schedule_at(visible, Ev::BarrierAck { rank: rank.0 });
                    }
                }
            }
            self.barrier_arrived[node as usize] = 0;
            self.barrier_entry[node as usize] = None;
        }
    }

    /// Write an arrived payload into its destination arena.
    fn land_payload(&mut self, key: SlotKey) {
        let (op, origin, payload) = {
            let tr = self.transfers.get_mut(key).expect("land unknown transfer");
            (tr.op, tr.origin, std::mem::take(&mut tr.payload))
        };
        match op.kind {
            RmaKind::Put => {
                let node = self.topo.node_of(op.partner) as usize;
                let span = self.remote_span(&op);
                self.arenas[node][op.win.index()].bytes_mut()[span].copy_from_slice(&payload);
            }
            RmaKind::Get => {
                let node = self.topo.node_of(origin) as usize;
                let span = self.local_span(origin, &op);
                self.arenas[node][op.win.index()].bytes_mut()[span].copy_from_slice(&payload);
            }
        }
        // The snapshot buffer's job is done; keep it for the next put.
        self.pool.recycle(payload);
    }

    /// If meta and data are both in, submit the completion host job (on the
    /// target node for puts, the origin node for gets).
    fn maybe_complete(&mut self, key: SlotKey, now: SimTime) {
        let tr = self.transfers.get_mut(key).expect("unknown transfer");
        if tr.completion_submitted || tr.meta_ready.is_none() || tr.data_ready.is_none() {
            return;
        }
        tr.completion_submitted = true;
        let node = match tr.op.kind {
            RmaKind::Put => self.topo.node_of(tr.op.partner),
            RmaKind::Get => self.topo.node_of(tr.origin),
        };
        self.queue.schedule_at(
            now,
            Ev::HostNotice {
                node,
                item: HostItem::Complete {
                    xfer: key.to_bits(),
                },
            },
        );
    }

    /// Ack-timeout timer fired for an in-flight transfer (faulted runs
    /// only). A missing transfer means it completed and retired; a stale
    /// `attempt` means a newer timer superseded this one.
    fn retry_check(&mut self, xfer: u64, attempt: u32, now: SimTime) {
        let key = SlotKey::from_bits(xfer);
        let Some(tr) = self.transfers.get(key) else {
            return;
        };
        if tr.attempt != attempt {
            return;
        }
        let done = match tr.op.kind {
            RmaKind::Put => tr.acked,
            RmaKind::Get => tr.data_ready.is_some() || tr.completion_submitted,
        };
        if done {
            return;
        }
        let (op, origin) = (tr.op, tr.origin);
        let origin_node = NodeId(self.topo.node_of(origin));
        let remote_node = NodeId(self.topo.node_of(op.partner));
        let (max_attempts, next) = match self.resil.as_ref() {
            Some(r) => (r.retry.max_attempts, attempt + 1),
            None => return,
        };
        if attempt >= max_attempts {
            panic!(
                "dcuda-faults: {:?} transfer from rank {} to {:?} exceeded {} delivery \
                 attempts — link {} -> {} is unrecoverable under the active fault profile",
                op.kind, origin.0, op.partner, max_attempts, origin_node.0, remote_node.0
            );
        }
        // A timeout is evidence of loss: feed the link-health tracker, which
        // steps the link down the path ladder once enough accumulate.
        if let Some(level) = self.net.report_timeout(origin_node, remote_node) {
            if self.tracer.is_enabled() {
                self.tracer.instant(
                    Track::NetLink(origin_node.0),
                    "demote",
                    now.as_ps(),
                    vec![
                        ("dst", u64::from(remote_node.0).into()),
                        ("level", u64::from(level).into()),
                    ],
                );
            }
        }
        {
            let tr = self.transfers.get_mut(key).expect("live transfer");
            tr.attempt = next;
        }
        if self.tracer.is_enabled() {
            self.tracer.instant(
                Track::Rank(origin.0),
                "retry",
                now.as_ps(),
                vec![
                    ("attempt", u64::from(next).into()),
                    ("partner", u64::from(op.partner.0).into()),
                ],
            );
        }
        // Retransmit: puts resend meta + data (receiver-side dedup absorbs
        // whatever already arrived), gets re-issue the request.
        let meta_bytes = self.spec.host.meta_bytes;
        let mut resent = 1u64;
        let meta_free = self.send_resilient(
            now,
            origin_node,
            remote_node,
            meta_bytes,
            PacketKind::Meta,
            xfer,
        );
        let free = match op.kind {
            RmaKind::Put => {
                resent += 1;
                let data_free = self.send_resilient(
                    now,
                    origin_node,
                    remote_node,
                    op.len as u64,
                    PacketKind::Data,
                    xfer,
                );
                data_free.max(meta_free)
            }
            RmaKind::Get => meta_free,
        };
        let backoff = match self.resil.as_mut() {
            Some(r) => {
                r.timeouts += 1;
                r.retries += resent;
                r.retry.backoff(next, &mut r.rng)
            }
            None => return,
        };
        self.queue.schedule_at(
            free + backoff,
            Ev::RetryCheck {
                xfer,
                attempt: next,
            },
        );
    }

    /// The target's acknowledgement reached the origin: the put is complete
    /// end-to-end, so the transfer retires and the flush window advances.
    /// Duplicate acks find the slot empty (generation-checked keys) and are
    /// absorbed.
    fn ack_arrive(&mut self, xfer: u64, now: SimTime) {
        let key = SlotKey::from_bits(xfer);
        let Some(tr) = self.transfers.get_mut(key) else {
            self.note_dup_suppressed();
            return;
        };
        debug_assert!(!tr.acked, "acked transfers retire immediately");
        tr.acked = true;
        let origin = tr.origin;
        self.transfers.remove(key);
        // Under the reliable protocol "send buffer reusable" strengthens to
        // "delivery confirmed": flush completes only at the ack.
        self.queue
            .schedule_at(now, Ev::OriginFree { rank: origin.0 });
    }

    /// A notification became visible in a rank's device-side queue.
    fn deliver_notification(&mut self, rank: u32, notif: Notification, token: u64, now: SimTime) {
        self.notifications += 1;
        if let Some(m) = self.monitor.as_mut() {
            m.delivered(notif.source, rank, token, notif);
        }
        if self.tracer.is_enabled() {
            self.tracer.instant(
                Track::Rank(rank),
                "notify",
                now.as_ps(),
                vec![
                    ("win", u64::from(notif.win).into()),
                    ("source", u64::from(notif.source).into()),
                    ("tag", u64::from(notif.tag).into()),
                ],
            );
        }
        let st = &mut self.ranks[rank as usize];
        st.pending.insert(notif);
        self.peak_pending_notifications = self.peak_pending_notifications.max(st.pending.len());
        if self.ranks[rank as usize].status == Status::Waiting {
            self.try_match(rank, now, true);
        }
    }

    /// Attempt to satisfy a waiting rank's query. `poll` adds the device
    /// poll interval before the rank resumes (it was spinning on the queue).
    fn try_match(&mut self, rank: u32, now: SimTime, poll: bool) {
        let match_flops_per_scan =
            self.spec.device.notification_match_cost.as_secs_f64() * self.spec.device.sm_flops;
        let st = &mut self.ranks[rank as usize];
        debug_assert_eq!(st.status, Status::Waiting);
        match st.pending.try_match(st.query, st.want as usize) {
            Some((matched, scanned)) => {
                self.notifications_scanned += scanned as u64;
                st.match_backlog_flops += scanned as f64 * match_flops_per_scan;
                debug_assert_eq!(matched.len(), st.want as usize);
                st.suspend = None;
                if let Some(m) = self.monitor.as_mut() {
                    for n in &matched {
                        m.matched(rank, *n, 1);
                    }
                }
                if let Some(d) = self.races.as_mut() {
                    for n in &matched {
                        d.matched(rank, n.source, n.win, n.tag);
                    }
                }
                self.set_status(rank, Status::Ready, now);
                let wake = if poll {
                    now + self.spec.device.notification_poll_interval
                } else {
                    now
                };
                self.queue.schedule_at(wake, Ev::RankWork { rank });
            }
            None => {
                // Failed scans also consume device time while spinning. The
                // modeled cost comes from the matcher (a linear matcher
                // re-reads every pending entry), not from any host-side
                // shortcut the index takes.
                let scanned = st.pending.failed_scan_cost();
                self.notifications_scanned += scanned as u64;
                st.match_backlog_flops += scanned as f64 * match_flops_per_scan;
            }
        }
    }
}
