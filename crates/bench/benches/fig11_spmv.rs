//! Figure 11 bench: sparse matrix-vector weak scaling.

use dcuda_apps::spmv::{run_dcuda, run_mpicuda, SpmvConfig};
use dcuda_bench::harness::bench;
use dcuda_core::SystemSpec;

fn main() {
    let spec = SystemSpec::greina();
    println!("Figure 11 series (paper shape: tight synchronization leaves no overlap; dCUDA comparable, catching up at 9 nodes):");
    for grid in [1u32, 2, 3] {
        let mut cfg = SpmvConfig::paper(grid);
        cfg.iters = 20;
        let (_, d) = run_dcuda(&spec, &cfg);
        let (_, m) = run_mpicuda(&spec, &cfg);
        println!(
            "  nodes={}: dCUDA {:>7.2} ms, MPI-CUDA {:>7.2} ms, comm {:>6.2} ms (ratio {:.2}, shrinking = catching up)",
            grid * grid,
            d.time_ms,
            m.time_ms,
            m.comm_ms,
            d.time_ms / m.time_ms
        );
    }
    let mut cfg = SpmvConfig::paper(2);
    cfg.iters = 5;
    bench("fig11_spmv/dcuda/4", || run_dcuda(&spec, &cfg));
    bench("fig11_spmv/mpicuda/4", || run_mpicuda(&spec, &cfg));
}
