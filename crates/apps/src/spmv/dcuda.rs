//! dCUDA variant of the SpMV mini-application.
//!
//! Per iteration: broadcast the input vector down each grid column
//! (hierarchical binomial tree: device-level 84 kB puts, then an on-device
//! notification tree over the overlapping x window), local CSR SpMV, then a
//! binomial reduction of per-rank row partials across the grid columns
//! (many small direct device-to-device messages — paper §IV-C: "the dCUDA
//! variant sends more but smaller messages"), and finally a barrier — the
//! worst case for overlap, by design.

use super::csr::{generate_patch, generate_x, CsrMatrix, SpmvConfig};
use super::SpmvResult;
use dcuda_core::window::f64_slice;
use dcuda_core::{ClusterSim, Rank, RankCtx, RankKernel, Suspend, SystemSpec, WinId, WindowSpec};
use dcuda_device::BlockCharge;

const W_X: WinId = WinId(0);
const W_RED: WinId = WinId(1);
const W_Y: WinId = WinId(2);
const TAG_X: u32 = 1;
const TAG_XL: u32 = 2;
const TAG_RED_BASE: u32 = 10;

/// Binomial-tree children of `v` among `n` participants (receive schedule:
/// parent of `v` is `v` with its highest set bit cleared).
fn binomial_children(v: usize, n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut k = 1usize;
    // v sends to v + k for every power of two k > v's value range position:
    // the standard schedule sends from v to v + 2^j for all 2^j > v.
    while k < n {
        if k > v && v + k < n {
            out.push(v + k);
        }
        k <<= 1;
    }
    out
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Start,
    AwaitX,
    Spmv,
    Reduce { round: u32 },
    AwaitBarrier,
    Done,
}

struct SpmvKernel {
    cfg: SpmvConfig,
    prow: u32,
    pcol: u32,
    local: u32,
    /// Only this rank's rows of the patch (sliced out once at setup).
    matrix_rows: CsrMatrix,
    rows: std::ops::Range<usize>,
    partial: Vec<f64>,
    iter: u32,
    phase: Phase,
}

impl SpmvKernel {
    fn rank_of(&self, prow: u32, pcol: u32, local: u32) -> Rank {
        let node = self.cfg.node_at(prow, pcol);
        Rank(node * self.cfg.ranks_per_node + local)
    }

    fn rounds(&self) -> u32 {
        let g = self.cfg.grid;
        if g <= 1 {
            0
        } else {
            u32::BITS - (g - 1).leading_zeros()
        }
    }

    /// Forward x: device-level children (for local rank 0) then the
    /// on-device fan-out — a binomial notification tree by default, or a
    /// single `put_notify_all` with the §V broadcast-put extension.
    fn forward_x(&self, ctx: &mut RankCtx<'_>) {
        let bytes = self.cfg.patch * 8;
        if self.local == 0 {
            for child in binomial_children(self.prow as usize, self.cfg.grid as usize) {
                let dst = self.rank_of(child as u32, self.pcol, 0);
                ctx.put_notify(W_X, dst, 0, 0, bytes, TAG_X);
            }
            if self.cfg.bcast_put {
                // One zero-copy op notifies every local rank (including us;
                // we consume our own notification before computing).
                let me = self.rank_of(self.prow, self.pcol, 0);
                ctx.put_notify_all(W_X, me, 0, 0, bytes, TAG_XL);
                return;
            }
        }
        if self.cfg.bcast_put {
            return; // non-root locals never forward in broadcast mode
        }
        for child in binomial_children(self.local as usize, self.cfg.ranks_per_node as usize) {
            let dst = self.rank_of(self.prow, self.pcol, child as u32);
            // Same window range on the same device: zero-copy notification.
            ctx.put_notify(W_X, dst, 0, 0, bytes, TAG_XL);
        }
    }

    fn compute_spmv(&mut self, ctx: &mut RankCtx<'_>) {
        let x = ctx.win_f64(W_X).to_vec();
        self.partial.resize(self.rows.len(), 0.0);
        self.matrix_rows
            .spmv_rows(&x, &mut self.partial, 0..self.rows.len());
        ctx.charge(self.matrix_rows.spmv_charge(0..self.rows.len()));
    }
}

impl RankKernel for SpmvKernel {
    fn resume(&mut self, ctx: &mut RankCtx<'_>) -> Suspend {
        loop {
            match self.phase {
                Phase::Start => {
                    if self.iter >= self.cfg.iters {
                        self.phase = Phase::Done;
                        return Suspend::Finished;
                    }
                    // The first grid row holds the input vector; its local
                    // rank 0 (re)publishes it into the shared x window.
                    if self.prow == 0 && self.local == 0 {
                        if self.iter == 0 {
                            let x = generate_x(&self.cfg, self.pcol);
                            ctx.win_f64_mut(W_X).copy_from_slice(&x);
                        }
                        ctx.charge(BlockCharge::mem(self.cfg.patch as f64 * 8.0));
                        self.forward_x(ctx);
                        if self.cfg.bcast_put {
                            // Consume our own broadcast notification.
                            self.phase = Phase::Spmv;
                            return Suspend::WaitNotifications {
                                win: Some(W_X),
                                source: None,
                                tag: Some(TAG_XL),
                                count: 1,
                            };
                        }
                        self.phase = Phase::Spmv;
                    } else {
                        self.phase = Phase::AwaitX;
                        let tag = if self.local == 0 { TAG_X } else { TAG_XL };
                        return Suspend::WaitNotifications {
                            win: Some(W_X),
                            source: None,
                            tag: Some(tag),
                            count: 1,
                        };
                    }
                }
                Phase::AwaitX => {
                    // x landed: forward to children, then compute.
                    self.forward_x(ctx);
                    if self.cfg.bcast_put && self.local == 0 {
                        // Consume our own broadcast notification.
                        self.phase = Phase::Spmv;
                        return Suspend::WaitNotifications {
                            win: Some(W_X),
                            source: None,
                            tag: Some(TAG_XL),
                            count: 1,
                        };
                    }
                    self.phase = Phase::Spmv;
                }
                Phase::Spmv => {
                    self.compute_spmv(ctx);
                    self.phase = Phase::Reduce { round: 0 };
                }
                Phase::Reduce { round } => {
                    let v = self.pcol;
                    let g = self.cfg.grid;
                    let rounds = self.rounds();
                    let bytes = self.rows.len() * 8;
                    if round > 0 {
                        // A contribution for round `round - 1` just matched:
                        // combine it into our partial.
                        let k = (round - 1) as usize;
                        let slot = self.rows.len();
                        let w = ctx.win_f64(W_RED);
                        for (dst, src) in self.partial.iter_mut().zip(&w[k * slot..(k + 1) * slot])
                        {
                            *dst += src;
                        }
                        ctx.charge(BlockCharge {
                            flops: slot as f64,
                            mem_bytes: 3.0 * bytes as f64,
                        });
                    }
                    let mut k = round;
                    loop {
                        if k >= rounds {
                            // Reduction root: publish the final rows.
                            if v == 0 {
                                let y = ctx.win_f64_mut(W_Y);
                                // The window is sized for the largest rank
                                // row count; fill our prefix.
                                y[..self.partial.len()].copy_from_slice(&self.partial);
                                ctx.charge(BlockCharge::mem(bytes as f64));
                            }
                            self.phase = Phase::AwaitBarrier;
                            break;
                        }
                        if v & (1 << k) != 0 {
                            // Send our subtree's partial and leave the tree.
                            let dst = self.rank_of(self.prow, v - (1 << k), self.local);
                            // Stage the partial in our own reduction slot k,
                            // then put it into the peer's slot k.
                            let slot = self.rows.len();
                            {
                                let w = ctx.win_f64_mut(W_RED);
                                w[k as usize * slot..(k as usize + 1) * slot]
                                    .copy_from_slice(&self.partial);
                            }
                            ctx.charge(BlockCharge::mem(bytes as f64));
                            ctx.put_notify(
                                W_RED,
                                dst,
                                k as usize * bytes,
                                k as usize * bytes,
                                bytes,
                                TAG_RED_BASE + k,
                            );
                            self.phase = Phase::AwaitBarrier;
                            break;
                        }
                        if v + (1 << k) < g {
                            // Expect a contribution this round.
                            self.phase = Phase::Reduce { round: k + 1 };
                            return Suspend::WaitNotifications {
                                win: Some(W_RED),
                                source: None,
                                tag: Some(TAG_RED_BASE + k),
                                count: 1,
                            };
                        }
                        k += 1;
                    }
                    // Combine on re-entry happens below via the round
                    // counter: when we re-enter with round = k + 1, the slot
                    // for round k has just been matched.
                    if let Phase::AwaitBarrier = self.phase {
                        return Suspend::Barrier;
                    }
                }
                Phase::AwaitBarrier => {
                    self.iter += 1;
                    self.phase = Phase::Start;
                }
                Phase::Done => return Suspend::Finished,
            }
        }
    }
}

/// Run the dCUDA SpMV. Returns the global output vector and timing
/// (setup-subtracted).
pub fn run_dcuda(spec: &SystemSpec, cfg: &SpmvConfig) -> (Vec<f64>, SpmvResult) {
    let (y, time_ms) = run_once(spec, cfg);
    let (_, setup_ms) = run_once(
        spec,
        &SpmvConfig {
            iters: 0,
            ..cfg.clone()
        },
    );
    (
        y,
        SpmvResult {
            time_ms: time_ms - setup_ms,
            comm_ms: 0.0,
        },
    )
}

fn run_once(spec: &SystemSpec, cfg: &SpmvConfig) -> (Vec<f64>, f64) {
    let topo = cfg.topology();
    let rounds = if cfg.grid <= 1 {
        1
    } else {
        (u32::BITS - (cfg.grid - 1).leading_zeros()) as usize
    };
    // x: fully overlapping per device.
    let x_win = WindowSpec {
        ranges: topo.ranks().map(|_| 0..cfg.patch * 8).collect(),
    };
    // Reduction slots and final y: per-rank row-sized regions.
    let max_rows = cfg.rank_rows(0).len();
    let red_win = WindowSpec::uniform(&topo, rounds * max_rows * 8);
    let y_win = WindowSpec::uniform(&topo, max_rows * 8);
    // Generate each node's patch once and hand every rank only its rows.
    let patches: Vec<CsrMatrix> = (0..topo.nodes)
        .map(|node| {
            let (prow, pcol) = cfg.grid_pos(node);
            generate_patch(cfg, prow, pcol)
        })
        .collect();
    let kernels: Vec<Box<dyn RankKernel>> = topo
        .ranks()
        .map(|r| {
            let node = topo.node_of(r);
            let (prow, pcol) = cfg.grid_pos(node);
            let local = topo.local_of(r);
            let rows = cfg.rank_rows(local);
            Box::new(SpmvKernel {
                cfg: cfg.clone(),
                prow,
                pcol,
                local,
                matrix_rows: patches[node as usize].slice_rows(rows.clone()),
                rows,
                partial: Vec::new(),
                iter: 0,
                phase: Phase::Start,
            }) as Box<dyn RankKernel>
        })
        .collect();
    let mut sim = ClusterSim::new(spec.clone(), topo, vec![x_win, red_win, y_win], kernels);
    let report = sim.run();
    // Assemble y from the first grid column.
    let mut y = vec![0.0; cfg.patch * cfg.grid as usize];
    if cfg.iters > 0 {
        for prow in 0..cfg.grid {
            let node = cfg.node_at(prow, 0);
            let arena = sim.arena(node, W_Y);
            for local in 0..cfg.ranks_per_node {
                let rows = cfg.rank_rows(local);
                let base = local as usize * max_rows * 8;
                let vals = f64_slice(&arena[base..base + rows.len() * 8]);
                y[prow as usize * cfg.patch + rows.start..prow as usize * cfg.patch + rows.end]
                    .copy_from_slice(vals);
            }
        }
    }
    (y, report.elapsed().as_millis_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmv::csr::serial_reference;

    fn check(cfg: &SpmvConfig) {
        let (y, res) = run_dcuda(&SystemSpec::greina(), cfg);
        let reference = serial_reference(cfg);
        assert_eq!(y.len(), reference.len());
        for (i, (a, b)) in y.iter().zip(&reference).enumerate() {
            assert!(
                (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                "y[{i}] = {a} vs reference {b}"
            );
        }
        assert!(res.time_ms > 0.0);
    }

    #[test]
    fn single_device_matches_reference() {
        check(&SpmvConfig::tiny(1));
    }

    #[test]
    fn four_devices_match_reference() {
        check(&SpmvConfig::tiny(2));
    }

    #[test]
    fn nine_devices_match_reference() {
        check(&SpmvConfig::tiny(3));
    }

    #[test]
    fn broadcast_put_variant_matches_reference() {
        let mut cfg = SpmvConfig::tiny(2);
        cfg.bcast_put = true;
        check(&cfg);
    }

    #[test]
    fn binomial_children_schedule() {
        // Root reaches everyone; each non-root has exactly one parent.
        let n = 13;
        let mut parent = vec![None; n];
        for v in 0..n {
            for c in binomial_children(v, n) {
                assert!(parent[c].is_none(), "child {c} has two parents");
                parent[c] = Some(v);
            }
        }
        for (v, p) in parent.iter().enumerate().skip(1) {
            assert!(p.is_some(), "participant {v} unreached");
        }
        assert!(parent[0].is_none());
    }
}
