//! Ablation: multi-tenant scheduler throughput under a job storm.
//!
//! The `dcuda-sched` tentpole claims the runtime can serve a *stream* of
//! jobs — admission, gang placement, per-job cluster worlds, per-job
//! teardown — without the scheduling machinery itself becoming the
//! bottleneck. This bench runs the jobstorm figure
//! ([`dcuda_bench::fig_jobstorm`]): a seeded storm of small ring/pingpong
//! jobs submitted to one shared scheduler as fast as the control path
//! accepts them. Headline metrics are sustained jobs/sec and the p50/p99
//! completion-latency tail (submit → terminal, so queueing *and* run time
//! count).
//!
//! `--json PATH` writes a `{"sched": [{"row", "value"}...]}` document;
//! `xtask bench-diff` checks the rows named in `BENCH_baseline.json`
//! against `min_value`/`max_value` bounds (the storm must sustain a floor
//! throughput, keep the tail bounded, and lose zero jobs).

use dcuda_bench::json::Json;
use dcuda_bench::{fig_jobstorm, Effort};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let json_path = argv
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| argv.get(i + 1))
        .cloned();
    let effort = if argv.iter().any(|a| a == "--full") {
        Effort::Full
    } else {
        Effort::Quick
    };

    println!("Ablation: scheduler job-storm throughput and latency tail");
    let fig = fig_jobstorm(effort);
    println!(
        "  {} jobs in {:.1} ms: {:.0} jobs/s, p50 {:.2} ms, p99 {:.2} ms, \
         utilization {:.2}, peak queue {}",
        fig.jobs,
        fig.wall_ms,
        fig.jobs_per_sec,
        fig.p50_ms,
        fig.p99_ms,
        fig.util_frac,
        fig.peak_queue_depth
    );

    // Loose acceptance gates — BENCH_baseline.json carries the calibrated
    // bounds; these only catch a scheduler that is outright broken.
    assert_eq!(
        fig.completed, fig.jobs,
        "storm lost jobs: {} of {} completed, {} failed",
        fig.completed, fig.jobs, fig.failed
    );
    assert_eq!(fig.failed, 0, "fault-free storm reported failures");
    assert!(
        fig.p50_ms <= fig.p99_ms,
        "latency percentiles inverted (p50 {:.2} > p99 {:.2})",
        fig.p50_ms,
        fig.p99_ms
    );
    assert!(
        fig.jobs_per_sec > 1.0,
        "storm throughput collapsed: {:.2} jobs/s",
        fig.jobs_per_sec
    );

    if let Some(path) = json_path {
        let mut rows: Vec<Json> = Vec::new();
        let mut push = |row: &str, value: f64| {
            rows.push(
                Json::obj()
                    .field("row", Json::str(row))
                    .field("value", Json::Num(value)),
            );
        };
        push("storm_jobs_per_sec", fig.jobs_per_sec);
        push("storm_p50_ms", fig.p50_ms);
        push("storm_p99_ms", fig.p99_ms);
        push("storm_failed_jobs", fig.failed as f64);
        push("storm_util_frac", fig.util_frac);
        let doc = Json::obj().field("sched", Json::Arr(rows));
        std::fs::write(&path, doc.to_string()).expect("write --json output");
        println!("  wrote {path}");
    }
}
