//! Length-prefixed wire codec for the inter-host plane.
//!
//! Two layers, both fully self-describing and versioned by a magic word:
//!
//! * [`WireMsg`] — the *semantic* messages of the dCUDA host plane
//!   (put/notify deliveries, flush acks, barrier tokens/releases, rank
//!   finish announcements). These are exactly the messages the in-process
//!   backend moves through its channels; the codec makes them portable
//!   across OS processes.
//! * [`Frame`] — the *connection* layer: a fixed header (magic, kind,
//!   destination device, connection sequence number, payload length)
//!   followed by the payload bytes. Frames carry encoded `WireMsg`s (kind
//!   [`FrameKind::Data`]), the credit-based flow-control returns, and the
//!   eager/rendezvous control handshake.
//!
//! Every decoder returns a typed [`CodecError`] on malformed input — a
//! corrupt or truncated byte stream must surface as an error value, never a
//! panic or an unbounded read.

use std::fmt;

/// Magic word opening every frame (`b"dCN1"` little-endian, versioned).
pub const FRAME_MAGIC: u32 = 0x314E_4364;

/// Hard cap on a frame payload; a corrupt length field must not convince
/// the reader to allocate gigabytes or block forever.
pub const MAX_FRAME_PAYLOAD: usize = 64 << 20;

/// Payloads up to this many bytes ship *eagerly* (inline in the data
/// frame); larger transfers use the rendezvous handshake
/// (request → ready → data), mirroring MPI's eager/rendezvous split.
pub const EAGER_MAX: usize = 2048;

/// Initial per-connection send credits (data-class frames in flight).
pub const INITIAL_CREDITS: u32 = 64;

/// The receiver returns credits in batches of this many fresh frames.
/// Must divide [`INITIAL_CREDITS`] so a stalled sender always eventually
/// sees a return.
pub const CREDIT_BATCH: u32 = 16;

/// A semantic message of the inter-host plane.
///
/// `Deliver.seq` is the *host-protocol* sequence number used by the
/// runtime's fault plan for exactly-once delivery (dedup at the receiving
/// host); it is independent of the connection-level [`Frame::seq`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireMsg {
    /// Deliver a put (payload + optional notification) to a rank local to
    /// the receiving device.
    Deliver {
        /// Local rank index on the receiving device.
        dst_local: u32,
        /// Target window.
        win: u32,
        /// Byte offset in the target rank's window.
        dst_off: u64,
        /// Origin world rank (the notification source).
        source: u32,
        /// Notification tag.
        tag: u32,
        /// Enqueue a notification at the target (false: silent put).
        notify: bool,
        /// Host-protocol sequence number (fault-plan dedup; 0 when healthy).
        seq: u64,
        /// Origin device (acks return here).
        origin_device: u32,
        /// Origin-local rank whose flush counter the ack advances.
        origin_local: u32,
        /// Origin's flush id for this operation.
        flush_id: u64,
        /// Payload bytes (may be empty for pure notifications).
        data: Vec<u8>,
    },
    /// Acknowledge a remote delivery (advances the origin's flush counter).
    Ack {
        /// Origin-local rank whose operation completed.
        origin_local: u32,
        /// The flush id that completed.
        flush_id: u64,
    },
    /// A rank on `device` finished its program (world quiescence counting
    /// across processes; the in-process backend uses a shared counter and
    /// never sends these).
    Finished {
        /// Reporting device.
        device: u32,
        /// Ranks that finished (currently always 1).
        ranks: u32,
    },
}

/// Typed decode failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The frame header's magic word is wrong (stream corrupt or desynced).
    BadMagic {
        /// The word found where the magic belonged.
        found: u32,
    },
    /// An unknown message or frame kind byte.
    BadKind {
        /// The offending kind byte.
        kind: u8,
    },
    /// A declared length exceeds [`MAX_FRAME_PAYLOAD`].
    Oversize {
        /// The declared length.
        len: u64,
    },
    /// The buffer ended before the declared content did.
    Truncated {
        /// Bytes needed beyond what was available.
        needed: usize,
    },
    /// Content decoded but bytes were left over (framing bug upstream).
    TrailingBytes {
        /// Number of unconsumed bytes.
        extra: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic { found } => {
                write!(
                    f,
                    "bad frame magic {found:#010x} (stream corrupt or desynced)"
                )
            }
            CodecError::BadKind { kind } => write!(f, "unknown message kind {kind}"),
            CodecError::Oversize { len } => {
                write!(
                    f,
                    "declared length {len} exceeds the {MAX_FRAME_PAYLOAD}-byte cap"
                )
            }
            CodecError::Truncated { needed } => {
                write!(f, "truncated: {needed} more bytes expected")
            }
            CodecError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after a complete message")
            }
        }
    }
}

impl std::error::Error for CodecError {}

// --- primitive readers/writers ------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Cursor over a byte slice with typed truncation errors.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(CodecError::Oversize { len: n as u64 })?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated {
                needed: end - self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

const MSG_DELIVER: u8 = 1;
const MSG_ACK: u8 = 2;
// Kinds 3 and 4 were the pre-0.4 centralized-barrier token/release
// messages; the dissemination barrier made them dead and they are now
// decode errors. Keep FINISHED at 5 so the wire format is unchanged.
const MSG_FINISHED: u8 = 5;

impl WireMsg {
    /// Upper bound on an encoded message *header* (everything except the
    /// trailing payload bytes). `Deliver` is the largest at 54 bytes; the
    /// streaming reader sizes its stack buffer with this.
    pub const HEADER_MAX: usize = 64;

    /// Append the encoded message **header** to `buf`: every field except
    /// the trailing payload bytes. The payload is deliberately the *final*
    /// field of the encoding, so `encode_header_into(buf); buf.extend(data)`
    /// produces exactly [`WireMsg::encode`] — the property the vectored
    /// send path and the shm ring rely on to ship header and payload as
    /// separate slices without re-staging.
    pub fn encode_header_into(&self, buf: &mut Vec<u8>) {
        match self {
            WireMsg::Deliver {
                dst_local,
                win,
                dst_off,
                source,
                tag,
                notify,
                seq,
                origin_device,
                origin_local,
                flush_id,
                data,
            } => {
                buf.push(MSG_DELIVER);
                put_u32(buf, *dst_local);
                put_u32(buf, *win);
                put_u64(buf, *dst_off);
                put_u32(buf, *source);
                put_u32(buf, *tag);
                buf.push(u8::from(*notify));
                put_u64(buf, *seq);
                put_u32(buf, *origin_device);
                put_u32(buf, *origin_local);
                put_u64(buf, *flush_id);
                put_u32(buf, data.len() as u32);
            }
            WireMsg::Ack {
                origin_local,
                flush_id,
            } => {
                buf.push(MSG_ACK);
                put_u32(buf, *origin_local);
                put_u64(buf, *flush_id);
            }
            WireMsg::Finished { device, ranks } => {
                buf.push(MSG_FINISHED);
                put_u32(buf, *device);
                put_u32(buf, *ranks);
            }
        }
    }

    /// Append the encoded message to `buf`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        self.encode_header_into(buf);
        if let WireMsg::Deliver { data, .. } = self {
            buf.extend_from_slice(data);
        }
    }

    /// Split the message into `(encoded header, payload bytes)` without
    /// copying the payload. Concatenating the parts reproduces
    /// [`WireMsg::encode`] exactly.
    pub fn into_parts(self) -> (Vec<u8>, Vec<u8>) {
        let mut header = Vec::with_capacity(Self::HEADER_MAX);
        self.encode_header_into(&mut header);
        let data = match self {
            WireMsg::Deliver { data, .. } => data,
            _ => Vec::new(),
        };
        (header, data)
    }

    /// Encode into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(48 + self.payload_len());
        self.encode_into(&mut buf);
        buf
    }

    /// Decode a message that must span the whole buffer.
    pub fn decode(buf: &[u8]) -> Result<WireMsg, CodecError> {
        let head = Self::decode_header(buf)?;
        let total = head.consumed + head.data_len;
        if buf.len() < total {
            return Err(CodecError::Truncated {
                needed: total - buf.len(),
            });
        }
        if buf.len() > total {
            return Err(CodecError::TrailingBytes {
                extra: buf.len() - total,
            });
        }
        let data = buf[head.consumed..total].to_vec();
        head.into_msg(data)
    }

    /// Decode only the message header from the front of `buf`, leaving the
    /// payload bytes unread. `buf` need not contain the payload — the first
    /// `min(len, HEADER_MAX)` bytes of the encoding always suffice. The
    /// streaming receive path uses this to learn the payload length, then
    /// reads the payload straight into its final buffer (single copy).
    pub fn decode_header(buf: &[u8]) -> Result<MsgHeader, CodecError> {
        let mut c = Cursor::new(buf);
        let (msg, data_len) = match c.u8()? {
            MSG_DELIVER => {
                let dst_local = c.u32()?;
                let win = c.u32()?;
                let dst_off = c.u64()?;
                let source = c.u32()?;
                let tag = c.u32()?;
                let notify = c.u8()? != 0;
                let seq = c.u64()?;
                let origin_device = c.u32()?;
                let origin_local = c.u32()?;
                let flush_id = c.u64()?;
                let len = c.u32()? as usize;
                if len > MAX_FRAME_PAYLOAD {
                    return Err(CodecError::Oversize { len: len as u64 });
                }
                (
                    WireMsg::Deliver {
                        dst_local,
                        win,
                        dst_off,
                        source,
                        tag,
                        notify,
                        seq,
                        origin_device,
                        origin_local,
                        flush_id,
                        data: Vec::new(),
                    },
                    len,
                )
            }
            MSG_ACK => (
                WireMsg::Ack {
                    origin_local: c.u32()?,
                    flush_id: c.u64()?,
                },
                0,
            ),
            MSG_FINISHED => (
                WireMsg::Finished {
                    device: c.u32()?,
                    ranks: c.u32()?,
                },
                0,
            ),
            kind => return Err(CodecError::BadKind { kind }),
        };
        Ok(MsgHeader {
            msg,
            data_len,
            consumed: c.pos,
        })
    }

    /// Bytes of user payload this message carries.
    pub fn payload_len(&self) -> usize {
        match self {
            WireMsg::Deliver { data, .. } => data.len(),
            _ => 0,
        }
    }
}

/// A decoded message header whose payload bytes have not been read yet
/// (see [`WireMsg::decode_header`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsgHeader {
    msg: WireMsg,
    /// Payload bytes that follow the header in the encoded stream.
    pub data_len: usize,
    /// Encoded header length (bytes consumed from the front of the buffer).
    pub consumed: usize,
}

impl MsgHeader {
    /// Total encoded length of the message (header + payload).
    pub fn total_len(&self) -> usize {
        self.consumed + self.data_len
    }

    /// Attach the payload bytes and yield the complete message. `data` must
    /// be exactly the `data_len` bytes that followed the header.
    pub fn into_msg(self, data: Vec<u8>) -> Result<WireMsg, CodecError> {
        if data.len() != self.data_len {
            return Err(if data.len() < self.data_len {
                CodecError::Truncated {
                    needed: self.data_len - data.len(),
                }
            } else {
                CodecError::TrailingBytes {
                    extra: data.len() - self.data_len,
                }
            });
        }
        Ok(match self.msg {
            WireMsg::Deliver {
                dst_local,
                win,
                dst_off,
                source,
                tag,
                notify,
                seq,
                origin_device,
                origin_local,
                flush_id,
                ..
            } => WireMsg::Deliver {
                dst_local,
                win,
                dst_off,
                source,
                tag,
                notify,
                seq,
                origin_device,
                origin_local,
                flush_id,
                data,
            },
            other => other,
        })
    }
}

/// Connection-level frame kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Connection handshake: payload = origin process index (u32).
    Hello,
    /// An eagerly shipped [`WireMsg`] (payload = encoded message).
    Data,
    /// Flow-control credit return: payload = credit count (u32).
    Credit,
    /// Rendezvous request: a large message is ready at `seq`; payload =
    /// declared payload length (u32). The receiver reserves the slot and
    /// answers [`FrameKind::RndzReady`].
    RndzRequest,
    /// Rendezvous grant: send the payload for `seq` now.
    RndzReady,
    /// Rendezvous payload: the full encoded [`WireMsg`] for `seq`.
    RndzData,
}

impl FrameKind {
    fn to_u8(self) -> u8 {
        match self {
            FrameKind::Hello => 0,
            FrameKind::Data => 1,
            FrameKind::Credit => 2,
            FrameKind::RndzRequest => 3,
            FrameKind::RndzReady => 4,
            FrameKind::RndzData => 5,
        }
    }

    fn from_u8(v: u8) -> Result<Self, CodecError> {
        Ok(match v {
            0 => FrameKind::Hello,
            1 => FrameKind::Data,
            2 => FrameKind::Credit,
            3 => FrameKind::RndzRequest,
            4 => FrameKind::RndzReady,
            5 => FrameKind::RndzData,
            kind => return Err(CodecError::BadKind { kind }),
        })
    }

    /// Does this frame consume a flow-control credit? Exactly the frames
    /// that open a new connection sequence number: retransmissions,
    /// rendezvous grants and payloads ride on the credit their sequence
    /// number already paid.
    pub fn consumes_credit(self) -> bool {
        matches!(self, FrameKind::Data | FrameKind::RndzRequest)
    }
}

/// Number of bytes in an encoded frame header.
pub const FRAME_HEADER_BYTES: usize = 4 + 1 + 4 + 8 + 4;

/// A connection-level frame.
///
/// `seq` is the per-connection sequence number: data-class frames
/// ([`FrameKind::Data`] / [`FrameKind::RndzRequest`]) are numbered densely
/// from 0 per (sender process → receiver process) connection, and the
/// receiver releases messages to the host layer strictly in `seq` order.
/// That single mechanism provides FIFO delivery (a rendezvous transfer
/// cannot be overtaken by later eager sends), duplicate suppression (a
/// `seq` below the release frontier is dropped) and loss recovery (the
/// stream stalls until the sender's retransmission fills the gap).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Frame kind.
    pub kind: FrameKind,
    /// Destination device (world device id; routing key on arrival).
    pub dst_device: u32,
    /// Connection sequence number (data-class frames) or the referenced
    /// sequence number (rendezvous control); 0 for Hello/Credit.
    pub seq: u64,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Append the encoded frame (header + payload) to `buf`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        put_u32(buf, FRAME_MAGIC);
        buf.push(self.kind.to_u8());
        put_u32(buf, self.dst_device);
        put_u64(buf, self.seq);
        put_u32(buf, self.payload.len() as u32);
        buf.extend_from_slice(&self.payload);
    }

    /// Encode into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(FRAME_HEADER_BYTES + self.payload.len());
        self.encode_into(&mut buf);
        buf
    }

    /// Decode one frame from the front of `buf`; returns the frame and the
    /// number of bytes consumed. [`CodecError::Truncated`] means "read more
    /// bytes and retry" — the streaming reader relies on it.
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), CodecError> {
        let mut c = Cursor::new(buf);
        let magic = c.u32()?;
        if magic != FRAME_MAGIC {
            return Err(CodecError::BadMagic { found: magic });
        }
        let kind = FrameKind::from_u8(c.u8()?)?;
        let dst_device = c.u32()?;
        let seq = c.u64()?;
        let len = c.u32()? as usize;
        if len > MAX_FRAME_PAYLOAD {
            return Err(CodecError::Oversize { len: len as u64 });
        }
        let payload = c.take(len)?.to_vec();
        Ok((
            Frame {
                kind,
                dst_device,
                seq,
                payload,
            },
            c.pos,
        ))
    }

    /// Read exactly one frame from a blocking reader. `Err(Truncated)` here
    /// means the stream ended mid-frame (peer died); clean EOF *between*
    /// frames is reported as `Ok(None)`.
    pub fn read_from(r: &mut impl std::io::Read) -> std::io::Result<Option<Frame>> {
        let Some(head) = FrameHeader::read_from(r)? else {
            return Ok(None);
        };
        let mut payload = vec![0u8; head.payload_len];
        read_fully(r, &mut payload)?;
        Ok(Some(Frame {
            kind: head.kind,
            dst_device: head.dst_device,
            seq: head.seq,
            payload,
        }))
    }
}

/// A decoded frame header whose payload has not been read off the stream
/// yet. The streaming receive path reads this first, then dispatches on
/// `kind` to read the payload into its final destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Frame kind.
    pub kind: FrameKind,
    /// Destination device.
    pub dst_device: u32,
    /// Connection sequence number.
    pub seq: u64,
    /// Declared payload length (already validated ≤ [`MAX_FRAME_PAYLOAD`]).
    pub payload_len: usize,
}

impl FrameHeader {
    /// Append the encoded header (no payload bytes) to `buf`. Appending
    /// `payload_len` payload bytes afterwards reproduces
    /// [`Frame::encode`] exactly — the vectored send path writes the two
    /// parts as separate iovecs.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        put_u32(buf, FRAME_MAGIC);
        buf.push(self.kind.to_u8());
        put_u32(buf, self.dst_device);
        put_u64(buf, self.seq);
        put_u32(buf, self.payload_len as u32);
    }

    /// Read and validate one frame header from a blocking reader; clean EOF
    /// before the first byte is `Ok(None)`. A signal-interrupted read
    /// (`ErrorKind::Interrupted`) is retried, never surfaced — EINTR must
    /// not kill a connection mid-frame.
    pub fn read_from(r: &mut impl std::io::Read) -> std::io::Result<Option<FrameHeader>> {
        let mut header = [0u8; FRAME_HEADER_BYTES];
        let mut got = 0;
        while got < header.len() {
            match r.read(&mut header[got..]) {
                Ok(0) if got == 0 => return Ok(None),
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        CodecError::Truncated {
                            needed: header.len() - got,
                        },
                    ))
                }
                Ok(n) => got += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Self::parse(&header).map(Some).map_err(codec_io)
    }

    /// Validate and decode an already-buffered header — the nonblocking
    /// reactor accumulates [`FRAME_HEADER_BYTES`] across partial reads and
    /// parses here; [`FrameHeader::read_from`] is the blocking wrapper.
    pub fn parse(header: &[u8; FRAME_HEADER_BYTES]) -> Result<FrameHeader, CodecError> {
        let mut c = Cursor::new(header);
        let magic = c.u32()?;
        if magic != FRAME_MAGIC {
            return Err(CodecError::BadMagic { found: magic });
        }
        let kind = FrameKind::from_u8(c.u8()?)?;
        let dst_device = c.u32()?;
        let seq = c.u64()?;
        let len = c.u32()? as usize;
        if len > MAX_FRAME_PAYLOAD {
            return Err(CodecError::Oversize { len: len as u64 });
        }
        Ok(FrameHeader {
            kind,
            dst_device,
            seq,
            payload_len: len,
        })
    }
}

/// Fill `buf` from a blocking reader; EOF mid-buffer is an error (the
/// stream died inside a frame). Signal-interrupted reads are retried.
pub fn read_fully(r: &mut impl std::io::Read, buf: &mut [u8]) -> std::io::Result<()> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    CodecError::Truncated {
                        needed: buf.len() - got,
                    },
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn codec_io(e: CodecError) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e)
}

/// Encode a `u32` payload (credit counts, hello indices, declared lengths).
pub fn u32_payload(v: u32) -> Vec<u8> {
    v.to_le_bytes().to_vec()
}

/// Decode a `u32` payload.
pub fn parse_u32_payload(buf: &[u8]) -> Result<u32, CodecError> {
    if buf.len() != 4 {
        return Err(if buf.len() < 4 {
            CodecError::Truncated {
                needed: 4 - buf.len(),
            }
        } else {
            CodecError::TrailingBytes {
                extra: buf.len() - 4,
            }
        });
    }
    Ok(u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]))
}
