//! GPU device model for the dCUDA simulation.
//!
//! Models a Tesla-K80-class accelerator (one GK210 chip) at the granularity
//! the dCUDA paper cares about: **blocks** are the unit of scheduling and
//! communication (the paper maps one MPI-style rank to each block), and the
//! phenomena that matter are
//!
//! * **occupancy** — register file / thread / block limits bound how many
//!   blocks are resident ("in flight") per SM; dCUDA caps the launch at that
//!   bound so every rank is schedulable (no preemption on Kepler),
//! * **latency hiding** — an SM shares its throughput among *runnable*
//!   resident blocks; a block stalled on a notification consumes nothing, so
//!   spare parallelism absorbs communication latency,
//! * **memory bandwidth** — a device-wide resource that a single block
//!   cannot saturate (bounded bytes-in-flight, Little's law), but hundreds of
//!   blocks can.
//!
//! [`Device`] owns one processor-sharing resource per SM (FLOP-denominated)
//! and one capped processor-sharing resource for the memory interface
//! (byte-denominated). Block work is submitted as a [`BlockCharge`]; the
//! block's step completes when both its compute and memory demands drain
//! (roofline-style overlap of the two pipelines).

#![warn(missing_docs)]

pub mod charge;
pub mod device;
pub mod occupancy;
pub mod spec;

pub use charge::BlockCharge;
pub use device::{BlockSlot, Device, WorkTag};
pub use occupancy::{occupancy, LaunchConfig, Occupancy};
pub use spec::DeviceSpec;
